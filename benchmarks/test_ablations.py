"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but experiments its text implies:

- **RT size sweep** (Section V-D): smaller recovery tables NACK more and
  fall back to conservative flushing; ASAP's performance should degrade
  gracefully toward HOPS, never below it.
- **NVM write-bandwidth sweep** (Section I/VII: ASAP "offers greater
  performance benefit with increasing NVM write bandwidth").
- **No-undo ablation**: eager flushing without recovery information is
  the unsound upper bound; real ASAP should be close to it in normal
  operation, which shows the recovery table is cheap.
"""

from repro.analysis.report import render_table
from repro.core.models import ModelSpec
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.dash import DashEH
from repro.workloads.microbench import BandwidthMicrobench
from repro.workloads.whisper import Nstore

from benchmarks.conftest import FIGURE_OPS, bench_grid

RP = PersistencyModel.RELEASE


def run_rt_size_sweep():
    rows = []
    runtimes = {}
    hops_runtime = None
    for rt_entries in (0, 4, 8, 16, 32, 64):
        config = MachineConfig(num_cores=4, rt_entries=rt_entries)
        result = bench_grid(
            [DashEH],
            ["asap"],
            config,
            ops_per_thread=FIGURE_OPS,
        )
        run = result.runs[("dash_eh", "asap")]
        runtimes[rt_entries] = run.runtime_cycles
        rows.append(
            [rt_entries, run.runtime_cycles,
             run.result.stats.total("flushes_nacked"),
             run.result.stats.total("totalUndo")]
        )
    hops = bench_grid(
        [DashEH],
        ["hops"],
        MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    hops_runtime = hops.runs[("dash_eh", "hops")].runtime_cycles
    rows.append(["HOPS", hops_runtime, "-", "-"])
    table = render_table(
        ["RT entries", "runtime (cyc)", "NACKs", "undo records"],
        rows,
        title="Ablation: recovery table size (dash_eh, 4 threads)",
    )
    return table, runtimes, hops_runtime


def test_ablation_rt_size(benchmark, record):
    table, runtimes, hops_runtime = benchmark.pedantic(
        run_rt_size_sweep, rounds=1, iterations=1
    )
    record("ablation_rt_size", table)
    # Bigger tables never hurt.
    assert runtimes[32] <= runtimes[4] * 1.05
    # Section V-D's promise: even a useless RT (size 0, pure conservative
    # fallback) keeps ASAP's performance from dropping below HOPS.
    assert runtimes[0] <= hops_runtime * 1.10


def run_nvm_bw_sweep():
    rows = []
    ratios = {}
    for factor, label in ((2.0, "0.5x bw"), (1.0, "1x bw"), (0.5, "2x bw"),
                          (0.25, "4x bw")):
        config = MachineConfig(num_cores=4).scaled_nvm_write(factor)
        result = bench_grid(
            [BandwidthMicrobench],
            ["hops", "asap"],
            config,
            ops_per_thread=150,
        )
        hops = result.runtime("bandwidth", "hops")
        asap = result.runtime("bandwidth", "asap")
        ratios[label] = hops / asap
        rows.append([label, hops, asap, f"{hops / asap:.2f}"])
    table = render_table(
        ["NVM write bw", "HOPS (cyc)", "ASAP (cyc)", "ASAP speedup"],
        rows,
        title="Ablation: NVM write bandwidth (bandwidth microbenchmark)",
    )
    return table, ratios


def test_ablation_nvm_bandwidth(benchmark, record):
    table, ratios = benchmark.pedantic(run_nvm_bw_sweep, rounds=1, iterations=1)
    record("ablation_nvm_bw", table)
    # ASAP's advantage grows with device bandwidth (the ordering stalls
    # dominate once the media stops being the bottleneck).
    assert ratios["4x bw"] > ratios["0.5x bw"]


def run_strand_ablation():
    """Strand persistency (Section VII-E extension): alternating updates
    to two independent structures, with and without strand boundaries."""
    from repro.core.api import Compute, DFence, NewStrand, OFence, PMAllocator, Store
    from repro.core.machine import Machine
    from repro.sim.config import RunConfig

    def workload(heap, use_strands, updates=60):
        journal = heap.alloc_lines(64)
        metadata = heap.alloc_lines(16)

        def program():
            for i in range(updates):
                if use_strands:
                    yield NewStrand()
                yield Store(journal + (i % 64) * 64, 64)
                yield OFence()
                if use_strands:
                    yield NewStrand()
                yield Store(metadata + (i % 16) * 64, 16)
                yield OFence()
                yield Compute(40)
            yield DFence()

        return program()

    rows, runtimes = [], {}
    for use_strands in (False, True):
        machine = Machine(
            MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
        )
        heap = PMAllocator()
        result = machine.run([workload(heap, use_strands)])
        label = "strands" if use_strands else "plain epochs"
        runtimes[label] = result.runtime_cycles
        rows.append([
            label, result.runtime_cycles,
            result.stats.total("totSpecWrites"),
            result.stats.total("dfenceStalled"),
        ])
    table = render_table(
        ["mode", "runtime (cyc)", "early flushes", "dfence stall"],
        rows,
        title="Ablation: strand persistency on ASAP (two independent structures)",
    )
    return table, runtimes


def test_ablation_strands(benchmark, record):
    table, runtimes = benchmark.pedantic(
        run_strand_ablation, rounds=1, iterations=1
    )
    record("ablation_strands", table)
    # Independent commit chains pay off substantially.
    assert runtimes["strands"] < runtimes["plain epochs"] * 0.75


def run_no_undo_comparison():
    result = bench_grid(
        [Nstore, DashEH],
        ["asap",
         ModelSpec("no_undo", HardwareModel.ASAP_NO_UNDO, RP)],
        MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    rows = []
    overheads = {}
    for name in result.workloads:
        asap = result.runtime(name, "asap")
        unsound = result.runtime(name, "no_undo")
        overheads[name] = asap / unsound
        rows.append([name, unsound, asap, f"{asap / unsound:.2f}"])
    table = render_table(
        ["workload", "no-undo (cyc)", "ASAP (cyc)", "ASAP/no-undo"],
        rows,
        title="Ablation: cost of recovery information (no-undo is UNSOUND)",
    )
    return table, overheads


def test_ablation_no_undo_overhead(benchmark, record):
    table, overheads = benchmark.pedantic(
        run_no_undo_comparison, rounds=1, iterations=1
    )
    record("ablation_no_undo", table)
    # Keeping recovery information costs little in normal operation.
    assert all(ratio < 1.5 for ratio in overheads.values())
