"""Extension benchmark: quantitative Table IV -- ASAP vs a Vorpal model.

The paper compares Vorpal only qualitatively (vector-clock tag cost,
controller-side delays, broadcast-paced forward progress).  With the
simplified Vorpal model in :mod:`repro.core.vorpal` the comparison runs:

1. across the suite: where does controller-side ordering land between
   HOPS and ASAP?
2. the broadcast-period sweep: Section III's "the broadcast frequency
   determines the rate of forward progress", measured.
3. the tag cost: bits of vector-clock metadata per persisted byte.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE
from repro.workloads.microbench import BandwidthMicrobench

from benchmarks.conftest import bench_grid, geomean

MODELS = ["baseline", "hops", "vorpal", "asap"]


def run_vorpal_suite():
    result = bench_grid(
        SUITE, MODELS, MachineConfig(num_cores=4), ops_per_thread=100
    )
    rows = []
    speedups = {m: [] for m in MODELS}
    for name in result.workloads:
        cells = [name]
        for model in MODELS:
            s = result.speedup(name, model)
            speedups[model].append(s)
            cells.append(f"{s:.2f}")
        rows.append(cells)
    rows.append(
        ["geomean"] + [f"{geomean(speedups[m]):.2f}" for m in MODELS]
    )
    # tag cost on one representative run
    run = result.runs[("dash_eh", "vorpal")].result
    tag_bits = run.stats.total("vorpal_tag_bits")
    persisted = run.stats.total("pm_write_bytes")
    table = render_table(
        ["workload"] + list(MODELS),
        rows,
        title=(
            "Extension: Vorpal comparison, speedup over baseline "
            f"(dash_eh tag cost: {tag_bits / 8 / max(1, persisted):.3f} "
            "metadata bytes per persisted byte)"
        ),
    )
    return table, speedups


def test_vorpal_suite_comparison(benchmark, record):
    table, speedups = benchmark.pedantic(
        run_vorpal_suite, rounds=1, iterations=1
    )
    record("ext_vorpal_suite", table)
    vorpal = geomean(speedups["vorpal"])
    hops = geomean(speedups["hops"])
    asap = geomean(speedups["asap"])
    # Vorpal's controller-side ordering beats conservative flushing but
    # cannot reach eager flushing with speculation (Table IV's ranking).
    assert hops < vorpal <= asap * 1.02


def run_broadcast_sweep():
    rows = {}
    for period in (50, 100, 250, 500, 1000, 2000):
        config = MachineConfig(num_cores=4, vorpal_broadcast_cycles=period)
        result = bench_grid(
            [BandwidthMicrobench],
            ["vorpal"],
            config,
            ops_per_thread=150,
        )
        rows[period] = result.runs[("bandwidth", "vorpal")].result.drain_cycles
    asap = bench_grid(
        [BandwidthMicrobench],
        ["asap"],
        MachineConfig(num_cores=4),
        ops_per_thread=150,
    ).runs[("bandwidth", "asap")].result.drain_cycles
    table = render_table(
        ["broadcast period (cyc)", "Vorpal (cyc)", "vs ASAP"],
        [[p, c, f"{c / asap:.2f}x"] for p, c in rows.items()],
        title=(
            "Extension: Vorpal broadcast-period sweep (bandwidth kernel; "
            "'broadcast frequency determines forward progress')"
        ),
    )
    return table, rows, asap


def test_vorpal_broadcast_sweep(benchmark, record):
    table, rows, asap = benchmark.pedantic(
        run_broadcast_sweep, rounds=1, iterations=1
    )
    record("ext_vorpal_broadcast", table)
    # Forward progress degrades monotonically-ish with the period...
    assert rows[2000] > rows[250] > rows[50] * 0.99
    # ...and even fast broadcasts cannot beat eager flushing.
    assert min(rows.values()) >= asap
