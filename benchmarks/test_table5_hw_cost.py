"""Table V + Section VII-D: hardware overheads and draining energy.

Table V sizes the persist buffer, epoch table and recovery table with
CACTI 7 at 22 nm and compares them against a 32 KB L1.  Section VII-D
compares the data each design must flush on power failure: eADR ~42 MB,
BBB ~64 KB, ASAP < 4 KB.
"""

import pytest

from repro.analysis.cacti import draining_comparison, table_v
from repro.analysis.report import render_table


def run_table5():
    costs = table_v()
    cost_table = render_table(
        ["structure", "entries", "area (mm2)", "latency (ns)",
         "write (pJ)", "read (pJ)"],
        [c.row() for c in costs],
        title="Table V: hardware overheads (CACTI-calibrated, 22nm)",
    )
    drain = draining_comparison()
    drain_table = render_table(
        ["design", "flush on power fail", "energy (uJ)"],
        [c.row() for c in drain],
        title="Section VII-D: draining cost comparison (32-core server)",
    )
    return costs, drain, cost_table + "\n\n" + drain_table


def test_table5_hardware_cost(benchmark, record):
    costs, drain, text = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    record("table5_hw_cost", text)

    by_name = {c.name: c for c in costs}
    # Reference rows reproduce the paper's Table V.
    assert by_name["Persist Buffer"].area_mm2 == pytest.approx(0.093)
    assert by_name["Epoch Table"].area_mm2 == pytest.approx(0.006)
    assert by_name["Recovery Table"].area_mm2 == pytest.approx(0.097)
    assert by_name["32KB L1 cache"].area_mm2 == pytest.approx(0.759)

    # Draining ordering: eADR >> BBB >> ASAP.
    eadr, bbb, asap = drain
    assert eadr.bytes_to_flush > 100 * bbb.bytes_to_flush
    assert bbb.bytes_to_flush > 10 * asap.bytes_to_flush
