"""Figure 2: number of epochs and cross-thread dependencies (4 threads).

The paper measures both quantities within 1 ms of simulated execution
under release persistency and finds that cross-dependencies are rare in
WHISPER/PMDK applications but frequent in the new concurrent data
structures (CCEH, Dash, RECIPE).  We reproduce the same per-workload
series, normalized to events per million cycles (the paper's 1 ms at
2 GHz is 2 M cycles).
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid

CONCURRENT_DS = {"cceh", "dash_lh", "dash_eh", "p_art", "p_clht", "p_masstree"}
WHISPER = {"nstore", "echo", "vacation", "memcached"}


def run_figure2():
    result = bench_grid(
        SUITE, ["asap_rp"], MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    rows = []
    per_mcycle = {}
    for name in result.workloads:
        run = result.runs[(name, "asap_rp")]
        cycles = run.result.drain_cycles
        epochs = run.result.log.num_epochs()
        deps = run.result.log.num_cross_deps()
        scale = 1_000_000 / max(1, cycles)
        per_mcycle[name] = (epochs * scale, deps * scale)
        rows.append(
            [name, epochs, deps, f"{epochs * scale:.0f}", f"{deps * scale:.0f}"]
        )
    table = render_table(
        ["workload", "epochs", "cross-deps", "epochs/Mcyc", "deps/Mcyc"],
        rows,
        title="Figure 2: epochs and cross-thread dependencies (4 threads, ASAP_RP)",
    )
    return table, per_mcycle


def test_fig02_epochs_and_cross_deps(benchmark, record):
    table, per_mcycle = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    record("fig02_epochs", table)

    # Shape assertions mirroring the paper's discussion:
    # concurrent data structures have far more cross-deps than WHISPER apps.
    ds_deps = [per_mcycle[n][1] for n in CONCURRENT_DS]
    whisper_deps = [per_mcycle[n][1] for n in WHISPER]
    assert min(ds_deps) > max(whisper_deps)
    # Nstore's partitioned design has essentially none.
    assert per_mcycle["nstore"][1] == 0
