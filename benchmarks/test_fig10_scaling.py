"""Figure 10: sensitivity to the number of cores (1, 2, 4, 8).

The paper fixes 2 MCs, varies threads, and normalizes every point to
HOPS with a single thread.  Published series (suite averages):

- ASAP: 1.18 / 1.79 / 2.51 / 2.85
- HOPS: 1.00 / 1.36 / 1.94 / 2.15

P-ART scales best and Skiplist worst; HOPS flattens as dependence
resolution and the global TS register saturate.
"""

from repro.analysis.report import render_series, render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import bench_grid, geomean

CORE_COUNTS = (1, 2, 4, 8)
OPS = 100  # per thread; total work grows with threads as in the paper

MODELS = ["hops", "asap"]


def run_figure10():
    # throughput = total ops / runtime; normalize to HOPS at 1 thread.
    throughput = {}  # (workload, model, cores) -> ops/cycle
    for cores in CORE_COUNTS:
        config = MachineConfig(num_cores=cores)
        result = bench_grid(SUITE, MODELS, config, ops_per_thread=OPS)
        for name in result.workloads:
            for model in ("hops", "asap"):
                cycles = result.runtime(name, model)
                throughput[(name, model, cores)] = cores * OPS / cycles

    speedup = {
        key: value / throughput[(key[0], "hops", 1)]
        for key, value in throughput.items()
    }
    averages = {
        (model, cores): geomean(
            [speedup[(name, model, cores)] for name in [w.name for w in SUITE]]
        )
        for model in ("hops", "asap")
        for cores in CORE_COUNTS
    }

    rows = []
    for name in ("p_art", "skiplist"):
        for model in ("hops", "asap"):
            rows.append(
                [name, model]
                + [f"{speedup[(name, model, c)]:.2f}" for c in CORE_COUNTS]
            )
    for model in ("hops", "asap"):
        rows.append(
            ["average", model]
            + [f"{averages[(model, c)]:.2f}" for c in CORE_COUNTS]
        )
    table = render_table(
        ["workload", "model"] + [f"{c}T" for c in CORE_COUNTS],
        rows,
        title=(
            "Figure 10: scaling with core count, normalized to HOPS@1T "
            "(paper: ASAP 1.18/1.79/2.51/2.85, HOPS 1/1.36/1.94/2.15)"
        ),
    )
    return table, speedup, averages


def test_fig10_core_count_sensitivity(benchmark, record):
    table, speedup, averages = benchmark.pedantic(
        run_figure10, rounds=1, iterations=1
    )
    record("fig10_scaling", table)

    # ASAP is ahead of HOPS at every thread count, including 1 thread
    # (eager flushing uses both controllers even without cross deps).
    for cores in CORE_COUNTS:
        assert averages[("asap", cores)] > averages[("hops", cores)]
    assert averages[("asap", 1)] > 1.05  # paper: 1.18x at one thread

    # Both scale with cores, and ASAP scales better.
    assert averages[("asap", 8)] > averages[("asap", 1)] * 1.8
    asap_gain = averages[("asap", 8)] / averages[("asap", 1)]
    hops_gain = averages[("hops", 8)] / averages[("hops", 1)]
    assert asap_gain > hops_gain

    # P-ART scales best / Skiplist worst among the highlighted pair.
    part_gain = speedup[("p_art", "asap", 8)] / speedup[("p_art", "asap", 1)]
    skip_gain = speedup[("skiplist", "asap", 8)] / speedup[("skiplist", "asap", 1)]
    assert part_gain > skip_gain
