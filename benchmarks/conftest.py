"""Shared infrastructure for the figure/table benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figures 2, 3, 8-13 and Table V).  Each writes its rows/series to
``benchmarks/results/<name>.txt`` and prints them, so the numbers can be
compared against the paper and pasted into EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.exp import run_grid

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Worker processes for the figure grids: ``REPRO_BENCH_JOBS=4 pytest
#: benchmarks/`` fans every sweep out; unset/0/1 keeps them serial.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None

#: Result-cache directory: ``REPRO_BENCH_CACHE=/tmp/repro-cache`` makes
#: re-runs of the harness skip every already-computed cell.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


def bench_grid(workloads, models, machine=None, **kwargs):
    """The benchmarks' single entry into the :mod:`repro.exp` engine.

    Identical to :func:`repro.exp.run_grid` but wired to the harness's
    ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_CACHE`` environment knobs.
    """
    kwargs.setdefault("jobs", BENCH_JOBS)
    kwargs.setdefault("cache", BENCH_CACHE)
    return run_grid(workloads, models, machine, **kwargs)

#: Operations per thread used by the figure sweeps.  Large enough to
#: reach buffer steady state (the calibration analysis showed transients
#: die out after ~30-50 ops), small enough to keep the whole harness at a
#: few minutes.
FIGURE_OPS = 150


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write a named result artifact and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record


def geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
