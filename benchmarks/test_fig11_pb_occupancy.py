"""Figure 11: persist-buffer occupancy, average and 99th percentile.

Because ASAP flushes eagerly, writes wait in the PB for less time, so
both the average and the p99 occupancy sit well below HOPS's -- the
paper uses this to argue ASAP would do fine with smaller buffers.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid


def run_figure11():
    result = bench_grid(
        SUITE, ["hops", "asap"], MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    rows = []
    occupancy = {}
    for name in result.workloads:
        cells = [name]
        for model in ("hops", "asap"):
            stats = result.runs[(name, model)].result.stats
            pb_stats = stats.weighted_stats("pb_occupancy")
            mean = sum(s.mean() for s in pb_stats) / len(pb_stats)
            p99 = max(s.p99() for s in pb_stats)
            occupancy[(name, model)] = (mean, p99)
            cells += [f"{mean:.1f}", p99]
        rows.append(cells)
    table = render_table(
        ["workload", "HOPS avg", "HOPS p99", "ASAP avg", "ASAP p99"],
        rows,
        title="Figure 11: persist buffer occupancy (32 entries available)",
    )
    return table, occupancy


def test_fig11_pb_occupancy(benchmark, record):
    table, occupancy = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    record("fig11_pb_occupancy", table)

    workloads = sorted({name for name, _ in occupancy})
    # ASAP's mean occupancy is below HOPS's on (almost) every workload.
    lower = sum(
        1 for w in workloads
        if occupancy[(w, "asap")][0] <= occupancy[(w, "hops")][0] + 0.1
    )
    assert lower >= len(workloads) - 2

    # Averaged across the suite the gap is substantial.
    hops_mean = sum(occupancy[(w, "hops")][0] for w in workloads) / len(workloads)
    asap_mean = sum(occupancy[(w, "asap")][0] for w in workloads) / len(workloads)
    assert asap_mean < hops_mean * 0.7

    # ASAP's p99 stays comfortably within the 32-entry capacity.
    assert max(occupancy[(w, "asap")][1] for w in workloads) <= 32
