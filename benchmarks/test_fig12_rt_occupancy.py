"""Figure 12: recovery-table maximum occupancy at 4 and 8 threads.

The RT is the structure speculation lives in, so its footprint decides
ASAP's hardware cost.  The paper's findings: max occupancy is modest, it
barely grows from 4 to 8 threads, and Nstore is the exception that
occasionally fills the table and triggers NACKs -- without losing to
HOPS, because the persist buffers keep flushing conservatively.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid

MODEL = ["asap"]


def run_figure12():
    occupancy = {}
    nacks = {}
    for threads in (4, 8):
        config = MachineConfig(num_cores=threads)
        result = bench_grid(SUITE, MODEL, config, ops_per_thread=FIGURE_OPS)
        for name in result.workloads:
            run = result.runs[(name, "asap")]
            machine_rts = run.result.stats.weighted_stats("rt_occupancy")
            occupancy[(name, threads)] = max(
                s.max_observed() for s in machine_rts
            )
            nacks[(name, threads)] = run.result.stats.total("flushes_nacked")
    rows = [
        [name, occupancy[(name, 4)], occupancy[(name, 8)],
         nacks[(name, 4)], nacks[(name, 8)]]
        for name in [w.name for w in SUITE]
    ]
    table = render_table(
        ["workload", "max occ @4T", "max occ @8T", "NACKs @4T", "NACKs @8T"],
        rows,
        title="Figure 12: recovery table max occupancy (32 entries per MC)",
    )
    return table, occupancy, nacks


def test_fig12_rt_occupancy(benchmark, record):
    table, occupancy, nacks = benchmark.pedantic(
        run_figure12, rounds=1, iterations=1
    )
    record("fig12_rt_occupancy", table)

    workloads = [w.name for w in SUITE]
    # Occupancy stays within the 32-entry table for everything.
    assert max(occupancy.values()) <= 32
    # The average max-occupancy grows only mildly from 4 to 8 threads.
    avg4 = sum(occupancy[(w, 4)] for w in workloads) / len(workloads)
    avg8 = sum(occupancy[(w, 8)] for w in workloads) / len(workloads)
    assert avg8 <= avg4 * 2.0
    # A small table suffices: most workloads use well under half of it.
    assert sum(1 for w in workloads if occupancy[(w, 8)] <= 16) >= len(workloads) // 2
