"""Extension benchmark: sensitivity to the number of memory controllers.

Section III's motivation in one experiment.  With a single controller
there is no cross-controller ordering problem, so conservative flushing
loses little; every added controller widens the window in which one
controller's acknowledgement stalls another's work.  ASAP's eager
flushing keeps all controllers busy, so its advantage over HOPS should
*grow* with the controller count -- the premise on which the whole design
rests.

(The paper fixes 2 MCs to match Xeon platforms; this sweep checks the
trend its argument predicts.)
"""

import pytest

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads.microbench import BandwidthMicrobench
from repro.workloads.dash import DashEH

from benchmarks.conftest import bench_grid

MODELS = ["hops", "asap"]


def run_mc_sweep():
    rows = []
    advantage = {}
    for num_mcs in (1, 2, 4):
        config = MachineConfig(num_cores=4, num_mcs=num_mcs)
        result = bench_grid(
            [BandwidthMicrobench, DashEH], MODELS, config, ops_per_thread=150
        )
        for workload in ("bandwidth", "dash_eh"):
            hops = result.runtime(workload, "hops")
            asap = result.runtime(workload, "asap")
            advantage[(workload, num_mcs)] = hops / asap
            rows.append(
                [workload, num_mcs, hops, asap, f"{hops / asap:.2f}"]
            )
    table = render_table(
        ["workload", "MCs", "HOPS (cyc)", "ASAP (cyc)", "ASAP speedup"],
        rows,
        title="Extension: memory-controller count sensitivity (4 threads)",
    )
    return table, advantage


def test_mc_count_sensitivity(benchmark, record):
    table, advantage = benchmark.pedantic(run_mc_sweep, rounds=1, iterations=1)
    record("ext_mc_sensitivity", table)

    # The paper's premise: the multi-controller ordering problem is what
    # ASAP solves, so its advantage grows with controller count on the
    # workload whose writes actually span controllers.
    assert advantage[("bandwidth", 2)] > advantage[("bandwidth", 1)]
    assert advantage[("bandwidth", 4)] > advantage[("bandwidth", 2)]
    assert advantage[("bandwidth", 4)] > advantage[("bandwidth", 1)] * 1.3
    # Counterpoint: a structure whose hot set fits in a couple of
    # interleave granules is insensitive to the controller count -- the
    # controller sweep only matters when data spans controllers, which is
    # precisely Section III's interleaving argument.
    assert advantage[("dash_eh", 4)] == pytest.approx(
        advantage[("dash_eh", 1)], rel=0.10
    )
