"""Extension benchmark: operational energy of the persistence structures.

Section VII-D compares power-fail draining energy; this bench extends the
comparison to *normal operation*: Table V's per-access energies combined
with each run's access counts.  The question it answers: does ASAP's
speculation machinery (recovery-table traffic, commit messages) cost
meaningful energy relative to HOPS's conservative design?  The paper's
qualitative claim -- "the benefits ... outweigh the hardware cost they
incur" -- holds if the answer is a small constant factor on structures
that are themselves tiny (Table V: a thousandth of an L1's energy per
access).
"""

from repro.analysis.energy import estimate_energy
from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid

MODELS = ["baseline", "hops", "asap"]


def run_energy():
    result = bench_grid(
        SUITE, MODELS, MachineConfig(num_cores=4), ops_per_thread=FIGURE_OPS
    )
    rows = []
    per_op = {}
    for name in result.workloads:
        cells = [name]
        for model in MODELS:
            run = result.runs[(name, model)].result
            breakdown = estimate_energy(run)
            pj = breakdown.total_pj / max(1, run.ops_executed)
            per_op[(name, model)] = pj
            cells.append(f"{pj:.1f}")
        asap = per_op[(name, "asap")]
        hops = per_op[(name, "hops")]
        cells.append(f"{asap / max(hops, 0.001):.2f}")
        rows.append(cells)
    table = render_table(
        ["workload", "baseline pJ/op", "HOPS pJ/op", "ASAP pJ/op",
         "ASAP/HOPS"],
        rows,
        title="Extension: persistence-structure energy per operation",
    )
    return table, per_op


def test_energy_per_operation(benchmark, record):
    table, per_op = benchmark.pedantic(run_energy, rounds=1, iterations=1)
    record("ext_energy", table)

    workloads = [w.name for w in SUITE]
    # ASAP's speculation adds recovery-table traffic but stays within a
    # small factor of HOPS on every workload.
    for name in workloads:
        ratio = per_op[(name, "asap")] / max(per_op[(name, "hops")], 0.001)
        assert ratio < 4.0, (name, ratio)
    # The absolute scale is tiny: well under one 32KB-L1 access pair
    # (~656 pJ, Table V) per operation for the median workload.
    median = sorted(per_op[(n, "asap")] for n in workloads)[len(workloads) // 2]
    assert median < 656
