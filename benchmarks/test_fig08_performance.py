"""Figure 8: performance of all six models in the 4-core / 2-MC system.

The paper's headline result.  Speedups are normalized to the Intel
baseline; the published numbers to compare shapes against:

- ASAP_EP 2.1x and ASAP_RP 2.29x over baseline on average;
- ASAP within 3.9% of eADR/BBB on average;
- ASAP_EP +37% over HOPS_EP, ASAP_RP +23% over HOPS_RP;
- HOPS_EP *below baseline* on queue, CCEH, Dash and P-ART.
"""

from repro.analysis.report import render_table
from repro.core.models import STANDARD_MODELS
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid, geomean

HOPS_EP_BELOW_BASELINE = ("queue", "cceh", "dash_eh", "p_art")


def run_figure8():
    result = bench_grid(
        SUITE, STANDARD_MODELS, MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    model_names = [m.name for m in STANDARD_MODELS]
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.speedup(workload, m):.2f}" for m in model_names]
        )
    means = {m: result.geomean_speedup(m) for m in model_names}
    rows.append(["geomean"] + [f"{means[m]:.2f}" for m in model_names])
    table = render_table(
        ["workload"] + model_names,
        rows,
        title=(
            "Figure 8: speedup over Intel baseline, 4 cores / 2 MCs "
            "(paper: ASAP_EP 2.1x, ASAP_RP 2.29x, ASAP within 3.9% of eADR)"
        ),
    )
    return table, result, means


def test_fig08_performance_study(benchmark, record):
    table, result, means = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    record("fig08_performance", table)

    # Baseline is the slowest design on every workload.
    for workload in result.workloads:
        for model in ("asap_ep", "asap_rp", "eadr"):
            assert result.speedup(workload, model) >= 0.99, (workload, model)

    # ASAP delivers a ~2x average win over the baseline.
    assert 1.6 < means["asap_rp"] < 2.6
    assert 1.6 < means["asap_ep"] < 2.6

    # ASAP tracks the eADR/BBB ideal closely (paper: within 3.9%).
    assert means["eadr"] / means["asap_rp"] < 1.12

    # ASAP beats HOPS under both persistency models.
    assert means["asap_ep"] > means["hops_ep"]
    assert means["asap_rp"] > means["hops_rp"]

    # Release persistency >= epoch persistency for HOPS (fewer deps).
    assert means["hops_rp"] >= means["hops_ep"]

    # HOPS_EP drops below baseline on the dependency-bound structures.
    for workload in HOPS_EP_BELOW_BASELINE:
        assert result.speedup(workload, "hops_ep") < 1.05, workload
