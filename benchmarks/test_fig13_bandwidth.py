"""Figure 13: system write-bandwidth utilization.

The paper's microbenchmark: each thread issues 256-byte writes that
alternate across the two memory controllers, ordered with an ofence
between writes.  Conservative flushing (HOPS) stops and waits for one
controller's acknowledgement while the other idles; eager flushing
overlaps them.  The paper reports ASAP at roughly 2x HOPS.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads.microbench import BandwidthMicrobench

from benchmarks.conftest import bench_grid

OPS = 300
THREADS = 4
CPU_GHZ = 2.0

# eADR is omitted: with battery-backed caches the benchmark issues no
# flush traffic at all, so "delivered persist bandwidth" is undefined.
MODELS = ["baseline", "hops", "asap"]


def run_figure13():
    config = MachineConfig(num_cores=THREADS)
    result = bench_grid([BandwidthMicrobench], MODELS, config, ops_per_thread=OPS)
    total_bytes = BandwidthMicrobench(ops_per_thread=OPS).bytes_written(THREADS)
    bandwidth = {}
    rows = []
    for model in MODELS:
        cycles = result.runs[("bandwidth", model)].result.drain_cycles
        seconds = cycles / (CPU_GHZ * 1e9)
        gbps = total_bytes / seconds / 1e9
        bandwidth[model] = gbps
        rows.append([model, cycles, f"{gbps:.2f}"])
    table = render_table(
        ["model", "cycles", "GB/s"],
        rows,
        title=(
            "Figure 13: delivered write bandwidth, 256B ofence-ordered "
            "writes alternating across 2 MCs (paper: ASAP ~2x HOPS)"
        ),
    )
    return table, bandwidth


def test_fig13_bandwidth_utilization(benchmark, record):
    table, bandwidth = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    record("fig13_bandwidth", table)

    # ASAP roughly doubles HOPS's delivered bandwidth (the paper's claim).
    ratio = bandwidth["asap"] / bandwidth["hops"]
    assert 1.5 < ratio < 3.0, ratio

    # The baseline is no better than HOPS here (it stalls the core too).
    assert bandwidth["baseline"] <= bandwidth["hops"] * 1.05
