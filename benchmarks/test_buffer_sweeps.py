"""Ablation benchmarks: buffer-size and polling-parameter sweeps.

DESIGN.md's ablation list: the paper fixes the persist buffer at 32
entries, the WPQ at 16 and HOPS's poll interval at 500 cycles; these
sweeps show how sensitive each design is to those choices.

- The paper expects ASAP to "observe similar performance with smaller
  PBs" (Figure 11 discussion) -- eager flushing keeps occupancy low.
- HOPS should degrade as the PB shrinks (conservative flushing needs the
  buffering) and as the poll interval grows (dependences resolve later).
- WPQ size should matter little in steady state (it is a rate smoother).
"""

from repro.analysis.report import render_table
from repro.core.models import ModelSpec
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.dash import DashEH
from repro.workloads.whisper import Echo

from benchmarks.conftest import bench_grid

from dataclasses import replace

RP = PersistencyModel.RELEASE
OPS = 120


def _runtime(config, hardware):
    result = bench_grid(
        [DashEH],
        [ModelSpec("m", hardware, RP)],
        config,
        ops_per_thread=OPS,
    )
    return result.runtime("dash_eh", "m")


def run_pb_sweep():
    rows = []
    runtimes = {}
    for pb_entries in (4, 8, 16, 32, 64):
        config = MachineConfig(num_cores=4, pb_entries=pb_entries)
        for hardware in (HardwareModel.HOPS, HardwareModel.ASAP):
            runtimes[(pb_entries, hardware)] = _runtime(config, hardware)
        rows.append([
            pb_entries,
            runtimes[(pb_entries, HardwareModel.HOPS)],
            runtimes[(pb_entries, HardwareModel.ASAP)],
        ])
    table = render_table(
        ["PB entries", "HOPS (cyc)", "ASAP (cyc)"],
        rows,
        title="Ablation: persist buffer size (dash_eh, 4 threads)",
    )
    return table, runtimes


def test_ablation_pb_size(benchmark, record):
    table, runtimes = benchmark.pedantic(run_pb_sweep, rounds=1, iterations=1)
    record("ablation_pb_size", table)

    def sensitivity(hardware):
        values = [runtimes[(n, hardware)] for n in (4, 8, 16, 32, 64)]
        return max(values) / min(values)

    # ASAP barely cares about the PB size -- Figure 11's "we expect to
    # observe similar performance with smaller PBs".
    assert sensitivity(HardwareModel.ASAP) < 1.1
    # HOPS's behaviour is coupled to its buffering (here *larger* buffers
    # let the dependence backlog grow and polling fall behind -- either
    # way, conservative flushing is the size-sensitive design).
    assert sensitivity(HardwareModel.HOPS) > sensitivity(HardwareModel.ASAP)


def run_wpq_sweep():
    rows = {}
    for wpq in (4, 8, 16, 32):
        config = MachineConfig(num_cores=4, wpq_entries=wpq)
        rows[wpq] = _runtime(config, HardwareModel.ASAP)
    table = render_table(
        ["WPQ entries", "ASAP (cyc)"],
        [[k, v] for k, v in rows.items()],
        title="Ablation: WPQ size (dash_eh, 4 threads, ASAP)",
    )
    return table, rows


def test_ablation_wpq_size(benchmark, record):
    table, runtimes = benchmark.pedantic(run_wpq_sweep, rounds=1, iterations=1)
    record("ablation_wpq_size", table)
    # The WPQ is a smoothing buffer; halving or doubling it moves little.
    assert max(runtimes.values()) <= min(runtimes.values()) * 1.25


def run_poll_sweep():
    rows = {}
    for interval in (100, 250, 500, 1000, 2000):
        config = MachineConfig(num_cores=4, hops_poll_interval_cycles=interval)
        rows[interval] = _runtime(config, HardwareModel.HOPS)
    table = render_table(
        ["poll interval (cyc)", "HOPS (cyc)"],
        [[k, v] for k, v in rows.items()],
        title="Ablation: HOPS global-TS poll interval (dash_eh, 4 threads)",
    )
    return table, rows


def test_ablation_poll_interval(benchmark, record):
    table, runtimes = benchmark.pedantic(run_poll_sweep, rounds=1, iterations=1)
    record("ablation_poll_interval", table)
    # Slower polling resolves dependences later and costs real time.
    assert runtimes[2000] > runtimes[100]
