"""Figure 9: number of PM write operations, ASAP normalized to HOPS.

Buffering plus ASAP's controller-side mechanisms (absorbing stale safe
flushes into undo records, coalescing in delay records and in the WPQ)
reduce PM writes for most workloads; a few (the paper names Memcached,
Vacation, P-ART) benefit more from HOPS's conservative flushing keeping
writes in the PB longer.  ASAP pays for its undo records with ~5.3% more
PM reads on average.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid, geomean


def run_figure9():
    result = bench_grid(
        SUITE, ["hops", "asap"], MachineConfig(num_cores=4),
        ops_per_thread=FIGURE_OPS,
    )
    rows, write_ratios, read_ratios = [], [], []
    for name in result.workloads:
        hops_writes = result.stat(name, "hops", "pm_writes")
        asap_writes = result.stat(name, "asap", "pm_writes")
        hops_reads = result.stat(name, "hops", "pm_reads")
        asap_reads = result.stat(name, "asap", "pm_reads")
        write_ratio = asap_writes / max(1, hops_writes)
        read_delta = (asap_reads - hops_reads) / max(1, hops_writes)
        write_ratios.append(write_ratio)
        read_ratios.append(read_delta)
        rows.append(
            [name, hops_writes, asap_writes, f"{write_ratio:.2f}",
             f"{100 * read_delta:.1f}%"]
        )
    mean_ratio = geomean(write_ratios)
    mean_reads = sum(read_ratios) / len(read_ratios)
    rows.append(["geomean", "", "", f"{mean_ratio:.2f}", f"{100 * mean_reads:.1f}%"])
    table = render_table(
        ["workload", "HOPS writes", "ASAP writes", "ASAP/HOPS",
         "extra media reads"],
        rows,
        title=(
            "Figure 9: PM write operations normalized to HOPS "
            "(paper: ASAP mostly <= HOPS; PM reads +5.3%)"
        ),
    )
    return table, write_ratios, mean_ratio, read_ratios


def test_fig09_pm_write_operations(benchmark, record):
    table, ratios, mean_ratio, read_deltas = benchmark.pedantic(
        run_figure9, rounds=1, iterations=1
    )
    record("fig09_writes", table)

    # ASAP's write count matches-or-beats HOPS overall: speculation does
    # not cost write endurance.  (The paper sees a mild net decrease from
    # WPQ-queueing coalescing; our faster controller model drains the WPQ
    # before concurrent flushes can merge, so the ratio centres on 1.0 --
    # recorded as a documented deviation in EXPERIMENTS.md.)
    assert 0.85 < mean_ratio < 1.05
    assert sum(1 for r in ratios if r <= 1.02) >= len(ratios) // 2

    # ASAP reads more than HOPS (undo-record creation), but the XPBuffer
    # absorbs most of them: extra *media* reads stay in the single-digit
    # percent range of PM writes, matching the paper's +5.3%.
    assert sum(read_deltas) >= 0
    assert max(read_deltas) < 0.15
