"""Figure 3: percentage of persist-buffer stall cycles under HOPS.

The paper measures, for each workload running on HOPS, the fraction of
cycles during which the persist buffers hold writes they are not allowed
to flush ("blocked" cycles).  It reports 26% on average, higher for the
dependency-heavy concurrent structures -- the motivation for eager
flushing.
"""

from repro.analysis.report import render_table
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

from benchmarks.conftest import FIGURE_OPS, bench_grid, geomean

CONCURRENT_DS = {"cceh", "dash_lh", "dash_eh", "p_art", "p_clht", "p_masstree"}


def run_figure3():
    config = MachineConfig(num_cores=4)
    result = bench_grid(SUITE, ["hops_rp"], config, ops_per_thread=FIGURE_OPS)
    rows, percents = [], {}
    for name in result.workloads:
        run = result.runs[(name, "hops_rp")]
        blocked = run.result.stats.total("cyclesBlocked")
        total = config.num_cores * run.result.drain_cycles
        percent = 100.0 * blocked / max(1, total)
        percents[name] = percent
        rows.append([name, blocked, f"{percent:.1f}%"])
    average = sum(percents.values()) / len(percents)
    rows.append(["average", "", f"{average:.1f}%"])
    table = render_table(
        ["workload", "blocked cycles", "% of cycles"],
        rows,
        title="Figure 3: persist buffer stall cycles under HOPS (paper avg: 26%)",
    )
    return table, percents, average


def test_fig03_pb_stall_cycles(benchmark, record):
    table, percents, average = benchmark.pedantic(
        run_figure3, rounds=1, iterations=1
    )
    record("fig03_pb_stalls", table)

    # The paper's shape: substantial average blocking (tens of percent).
    # Our absolute numbers run higher than the paper's 26% because the
    # re-implemented concurrent structures are tuned to the high-contention
    # end (see EXPERIMENTS.md); the ordering between workload classes is
    # what the figure is about.
    assert 10.0 < average < 95.0
    # ...with the concurrent data structures above the WHISPER apps.
    ds_avg = sum(percents[n] for n in CONCURRENT_DS) / len(CONCURRENT_DS)
    whisper_avg = sum(
        percents[n] for n in ("nstore", "echo", "vacation", "memcached")
    ) / 4
    assert ds_avg > whisper_avg
