"""Extension benchmark: transaction throughput, dfence vs. ordered commits.

Not a paper figure -- it quantifies the paper's Section I claim that
applications can build atomicity on top of ASAP's ordering primitives.
Removing the per-transaction dfence (ordered commits) is only *correct*
on ordering-preserving hardware (tests/tx/ proves that); this benchmark
shows what it is *worth*: on ASAP the ordered mode reaches the eADR
ideal, while the baseline gains nothing (its fences are synchronous
either way) and HOPS loses ground (epochs pile up behind conservative
flushing).
"""

from repro.analysis.report import render_table
from repro.core.api import PMAllocator
from repro.core.machine import Machine
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.tx import DurabilityMode
from repro.tx.scenarios import bank_workload

TXS = 40
MODELS = (
    HardwareModel.BASELINE,
    HardwareModel.HOPS,
    HardwareModel.ASAP,
    HardwareModel.EADR,
)


def run_tx_throughput():
    throughput = {}
    for hardware in MODELS:
        for mode in DurabilityMode:
            heap = PMAllocator()
            programs, _managers, _pvars = bank_workload(
                heap, mode, txs_per_thread=TXS
            )
            machine = Machine(
                MachineConfig(num_cores=2), RunConfig(hardware=hardware)
            )
            result = machine.run(programs)
            throughput[(hardware, mode)] = (
                2 * TXS / result.runtime_cycles * 1000
            )
    rows = []
    for hardware in MODELS:
        dfence = throughput[(hardware, DurabilityMode.DFENCE)]
        ordered = throughput[(hardware, DurabilityMode.ORDERED)]
        rows.append([
            hardware.value, f"{dfence:.2f}", f"{ordered:.2f}",
            f"{100 * (ordered / dfence - 1):+.0f}%",
        ])
    table = render_table(
        ["model", "dfence tx/kcyc", "ordered tx/kcyc", "gain"],
        rows,
        title="Extension: software-transaction throughput by commit mode",
    )
    return table, throughput


def test_tx_throughput(benchmark, record):
    table, throughput = benchmark.pedantic(
        run_tx_throughput, rounds=1, iterations=1
    )
    record("ext_tx_throughput", table)

    # Ordered commits buy ASAP a large win...
    asap_gain = (
        throughput[(HardwareModel.ASAP, DurabilityMode.ORDERED)]
        / throughput[(HardwareModel.ASAP, DurabilityMode.DFENCE)]
    )
    assert asap_gain > 1.3
    # ...bringing it to the battery-backed ideal.
    assert (
        throughput[(HardwareModel.ASAP, DurabilityMode.ORDERED)]
        > 0.95 * throughput[(HardwareModel.EADR, DurabilityMode.ORDERED)]
    )
    # The baseline cannot profit: its ordering is synchronous regardless.
    base_gain = (
        throughput[(HardwareModel.BASELINE, DurabilityMode.ORDERED)]
        / throughput[(HardwareModel.BASELINE, DurabilityMode.DFENCE)]
    )
    assert base_gain < 1.1
