#!/usr/bin/env python3
"""Regenerate the paper's headline figure with ASCII bars.

The original artifact ships ``reproduce_results.py`` which harvests gem5
``stats.txt`` files and plots Figure 8.  This is the analogous entry
point for this reproduction: it runs the full Table III suite under all
six models, prints the speedup table, draws an ASCII version of the
figure, and (optionally) writes per-run gem5-style stats files.

The grid executes through the :mod:`repro.exp` engine: ``--jobs N``
fans the (workload, model) cells out over N worker processes, and
``--cache-dir DIR`` re-uses deterministic results from earlier runs, so
iterating on one model reruns only that model's cells.

Usage:
    python scripts/reproduce_results.py [--ops N] [--threads N]
                                        [--jobs N] [--cache-dir DIR]
                                        [--stats-dir DIR] [--quick]
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.report import render_table
from repro.analysis.statsfile import write_stats
from repro.core.models import STANDARD_MODELS
from repro.exp import run_grid
from repro.sim.config import MachineConfig
from repro.workloads import SUITE


def ascii_bar(value: float, scale: float = 18.0, vmax: float = 3.0) -> str:
    width = int(min(value, vmax) / vmax * scale)
    return "#" * max(1, width)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=150)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--stats-dir", type=pathlib.Path,
                        help="also write per-run gem5-style stats files")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run grid cells across N worker processes")
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        help="reuse deterministic results cached here")
    parser.add_argument("--quick", action="store_true",
                        help="smaller runs (ops=60) for a fast smoke pass")
    args = parser.parse_args()
    ops = 60 if args.quick else args.ops

    config = MachineConfig(num_cores=args.threads)
    print(f"running {len(SUITE)} workloads x {len(STANDARD_MODELS)} models "
          f"({args.threads} threads, {ops} ops/thread)...")
    result = run_grid(
        SUITE, STANDARD_MODELS, config, ops_per_thread=ops,
        jobs=args.jobs, cache=args.cache_dir,
    )
    model_names = [m.name for m in STANDARD_MODELS]

    rows = []
    for workload in result.workloads:
        rows.append([workload] + [
            f"{result.speedup(workload, m):.2f}" for m in model_names
        ])
    rows.append(["geomean"] + [
        f"{result.geomean_speedup(m):.2f}" for m in model_names
    ])
    print()
    print(render_table(["workload"] + model_names, rows,
                       title="Figure 8: speedup over the Intel baseline"))

    print()
    print("geomean speedups:")
    for model in model_names:
        value = result.geomean_speedup(model)
        print(f"  {model:10s} {value:5.2f}x  {ascii_bar(value)}")

    if args.stats_dir:
        args.stats_dir.mkdir(parents=True, exist_ok=True)
        for (workload, model), run in result.runs.items():
            path = args.stats_dir / f"{workload}.{model}.stats.txt"
            write_stats(run.result, path)
        print(f"\nwrote {len(result.runs)} stats files to {args.stats_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
