#!/usr/bin/env python
"""Regenerate the golden litmus corpus under ``tests/litmus/golden/``.

Two pinned documents:

- ``allowed_sets.json`` -- the axiomatic allowed-set of every corpus
  test (named shapes + the ``GOLDEN_SEED`` random family), independent
  of any simulation.  Changes iff the axioms, the epoch annotation, or
  the corpus itself change.
- ``disagreements.json`` -- the canonical disagreement document of the
  smoke subset run operationally at ``SMOKE_POINTS`` crash points under
  every registered RP model.  CI re-runs the same command and diffs
  byte-for-byte (``tests/litmus/test_golden.py`` does it in-process),
  so a *new* forbidden or unobserved state anywhere fails the gate.

Run it ONLY when a PR intentionally changes persistency semantics, the
axioms, or the corpus; review the diff line-by-line before committing.

Usage::

    PYTHONPATH=src python scripts/gen_litmus_golden.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.axiom import allowed_states  # noqa: E402
from repro.litmus import (  # noqa: E402
    GOLDEN_SEED,
    LitmusRunOptions,
    SMOKE_POINTS,
    build_corpus,
    run_litmus,
    smoke_corpus,
)

GOLDEN_DIR = ROOT / "tests" / "litmus" / "golden"


def gen_allowed_sets() -> None:
    doc = {"kind": "litmus-allowed-sets", "seed": GOLDEN_SEED, "tests": {}}
    for test in build_corpus():
        aset = allowed_states(test)
        doc["tests"][test.name] = {
            "family": test.family,
            "executions": aset.executions,
            "truncated": aset.truncated,
            "states": aset.formatted(),
        }
    path = GOLDEN_DIR / "allowed_sets.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    total = sum(len(t["states"]) for t in doc["tests"].values())
    print(f"wrote {path} ({len(doc['tests'])} tests, {total} states)")


def gen_disagreements() -> None:
    report = run_litmus(
        smoke_corpus(),
        LitmusRunOptions(points=SMOKE_POINTS, seed=GOLDEN_SEED),
    )
    if report.forbidden_count():
        raise SystemExit(
            "refusing to pin a golden containing forbidden states -- "
            "fix the simulator (or the axioms) first:\n"
            + report.render_text()
        )
    path = GOLDEN_DIR / "disagreements.json"
    path.write_text(
        json.dumps(report.disagreements_doc(), indent=2, sort_keys=True)
        + "\n"
    )
    print(
        f"wrote {path} ({len(report.cells)} cells, "
        f"{report.unobserved_count()} unobserved)"
    )


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    gen_allowed_sets()
    gen_disagreements()


if __name__ == "__main__":
    main()
