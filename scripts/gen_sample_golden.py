#!/usr/bin/env python
"""Regenerate the sampled-accuracy golden under ``tests/sample/golden/``.

One pinned document, ``sample_errors.json``: for every gate cell
(workload, model, sampling config) it records the sampled-vs-full
relative error of every tracked metric, the geomean, and the achieved
op-reduction ratio -- all at ``OPS_PER_THREAD`` ops/thread, seed
``SEED``.  The simulator and the sampling pipeline are deterministic, so
CI recomputes the same cells and diffs the rounded values exactly
(``tests/sample/test_golden_gate.py``): any accuracy drift -- better or
worse -- shows up as a reviewable diff instead of silently moving.

The gate also enforces the headline acceptance bounds (geomean error
<= 5%, op-reduction >= 10x per cell), so regenerating the golden cannot
legalize a real regression.

Run it ONLY when a PR intentionally changes simulator timing, workload
streams, or the sampling method; review the diff before committing.

Usage::

    PYTHONPATH=src python scripts/gen_sample_golden.py
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.sample import SampleConfig, validate_sampled  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "sample" / "golden"

OPS_PER_THREAD = 2000
SEED = 7

#: the gate cells: one workload per suite category x a spread of
#: persistency designs.  ``clusters`` overrides are per-cell tuning
#: (documented in docs/sampling.md).
GATE_CELLS = (
    ("cceh", "asap_rp", {"clusters": 10}),
    ("queue", "baseline", {}),
    ("nstore", "asap_rp", {}),
    ("ctree", "hops_rp", {"clusters": 10}),
    ("echo", "eadr", {}),
)


def cell_doc(workload: str, model: str, overrides: dict) -> dict:
    report = validate_sampled(
        workload, model, ops_per_thread=OPS_PER_THREAD, seed=SEED,
        config=SampleConfig(**overrides),
    )
    return {
        "config": dict(overrides),
        "errors": {k: round(v, 6) for k, v in sorted(report.errors.items())},
        "geomean_error": round(report.geomean_error, 6),
        "ops_ratio": round(report.ops_ratio, 3),
        "num_intervals": report.num_intervals,
        "representatives": list(report.representatives),
    }


def main() -> None:
    doc = {
        "kind": "sample-error-golden",
        "ops_per_thread": OPS_PER_THREAD,
        "seed": SEED,
        "cells": {
            f"{wl}/{model}": cell_doc(wl, model, overrides)
            for wl, model, overrides in GATE_CELLS
        },
    }
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    path = GOLDEN_DIR / "sample_errors.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    for name, cell in doc["cells"].items():
        print(f"  {name}: geomean {cell['geomean_error']:.4f}, "
              f"{cell['ops_ratio']:.1f}x fewer ops")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
