#!/usr/bin/env python
"""Regenerate the golden crash-recovery fixtures in tests/crashtest/golden/.

Each golden file pins the full recovery pipeline on one serialized crash
state: the state itself (exact :mod:`repro.crashtest.serialize` form),
the transaction-layer metadata needed to re-run recovery offline
(manager geometry, execution records, variables), and the adjudicated
verdict (``recover`` + ``check_atomicity``).

The regression tests load these files and re-run recovery WITHOUT
simulating; any behavioral drift in ``tx.recovery`` or the serializer
shows up as a verdict or value mismatch.

Cases:

- ``bank-<model>``: the bank scenario crashed mid-run on each
  ordering-preserving design -- must recover atomically.
- ``adversarial-asap_no_undo``: ORDERED-mode commits on the no-undo
  ablation, crashed inside the reordering window -- must NOT be atomic.

Run from the repo root:  PYTHONPATH=src python scripts/gen_crashtest_golden.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.core.models import resolve_model
from repro.crashtest.serialize import state_to_dict
from repro.sim.config import MachineConfig
from repro.tx import DurabilityMode, check_atomicity, recover
from repro.tx.scenarios import adversarial_workload, bank_workload

GOLDEN_DIR = os.path.join(
    os.path.dirname(__file__), "..", "tests", "crashtest", "golden"
)
GOLDEN_SCHEMA = 1

#: the four acceptance designs, all of which must recover atomically.
PASSING_MODELS = ("baseline", "hops_rp", "asap_rp", "eadr")
BANK_CRASH_CYCLE = 2500
BANK_SEED = 1


def _manager_doc(manager) -> dict:
    return {
        "thread": manager.thread,
        "commit_cell": manager.commit_cell,
        "log_base": manager.log_base,
        "log_lines": manager.log_lines,
        "records": [
            {
                "tx_id": r.tx_id,
                "thread": r.thread,
                "tx_seq": r.tx_seq,
                "writes": [list(w) for w in r.writes],
                "serial": r.serial,
            }
            for r in manager.records
        ],
    }


def _case_doc(case, state, managers, pvars) -> dict:
    recovery = recover(state, managers, pvars)
    report = check_atomicity(recovery, managers, initial={})
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": "repro-crashtest-golden",
        "case": case,
        "state": state_to_dict(state),
        "managers": [_manager_doc(m) for m in managers],
        "pvars": [{"name": v.name, "addr": v.addr} for v in pvars],
        "verdict": {
            "atomic": report.atomic,
            "problems": list(report.problems),
            "committed_seq": {
                str(t): s for t, s in sorted(recovery.committed_seq.items())
            },
            "recovered_values": {
                k: v for k, v in sorted(recovery.values.items())
                if v is not None
            },
            "num_undone": len(recovery.undone),
        },
    }


def _write(name: str, doc: dict) -> None:
    path = os.path.join(GOLDEN_DIR, name + ".json")
    with open(path, "w") as handle:
        handle.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    status = "atomic" if doc["verdict"]["atomic"] else "NOT atomic"
    print(f"wrote {os.path.relpath(path)} ({status})")


def gen_bank(model_name: str) -> None:
    heap = PMAllocator()
    programs, managers, pvars = bank_workload(
        heap, DurabilityMode.DFENCE, seed=BANK_SEED
    )
    model = resolve_model(model_name)
    state = run_and_crash(
        MachineConfig(num_cores=2), model.run_config(),
        programs, BANK_CRASH_CYCLE,
    )
    doc = _case_doc(
        {
            "scenario": "bank", "model": model_name,
            "mode": "dfence", "crash_cycle": BANK_CRASH_CYCLE,
            "seed": BANK_SEED,
        },
        state, managers, pvars,
    )
    assert doc["verdict"]["atomic"], (
        f"bank on {model_name} must recover atomically"
    )
    _write(f"bank-{model_name}", doc)


def gen_adversarial() -> None:
    model = resolve_model("asap_no_undo")
    chosen = None
    for crash_cycle in range(50, 6000, 53):
        heap = PMAllocator()
        programs, managers, pvars = adversarial_workload(
            heap, DurabilityMode.ORDERED
        )
        state = run_and_crash(
            MachineConfig(num_cores=2), model.run_config(),
            programs, crash_cycle,
        )
        recovery = recover(state, managers, pvars)
        report = check_atomicity(recovery, managers, initial={})
        if report.atomic:
            continue
        # prefer the headline failure mode: a later transaction's commit
        # record outliving an earlier one's (not a mere in-flight value).
        if any("leaked" in p for p in report.problems):
            chosen = (crash_cycle, state, managers, pvars)
            break
        chosen = chosen or (crash_cycle, state, managers, pvars)
    assert chosen is not None, "no failing crash cycle found"
    crash_cycle, state, managers, pvars = chosen
    doc = _case_doc(
        {
            "scenario": "adversarial", "model": "asap_no_undo",
            "mode": "ordered", "crash_cycle": crash_cycle, "seed": None,
        },
        state, managers, pvars,
    )
    assert not doc["verdict"]["atomic"]
    _write("adversarial-asap_no_undo", doc)


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for model_name in PASSING_MODELS:
        gen_bank(model_name)
    gen_adversarial()
    return 0


if __name__ == "__main__":
    sys.exit(main())
