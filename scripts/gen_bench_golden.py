#!/usr/bin/env python
"""Regenerate the golden determinism corpus under ``tests/bench/golden/``.

The corpus pins the simulator's observable output byte-for-byte:

- ``<workload>_<model>.stats.txt``   -- gem5-style stats file
  (:func:`repro.analysis.statsfile.format_stats`) of a small traced run;
- ``<workload>_<model>.events.jsonl`` -- the full JSONL event stream of
  the same run (tracing never alters results, so the stats of the traced
  run double as the untraced goldens);
- ``grid_fingerprints.json``          -- result fingerprints
  (:meth:`repro.workloads.base.WorkloadResult.fingerprint`) over a wider
  workload x model grid, cheap enough to run in the tier-1 suite.

Run it ONLY when a PR intentionally changes simulation semantics; a
performance-only change must leave every file untouched (that is the
point of ``tests/bench/test_golden_determinism.py``).

Usage::

    PYTHONPATH=src python scripts/gen_bench_golden.py
"""

from __future__ import annotations

import io
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.statsfile import format_stats  # noqa: E402
from repro.exp import RunSpec  # noqa: E402
from repro.obs import JSONLSink  # noqa: E402
from repro.sim.config import MachineConfig  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "bench" / "golden"

#: the four release-persistency designs of Sections VII-B onward.
RP_MODEL_NAMES = ("baseline", "hops_rp", "asap_rp", "eadr")

#: (workload, threads, ops) cells pinned byte-for-byte (stats + trace).
TRACED_CELLS = (
    ("bandwidth", 2, 24),
    ("queue", 2, 24),
)

#: wider grid pinned by result fingerprint only.
FINGERPRINT_WORKLOADS = (
    "bandwidth", "fence_latency", "coalescing",
    "nstore", "queue", "cceh", "echo", "heap",
)
FINGERPRINT_OPS = 16
FINGERPRINT_THREADS = 4
SEED = 7


def traced_cell(workload: str, model: str, threads: int, ops: int) -> tuple:
    """Run one traced cell; return (stats text, JSONL text)."""
    spec = RunSpec(workload, model, ops_per_thread=ops,
                   num_threads=threads, seed=SEED,
                   machine=MachineConfig(num_cores=threads))
    buffer = io.StringIO()
    sink = JSONLSink(buffer)
    result = run_workload(
        spec.build_workload(), spec.machine, spec.run_config(),
        num_threads=threads, sinks=[sink],
    )
    sink.close()
    return format_stats(result.result), buffer.getvalue()


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for workload, threads, ops in TRACED_CELLS:
        for model in RP_MODEL_NAMES:
            stats_text, events_text = traced_cell(workload, model, threads, ops)
            stem = f"{workload}_{model}"
            (GOLDEN_DIR / f"{stem}.stats.txt").write_text(stats_text)
            (GOLDEN_DIR / f"{stem}.events.jsonl").write_text(events_text)
            print(f"wrote {stem}.stats.txt / .events.jsonl "
                  f"({len(events_text.splitlines())} events)")

    fingerprints = {}
    for workload in FINGERPRINT_WORKLOADS:
        for model in RP_MODEL_NAMES:
            spec = RunSpec(workload, model, ops_per_thread=FINGERPRINT_OPS,
                           num_threads=FINGERPRINT_THREADS, seed=SEED)
            result = spec.execute()
            fingerprints[f"{workload}/{model}"] = list(
                _jsonable(v) for v in result.fingerprint()
            )
    path = GOLDEN_DIR / "grid_fingerprints.json"
    path.write_text(json.dumps(fingerprints, indent=1, sort_keys=True) + "\n")
    print(f"wrote grid_fingerprints.json ({len(fingerprints)} cells)")
    return 0


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


if __name__ == "__main__":
    sys.exit(main())
