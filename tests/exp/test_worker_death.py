"""Worker death in the classic process-pool executor.

A SIGKILLed pool worker (OOM killer, operator error) must surface as a
prompt, descriptive :class:`repro.exp.WorkerDiedError` -- never a hang
and never a bare ``BrokenProcessPool`` leaking implementation detail.
(The fabric executor goes further and *retries*; see
``tests/fabric/test_scheduler.py``.)
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.exp import (
    ParallelExecutor,
    SerialExecutor,
    WorkerDiedError,
    make_executor,
)

#: hard cap; the whole point is that worker death must not hang.
HARD_TIMEOUT_S = 60


@pytest.fixture(autouse=True)
def _hard_timeout():
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no guard available
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {HARD_TIMEOUT_S}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _suicide(x: int) -> int:
    os.kill(os.getpid(), signal.SIGKILL)
    return x  # pragma: no cover -- never reached


def _ok(x: int) -> int:
    return x + 1


def test_killed_worker_raises_worker_died_error():
    executor = ParallelExecutor(jobs=2)
    with pytest.raises(WorkerDiedError, match="worker process died"):
        executor.map(_suicide, list(range(8)))


def test_error_mentions_the_fabric_escape_hatch():
    executor = ParallelExecutor(jobs=2)
    with pytest.raises(WorkerDiedError, match="fabric"):
        executor.map(_suicide, list(range(4)))


def test_healthy_pool_is_unaffected():
    assert ParallelExecutor(jobs=2).map(_ok, [1, 2, 3]) == [2, 3, 4]


def test_make_executor_jobs_semantics():
    assert isinstance(make_executor(None), SerialExecutor)
    assert isinstance(make_executor(0), SerialExecutor)
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.jobs == 3
