"""One model registry: CLI, sweeps, and benchmarks must agree."""

import pytest

from repro.core.models import (
    MODEL_ALIASES,
    MODEL_REGISTRY,
    RP_MODELS,
    STANDARD_MODELS,
    model_names,
    resolve_model,
)
from repro.sim.config import HardwareModel, PersistencyModel


class TestRegistry:
    def test_every_hardware_model_is_represented(self):
        covered = {spec.hardware for spec in MODEL_REGISTRY.values()}
        assert covered == set(HardwareModel)

    def test_names_are_keys(self):
        for name, spec in MODEL_REGISTRY.items():
            assert spec.name == name

    def test_resolve_canonical(self):
        for name in MODEL_REGISTRY:
            assert resolve_model(name) is MODEL_REGISTRY[name]

    def test_resolve_alias_keeps_display_name(self):
        spec = resolve_model("hops")
        assert spec.name == "hops"
        assert spec.hardware is HardwareModel.HOPS
        assert spec.persistency is PersistencyModel.RELEASE

    def test_aliases_point_into_registry(self):
        for alias, target in MODEL_ALIASES.items():
            assert target in MODEL_REGISTRY
            assert alias not in MODEL_REGISTRY

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve_model("asap_turbo")


class TestSingleSourceOfTruth:
    def test_cli_choices_equal_registry(self):
        """The CLI's model choices ARE the registry (plus its aliases) --
        the historical ``cli.MODEL_CHOICES`` table (which drifted from
        the sweeps' models) must not come back."""
        import repro.cli as cli
        from repro.core.models import MODEL_ALIASES

        parser = cli.build_parser()
        run_parser = next(
            a for a in parser._subparsers._group_actions[0].choices.values()
            if a.prog.endswith(" run")
        )
        model_action = next(
            a for a in run_parser._actions if a.dest == "model"
        )
        assert set(model_action.choices) == (
            set(MODEL_REGISTRY) | set(MODEL_ALIASES)
        )
        assert not hasattr(cli, "MODEL_CHOICES")

    def test_sweep_models_resolve_in_registry(self):
        """Every model the figure sweeps name resolves to a registry
        design (names may be RP display aliases, never novel tables)."""
        for spec in STANDARD_MODELS + RP_MODELS:
            resolved = resolve_model(
                spec.name if spec.name not in MODEL_ALIASES else spec.name
            )
            assert (resolved.hardware, resolved.persistency) == (
                spec.hardware, spec.persistency
            )

    def test_standard_models_are_registry_objects(self):
        for spec in STANDARD_MODELS:
            assert MODEL_REGISTRY[spec.name] is spec

    def test_analysis_sweeps_reexports_registry(self):
        from repro.analysis import sweeps

        assert sweeps.ModelSpec is type(MODEL_REGISTRY["asap_rp"])
        assert sweeps.STANDARD_MODELS is STANDARD_MODELS
        assert sweeps.RP_MODELS is RP_MODELS

    def test_cli_list_prints_registry(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in model_names():
            assert name in out
