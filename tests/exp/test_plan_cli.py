"""Plan construction, executors, and the CLI's --jobs/--cache-dir path."""

import pytest

from repro.cli import main
from repro.exp import (
    ExperimentPlan,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    make_executor,
    run_grid,
)
from repro.sim.config import MachineConfig


class TestPlan:
    def test_grid_is_workload_major(self):
        plan = ExperimentPlan.grid(
            ["fence_latency", "coalescing"], ["baseline", "asap_rp"]
        )
        cells = [(s.workload, s.model.name) for s in plan]
        assert cells == [
            ("fence_latency", "baseline"),
            ("fence_latency", "asap_rp"),
            ("coalescing", "baseline"),
            ("coalescing", "asap_rp"),
        ]

    def test_grid_expands_seeds(self):
        plan = ExperimentPlan.grid(
            ["fence_latency"], ["asap_rp"], seeds=(1, 2, 3)
        )
        assert [s.seed for s in plan] == [1, 2, 3]

    def test_run_grid_keys_by_display_name(self):
        result = run_grid(
            ["fence_latency"], ["hops", "asap"],
            MachineConfig(num_cores=1), ops_per_thread=5,
        )
        assert result.models == ["hops", "asap"]
        assert ("fence_latency", "hops") in result.runs


class TestExecutors:
    def test_make_executor_semantics(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)
        assert make_executor(3).jobs == 3

    def test_parallel_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelExecutor(-2)

    def test_parallel_preserves_order(self):
        # more items than workers, so completion order != input order
        result = ParallelExecutor(jobs=2).map(abs, [-5, 3, -1, 0, -2, 4])
        assert result == [5, 3, 1, 0, 2, 4]

    def test_empty_map(self):
        assert ParallelExecutor(jobs=2).map(abs, []) == []


class TestCLI:
    def test_compare_with_jobs(self, capsys):
        code = main([
            "compare", "--workloads", "fence_latency", "coalescing",
            "--models", "baseline", "asap_rp",
            "--ops", "10", "--threads", "2", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geomean" in out and "asap_rp" in out

    def test_compare_microbench_alias(self, capsys):
        code = main([
            "compare", "--workloads", "microbench",
            "--models", "baseline", "asap_rp",
            "--ops", "8", "--threads", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("bandwidth", "fence_latency", "coalescing"):
            assert name in out

    def test_run_and_compare_share_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["run", "fence_latency", "--model", "asap_rp", "--ops", "10",
                "--threads", "2", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert len(list(cache_dir.glob("*.pkl"))) == 1
        # second invocation is served from the cache, byte-identical
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert len(list(cache_dir.glob("*.pkl"))) == 1

    def test_compare_cached_matches_fresh(self, tmp_path, capsys):
        args = [
            "compare", "--workloads", "fence_latency",
            "--models", "baseline", "asap_rp", "--ops", "10",
            "--threads", "2",
        ]
        assert main(args) == 0
        fresh = capsys.readouterr().out
        cached_args = args + ["--cache-dir", str(tmp_path)]
        assert main(cached_args) == 0
        capsys.readouterr()
        assert main(cached_args) == 0  # all hits
        assert capsys.readouterr().out == fresh
