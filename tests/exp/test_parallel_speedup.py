"""Wall-clock scaling of the parallel executor.

The acceptance bar for `repro.exp`: a 4-worker run of a Table III x
STANDARD_MODELS grid finishes in wall-clock time bounded by the slowest
cells, not the sum -- >= 2x faster than serial on >= 4 real cores.

Process fan-out cannot beat serial execution on a single core (the
workers just time-slice it), so the measurement self-skips when the
machine does not have the cores to show it; correctness of the parallel
path (identical results) is covered unconditionally by
``test_determinism.py``.
"""

import os
import signal
import time

import pytest

from repro.core.models import STANDARD_MODELS
from repro.exp import run_grid
from repro.sim.config import MachineConfig
from repro.workloads import SUITE

# Wall-clock measurement over the full grid: opt in with `-m slow`.
pytestmark = pytest.mark.slow

#: hard cap per test; a wedged worker pool must fail, not hang CI.
HARD_TIMEOUT_S = 600


@pytest.fixture(autouse=True)
def _hard_timeout():
    """SIGALRM-based hard timeout (no pytest-timeout in the image)."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no guard available
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {HARD_TIMEOUT_S}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@pytest.mark.skipif(
    _available_cpus() < 4,
    reason=f"needs >= 4 cores to demonstrate scaling "
           f"(have {_available_cpus()})",
)
def test_four_workers_halve_the_grid_wall_clock():
    machine = MachineConfig(num_cores=4)
    grid = dict(machine=machine, ops_per_thread=60)

    start = time.perf_counter()
    serial = run_grid(SUITE, STANDARD_MODELS, **grid)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_grid(SUITE, STANDARD_MODELS, jobs=4, **grid)
    t_parallel = time.perf_counter() - start

    for key in serial.runs:
        assert serial.runs[key].fingerprint() == parallel.runs[key].fingerprint()

    speedup = t_serial / t_parallel
    assert speedup >= 2.0, (
        f"4-worker grid ran {speedup:.2f}x serial "
        f"({t_serial:.1f}s vs {t_parallel:.1f}s)"
    )


def test_parallel_never_changes_results_even_on_one_core():
    """The unconditional half of the bar: fan-out is always safe."""
    machine = MachineConfig(num_cores=2)
    serial = run_grid(
        SUITE[:2], STANDARD_MODELS[:2], machine, ops_per_thread=15
    )
    parallel = run_grid(
        SUITE[:2], STANDARD_MODELS[:2], machine, ops_per_thread=15, jobs=2
    )
    assert {
        k: v.fingerprint() for k, v in serial.runs.items()
    } == {
        k: v.fingerprint() for k, v in parallel.runs.items()
    }
