"""RunSpec: the one way to build a run.

Covers the construction surface (workload name or class, model name or
spec), the content-hash identity, and the seed-threading contract that
the legacy ``sweep()`` path violated (workload seeded, simulator not).
"""

import pickle

import pytest

from repro.core.models import MODEL_REGISTRY, ModelSpec, resolve_model
from repro.exp import RunSpec
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.base import Workload
from repro.workloads.microbench import FenceLatencyMicrobench


class TestConstruction:
    def test_accepts_workload_name(self):
        spec = RunSpec("fence_latency", "asap_rp")
        assert spec.workload == "fence_latency"

    def test_accepts_workload_class(self):
        spec = RunSpec(FenceLatencyMicrobench, "asap_rp")
        assert spec.workload == "fence_latency"

    def test_unknown_workload_name_errors(self):
        with pytest.raises(KeyError, match="unknown workload"):
            RunSpec("nope", "asap_rp")

    def test_unregistered_workload_class_errors(self):
        class Rogue(Workload):
            name = "fence_latency"  # shadows a registered name

        with pytest.raises(ValueError, match="not the registered"):
            RunSpec(Rogue, "asap_rp")

    def test_accepts_model_name_and_spec(self):
        by_name = RunSpec("fence_latency", "asap_rp")
        by_spec = RunSpec("fence_latency", MODEL_REGISTRY["asap_rp"])
        assert by_name.model == by_spec.model

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError, match="unknown model"):
            RunSpec("fence_latency", "asap_ultra")

    def test_specs_are_hashable_and_picklable(self):
        spec = RunSpec("fence_latency", "asap_rp", ops_per_thread=10)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSeedThreading:
    """Regression for the sweep() seed bug: RunConfig must carry the
    spec's seed, not its default."""

    def test_seed_reaches_run_config(self):
        spec = RunSpec("fence_latency", "asap_rp", seed=42)
        assert spec.run_config().seed == 42

    def test_seed_reaches_workload(self):
        spec = RunSpec("fence_latency", "asap_rp", seed=42)
        assert spec.build_workload().seed == 42

    def test_legacy_sweep_threads_seed_too(self):
        from repro.analysis.sweeps import sweep

        result = sweep(
            [FenceLatencyMicrobench], ["asap_rp"],
            MachineConfig(num_cores=1), ops_per_thread=5, seed=13,
        )
        run = result.runs[("fence_latency", "asap_rp")]
        assert run.result.config.seed == 13

    def test_ops_and_threads_reach_workload(self):
        spec = RunSpec(
            "fence_latency", "asap_rp", ops_per_thread=17, num_threads=2
        )
        assert spec.build_workload().ops_per_thread == 17


class TestKey:
    def test_key_is_stable(self):
        a = RunSpec("fence_latency", "asap_rp", ops_per_thread=10)
        b = RunSpec("fence_latency", "asap_rp", ops_per_thread=10)
        assert a.key() == b.key()

    @pytest.mark.parametrize(
        "variant",
        [
            dict(model="hops_rp"),
            dict(seed=8),
            dict(ops_per_thread=11),
            dict(num_threads=2),
            dict(machine=MachineConfig(num_cores=8)),
            dict(machine=MachineConfig(pb_entries=16)),
        ],
    )
    def test_key_covers_every_field(self, variant):
        base = dict(
            workload="fence_latency", model="asap_rp", ops_per_thread=10
        )
        assert RunSpec(**base).key() != RunSpec(**{**base, **variant}).key()

    def test_display_name_does_not_split_the_cache(self):
        # "hops" and "hops_rp" are the same design; renaming a spec for
        # figure labels must not force a recompute.
        alias = RunSpec("fence_latency", resolve_model("hops"))
        canonical = RunSpec("fence_latency", "hops_rp")
        assert alias.model.name == "hops"
        assert alias.key() == canonical.key()

    def test_custom_spec_same_design_shares_key(self):
        custom = ModelSpec("m", HardwareModel.ASAP, PersistencyModel.RELEASE)
        assert (
            RunSpec("fence_latency", custom).key()
            == RunSpec("fence_latency", "asap_rp").key()
        )
