"""The determinism suite.

The whole `repro.exp` design rests on one invariant: a RunSpec names its
result uniquely.  Same spec => identical ``runtime_cycles`` and full
stats dict, whether the cell ran serially, in a worker process, or came
out of the on-disk cache.
"""

import pytest

from repro.exp import (
    ExperimentPlan,
    ResultCache,
    RunSpec,
    SerialExecutor,
    ParallelExecutor,
    run_plan,
)
from repro.sim.config import MachineConfig

MACHINE = MachineConfig(num_cores=2)


def small_plan() -> ExperimentPlan:
    return ExperimentPlan.grid(
        ["fence_latency", "coalescing"],
        ["baseline", "asap_rp"],
        machine=MACHINE,
        ops_per_thread=12,
    )


@pytest.fixture(scope="module")
def serial_outcome():
    return run_plan(small_plan(), executor=SerialExecutor())


class TestSerialVsParallel:
    def test_identical_results(self, serial_outcome):
        parallel = run_plan(small_plan(), executor=ParallelExecutor(jobs=2))
        for (s_spec, s_run), (p_spec, p_run) in zip(serial_outcome, parallel):
            assert s_spec == p_spec
            assert s_run.runtime_cycles == p_run.runtime_cycles
            assert s_run.stats_dict() == p_run.stats_dict()
            assert s_run.fingerprint() == p_run.fingerprint()

    def test_jobs_kwarg_equivalent(self, serial_outcome):
        parallel = run_plan(small_plan(), jobs=2)
        assert [r.fingerprint() for r in parallel.results] == [
            r.fingerprint() for r in serial_outcome.results
        ]

    def test_rerun_is_deterministic(self, serial_outcome):
        again = run_plan(small_plan())
        assert [r.fingerprint() for r in again.results] == [
            r.fingerprint() for r in serial_outcome.results
        ]


class TestCacheHitVsMiss:
    def test_hit_equals_miss(self, serial_outcome, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_plan(small_plan(), cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(small_plan())

        warm = run_plan(small_plan(), cache=cache)
        assert warm.cache_hits == len(small_plan())
        assert warm.cache_misses == 0

        for fresh, cached, direct in zip(
            cold.results, warm.results, serial_outcome.results
        ):
            assert cached.runtime_cycles == fresh.runtime_cycles
            assert cached.stats_dict() == fresh.stats_dict()
            assert cached.fingerprint() == fresh.fingerprint()
            assert cached.fingerprint() == direct.fingerprint()

    def test_cached_bytes_are_stable(self, tmp_path):
        # A cache hit re-serializes to exactly the stored bytes: nothing
        # about loading mutates the result.
        import pickle

        spec = RunSpec(
            "fence_latency", "asap_rp", machine=MACHINE, ops_per_thread=12
        )
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        stored = (tmp_path / f"{spec.key()}.pkl").read_bytes()
        roundtrip = pickle.dumps(cache.get(spec), protocol=4)
        assert roundtrip == stored

    def test_parallel_populates_cache_serial_reads_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_plan(small_plan(), jobs=2, cache=cache)
        warm = run_plan(small_plan(), cache=cache)
        assert warm.cache_hits == len(small_plan())
        assert [r.fingerprint() for r in warm.results] == [
            r.fingerprint() for r in cold.results
        ]

    def test_partial_overlap_runs_only_missing_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_plan(small_plan(), cache=cache)
        wider = ExperimentPlan.grid(
            ["fence_latency", "coalescing"],
            ["baseline", "asap_rp", "eadr"],
            machine=MACHINE,
            ops_per_thread=12,
        )
        outcome = run_plan(wider, cache=cache)
        assert outcome.cache_hits == len(small_plan())
        assert outcome.cache_misses == len(wider) - len(small_plan())

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = RunSpec(
            "fence_latency", "asap_rp", machine=MACHINE, ops_per_thread=12
        )
        cache = ResultCache(tmp_path)
        cache.put(spec, spec.execute())
        (tmp_path / f"{spec.key()}.pkl").write_bytes(b"garbage")
        assert cache.get(spec) is None
        # ...and the plan transparently recomputes.
        outcome = run_plan(ExperimentPlan([spec]), cache=cache)
        assert outcome.cache_misses == 1
        assert outcome.results[0].runtime_cycles > 0
