"""Corpus validity and determinism."""

import pytest

from repro.litmus.corpus import (
    GOLDEN_SEED,
    NAMED_BUILDERS,
    SMOKE_TESTS,
    build_corpus,
    families,
    random_test,
    smoke_corpus,
)


class TestCorpus:
    def test_names_are_unique(self):
        tests = build_corpus()
        names = [t.name for t in tests]
        assert len(names) == len(set(names))

    def test_smoke_subset_exists(self):
        names = {t.name for t in build_corpus()}
        assert set(SMOKE_TESTS) <= names
        assert [t.name for t in smoke_corpus()] == list(SMOKE_TESTS)

    def test_smoke_covers_every_family_but_rand(self):
        smoke_families = {t.family for t in smoke_corpus()}
        assert smoke_families == {"mp", "sb", "flush", "epoch"}

    def test_every_family_represented(self):
        assert families() == ["mp", "sb", "flush", "epoch", "rand"]

    def test_named_builders_all_construct(self):
        # construction itself runs the full make_test validation
        # (race contract included).
        for name, builder in NAMED_BUILDERS.items():
            test = builder()
            assert test.name == name
            assert test.stores(), f"{name} has no stores to observe"

    def test_random_family_is_deterministic(self):
        a = random_test(GOLDEN_SEED, 2)
        b = random_test(GOLDEN_SEED, 2)
        assert a == b
        assert a != random_test(GOLDEN_SEED, 3)
        assert a != random_test(GOLDEN_SEED + 1, 2)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown litmus test"):
            build_corpus(names=["nope"])

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="no litmus family"):
            build_corpus(family="nope")
