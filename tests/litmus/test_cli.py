"""The ``repro litmus`` CLI: selection, formats, and gate exit codes."""

import json

from repro.cli import main
from repro.report import SARIF_SCHEMA, SARIF_VERSION


class TestLitmusCli:
    def test_list_enumerates_corpus(self, capsys):
        assert main(["litmus", "--list"]) == 0
        out = capsys.readouterr().out
        assert "flush_ofence" in out
        assert "families: mp, sb, flush, epoch, rand" in out

    def test_no_selection_is_an_error(self, capsys):
        assert main(["litmus"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_conflicting_selection_is_an_error(self, capsys):
        assert main(["litmus", "--smoke", "--all"]) == 2
        assert "exactly one of" in capsys.readouterr().err
        assert main(["litmus", "mp_fenced", "--smoke"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_unknown_test_is_an_error(self, capsys):
        assert main(["litmus", "nope"]) == 2
        assert "unknown litmus test" in capsys.readouterr().err

    def test_single_test_passes_gate(self, capsys):
        assert main(["litmus", "flush_ofence", "--points", "6"]) == 0
        out = capsys.readouterr().out
        assert "flush_ofence/asap: OK" in out

    def test_family_selection_and_model_filter(self, capsys):
        assert main([
            "litmus", "--family", "flush", "--points", "6",
            "--models", "baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "flush_none/baseline" in out
        assert "/asap" not in out

    def test_fail_on_any_trips_on_unobserved(self, capsys):
        # bounded sampling always leaves axiomatic slack somewhere
        assert main([
            "litmus", "--family", "sb", "--points", "6",
            "--fail-on", "any",
        ]) == 1
        assert "--fail-on=any" in capsys.readouterr().err

    def test_fail_on_never_always_passes(self):
        assert main([
            "litmus", "--family", "sb", "--points", "6",
            "--fail-on", "never",
        ]) == 0

    def test_json_and_disagreement_outputs(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        diff_path = tmp_path / "disagreements.json"
        assert main([
            "litmus", "flush_ofence", "--points", "6",
            "--format", "json", "--out", str(out_path),
            "--save-disagreements", str(diff_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        assert report["kind"] == "litmus-report"
        assert report["totals"]["forbidden"] == 0
        doc = json.loads(diff_path.read_text())
        assert doc["kind"] == "litmus-disagreements"
        assert set(doc["cells"]) == {
            f"flush_ofence/{m}" for m in ("asap", "baseline", "eadr", "hops")
        }

    def test_sarif_output_is_schema_shaped(self, capsys):
        assert main([
            "litmus", "flush_ofence", "--points", "6", "--format", "sarif",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-litmus"
        assert {r["id"] for r in driver["rules"]} == {"LT001", "LT002"}
