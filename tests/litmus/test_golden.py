"""Golden-pinned litmus corpus: axiomatic sets and the smoke diff.

Regenerate with ``PYTHONPATH=src python scripts/gen_litmus_golden.py``
ONLY when a PR intentionally changes persistency semantics, the axioms,
or the corpus -- and review the diff line-by-line.
"""

import json
import pathlib

import pytest

from repro.axiom import allowed_states
from repro.litmus import (
    GOLDEN_SEED,
    LitmusRunOptions,
    SMOKE_POINTS,
    build_corpus,
    run_litmus,
    smoke_corpus,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _load(name):
    return json.loads((GOLDEN_DIR / name).read_text())


class TestAllowedSetsGolden:
    @pytest.fixture(scope="class")
    def golden(self):
        return _load("allowed_sets.json")

    def test_corpus_roster_matches(self, golden):
        assert sorted(golden["tests"]) == sorted(
            t.name for t in build_corpus()
        )
        assert golden["seed"] == GOLDEN_SEED

    def test_axiomatic_sets_match_golden(self, golden):
        for test in build_corpus():
            aset = allowed_states(test)
            pinned = golden["tests"][test.name]
            assert aset.formatted() == pinned["states"], test.name
            assert aset.executions == pinned["executions"], test.name
            assert aset.truncated == pinned["truncated"], test.name


class TestDisagreementsGolden:
    def test_smoke_disagreements_match_golden_byte_for_byte(self):
        report = run_litmus(
            smoke_corpus(),
            LitmusRunOptions(points=SMOKE_POINTS, seed=GOLDEN_SEED),
        )
        regenerated = json.dumps(
            report.disagreements_doc(), indent=2, sort_keys=True
        ) + "\n"
        pinned = (GOLDEN_DIR / "disagreements.json").read_text()
        assert regenerated == pinned, (
            "smoke disagreement document drifted from the golden; if the "
            "semantic change is intentional, regenerate with "
            "scripts/gen_litmus_golden.py and review the diff"
        )

    def test_golden_contains_no_forbidden_states(self):
        doc = _load("disagreements.json")
        for cell, diff in doc["cells"].items():
            assert diff["forbidden"] == [], cell
