"""Operational vs axiomatic cross-validation.

The acceptance criterion of the whole subsystem: for every pinned
corpus test, the operational crash-state set is a subset of the
axiomatic allowed-set under all registered RP models -- and the
comparison has teeth, demonstrated by the ``asap_no_undo`` ablation
reaching a state the (execution-restricted) axioms forbid.
"""

import pytest

from repro.axiom import (
    INIT,
    LitmusHeap,
    annotate_epochs,
    enumerate_executions,
    execution_allows,
    is_state_allowed,
    make_test,
    parse_state,
)
from repro.core.api import Acquire, Compute, DFence, Release, Store
from repro.core.crash import run_and_crash
from repro.core.models import RP_MODELS, resolve_model
from repro.litmus import (
    LitmusRunOptions,
    SMOKE_POINTS,
    run_litmus,
    smoke_corpus,
)
from repro.sim.config import MachineConfig


class TestSmokeSubset:
    @pytest.fixture(scope="class")
    def report(self):
        return run_litmus(
            smoke_corpus(), LitmusRunOptions(points=SMOKE_POINTS)
        )

    def test_observed_is_subset_of_allowed(self, report):
        for cell in report.cells:
            assert not cell.forbidden, (
                f"{cell.test}/{cell.model} reached axiomatically "
                f"forbidden state(s): {cell.forbidden}"
            )

    def test_every_rp_model_covered(self, report):
        models = {cell.model for cell in report.cells}
        assert models == {m.name for m in RP_MODELS}

    def test_gate_verdicts(self, report):
        assert report.ok("forbidden")
        assert report.ok("never")
        # bounded sampling always leaves some allowed states unobserved
        assert not report.ok("any")
        with pytest.raises(ValueError, match="unknown fail_on"):
            report.ok("sometimes")

    def test_pristine_image_observed_except_under_eadr(self, report):
        # crashing at cycle 1 exposes the all-init image -- except under
        # eADR, whose crash semantics flush whatever the caches already
        # hold, so early stores survive even the earliest crash.
        by_test = {t.name: t for t in smoke_corpus()}
        for cell in report.cells:
            if cell.model == "eadr":
                continue
            test = by_test[cell.test]
            init = " ".join(
                f"{s}={INIT}" for s, _ in sorted(test.locations)
            )
            assert init in set(cell.observed), f"{cell.test}/{cell.model}"


def _no_undo_shape():
    """Jam MC0 behind 16 writes, then publish cross-thread via a lock.

    Under correct RP hardware the lock handoff orders the jammed
    critical-section write ``x`` before the dependent write ``y`` (which
    lands on the idle MC1).  The ``asap_no_undo`` ablation flushes
    eagerly without recovery information, so a crash in the jam window
    exposes ``y`` without ``x``.
    """
    heap = LitmusHeap()
    lock = heap.lock("L")
    burst = [heap.loc_on_mc(f"j{i}", 0) for i in range(16)]
    x = heap.loc_on_mc("x", 0)
    y = heap.loc_on_mc("y", 1)
    t0 = [Store(addr, 64) for addr in burst] + [
        Acquire(lock), Store(x, 8), Release(lock), DFence(),
    ]
    t1 = [Compute(60), Acquire(lock), Store(y, 8), Release(lock), DFence()]
    return make_test("no_undo_teeth", "epoch", [t0, t1], heap, max_ops=64)


class TestCheckerHasTeeth:
    """The ablation must be caught; real designs must not be."""

    #: dense sweep across the jam window (x queued, y persisted).
    CRASH_CYCLES = range(150, 650, 10)

    @pytest.fixture(scope="class")
    def shape(self):
        test = _no_undo_shape()
        epochs = annotate_epochs(test)
        executions = enumerate_executions(test).executions
        # the Compute stagger makes thread 0 win the lock operationally,
        # so only writer-first candidate executions describe these runs.
        writer_first = [
            e for e in executions
            if e.sync_pairs and e.sync_pairs[0][0][0] == 0
        ]
        assert writer_first
        return test, epochs, writer_first

    def _observed_states(self, test, model_name):
        run_config = resolve_model(model_name).run_config(seed=7)
        machine = MachineConfig()
        line_symbols = {
            (addr // 64) * 64: symbol for symbol, addr in test.locations
        }
        states = set()
        for cycle in self.CRASH_CYCLES:
            crash = run_and_crash(
                machine, run_config,
                [iter(list(ops)) for ops in test.threads],
                cycle,
            )
            values = {}
            for line, symbol in line_symbols.items():
                payload = crash.surviving_payload(line, INIT)
                values[symbol] = payload if isinstance(payload, str) else INIT
            states.add(tuple(sorted(values.items())))
        return states

    def _violations(self, shape, model_name):
        test, epochs, writer_first = shape
        return [
            state for state in self._observed_states(test, model_name)
            if not any(
                execution_allows(test, epochs, e, state)
                for e in writer_first
            )
        ]

    def test_restriction_is_what_gives_the_teeth(self, shape):
        # the union over lock orders admits y-without-x (the reader
        # could have won the lock); only the writer-first restriction
        # matches what the staggered runs actually did.
        test, epochs, writer_first = shape
        state = parse_state(
            "x=init y=t1s1 " + " ".join(f"j{i}=init" for i in range(16))
        )
        assert is_state_allowed(test, state)
        assert not any(
            execution_allows(test, epochs, e, state) for e in writer_first
        )

    def test_no_undo_ablation_reaches_forbidden_states(self, shape):
        violations = self._violations(shape, "asap_no_undo")
        assert violations, (
            "asap_no_undo must expose the dependent write without the "
            "jammed one somewhere in the sweep window"
        )

    @pytest.mark.parametrize(
        "model", [m.name for m in RP_MODELS]
    )
    def test_correct_models_stay_inside_the_allowed_set(self, shape, model):
        assert self._violations(shape, model) == []
