"""LitmusSpec identity, caching, and execution basics."""

import pytest

from repro.exp.cache import ResultCache
from repro.litmus.corpus import NAMED_BUILDERS
from repro.litmus.spec import LitmusSpec, execute_litmus_spec


def _spec(name="flush_ofence", **kwargs):
    return LitmusSpec(NAMED_BUILDERS[name](), "baseline", **kwargs)


class TestIdentity:
    def test_bare_name_rejected(self):
        # ops are part of the identity; a name alone under-specifies it.
        with pytest.raises(TypeError, match="LitmusTest itself"):
            LitmusSpec("flush_ofence", "baseline")

    def test_key_is_stable(self):
        assert _spec().key() == _spec().key()

    def test_program_changes_the_key(self):
        assert _spec("flush_ofence").key() != _spec("flush_none").key()

    def test_model_and_knobs_change_the_key(self):
        base = _spec()
        assert base.key() != LitmusSpec(
            NAMED_BUILDERS["flush_ofence"](), "hops"
        ).key()
        assert base.key() != _spec(points=99).key()
        assert base.key() != _spec(seed=8).key()

    def test_programs_round_trip_the_ops(self):
        test = NAMED_BUILDERS["flush_ofence"]()
        programs = _spec().programs()
        assert [tuple(ops) for ops in programs] == list(test.threads)


class TestExecution:
    def test_execute_observes_pristine_and_drained_images(self):
        result = execute_litmus_spec(_spec(points=4))
        # cycle 1 exposes the all-init image; past-drain the full one.
        assert "x=init y=init" in result.states
        assert "x=t0s1 y=t0s2" in result.states
        assert result.first_cycle["x=init y=init"] == 1
        assert result.points_run >= 4

    def test_result_caches_and_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(points=4)
        assert cache.get(spec) is None
        result = spec.execute()
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.states == result.states
        assert hit.first_cycle == result.first_cycle
