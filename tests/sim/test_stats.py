"""Unit tests for the statistics registry."""

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    StatsRegistry,
    TABLE_VI_COUNTERS,
    TimeWeightedStat,
)


class TestCounter:
    def test_increment(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestHistogram:
    def test_mean(self):
        hist = Histogram("h", 10)
        hist.record(2)
        hist.record(4)
        assert hist.mean() == pytest.approx(3.0)

    def test_weighted_mean(self):
        hist = Histogram("h", 10)
        hist.record(0, weight=3)
        hist.record(10, weight=1)
        assert hist.mean() == pytest.approx(2.5)

    def test_percentile(self):
        hist = Histogram("h", 100)
        for value in range(1, 101):
            hist.record(value)
        assert hist.percentile(50) == 50
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100

    def test_percentile_empty(self):
        assert Histogram("h", 10).percentile(99) == 0

    def test_percentile_out_of_range(self):
        hist = Histogram("h", 10)
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_values_clamped_to_max(self):
        hist = Histogram("h", 4)
        hist.record(99)
        assert hist.max_observed() == 4

    def test_zero_weight_ignored(self):
        hist = Histogram("h", 4)
        hist.record(2, weight=0)
        assert hist.samples == 0


class TestTimeWeightedStat:
    def test_levels_weighted_by_duration(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(0, 2)  # level 0 held for 0 cycles
        stat.update(10, 4)  # level 2 held for 10 cycles
        stat.finish(20)  # level 4 held for 10 cycles
        assert stat.mean() == pytest.approx(3.0)

    def test_p99_tracks_peak_levels(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(0, 1)
        stat.update(985, 9)  # level 1 for 985 cycles (< 99%)
        stat.finish(1000)  # level 9 for 15 cycles
        assert stat.p99() == 9

    def test_p99_with_exact_99_percent_below(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(0, 1)
        stat.update(990, 9)  # level 1 for exactly 99% of the time
        stat.finish(1000)
        assert stat.p99() == 1  # P(X <= 1) >= 0.99 already holds

    def test_max_observed_includes_current_level(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(5, 7)
        assert stat.max_observed() == 7

    def test_time_backwards_raises(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(10, 1)
        with pytest.raises(ValueError):
            stat.update(5, 2)

    def test_finish_idempotent(self):
        stat = TimeWeightedStat("occ", 10)
        stat.update(0, 3)
        stat.finish(10)
        stat.finish(10)
        assert stat.mean() == pytest.approx(3.0)


class TestStatsRegistry:
    def test_table_vi_counters_preregistered(self, stats):
        assert set(stats.table_vi()) == set(TABLE_VI_COUNTERS)
        assert all(v == 0 for v in stats.table_vi().values())

    def test_scoped_counters_sum_in_total(self, stats):
        stats.inc("pm_writes", 3, scope="mc0")
        stats.inc("pm_writes", 4, scope="mc1")
        assert stats.total("pm_writes") == 7
        assert stats.get("pm_writes", scope="mc0") == 3

    def test_scopes_listing(self, stats):
        stats.inc("x", scope="b")
        stats.inc("x", scope="a")
        assert stats.scopes("x") == ["a", "b"]

    def test_as_dict_merges_scopes(self, stats):
        stats.inc("y", 2, scope="core0")
        stats.inc("y", 3)
        assert stats.as_dict()["y"] == 5

    def test_weighted_stats_finish(self, stats):
        stat = stats.weighted("pb_occupancy", 32, scope="core0")
        stat.update(0, 5)
        stats.finish(100)
        assert stat.mean() == pytest.approx(5.0)

    def test_dump_format(self, stats):
        stats.inc("alpha", 7)
        text = stats.dump(["alpha"])
        assert text == "alpha = 7"
