"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import CPU_FREQ_GHZ, Engine, Waiter, ns_to_cycles


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(30, lambda: fired.append("c"))
        engine.schedule(10, lambda: fired.append("a"))
        engine.schedule(20, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_cycle_events_fire_fifo(self, engine):
        fired = []
        for label in "abcd":
            engine.schedule(5, lambda label=label: fired.append(label))
        engine.run()
        assert fired == list("abcd")

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_negative_delay_clamps_to_now(self, engine):
        engine.schedule(10, lambda: engine.schedule(-5, lambda: None))
        engine.run()
        assert engine.now == 10

    def test_at_in_past_raises(self, engine):
        engine.schedule(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(5, lambda: None)

    def test_nested_scheduling(self, engine):
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(7, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(3, outer)
        engine.run()
        assert fired == [("outer", 3), ("inner", 10)]

    def test_cancelled_event_is_skipped(self, engine):
        fired = []
        event = engine.schedule(5, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_events_executed_counter(self, engine):
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_executed == 5


class TestRunBounds:
    def test_run_until_stops_clock_at_bound(self, engine):
        fired = []
        engine.schedule(10, lambda: fired.append(10))
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        assert fired == [10]
        assert engine.now == 50

    def test_run_until_leaves_future_events_queued(self, engine):
        engine.schedule(100, lambda: None)
        engine.run(until=50)
        assert engine.pending() == 1

    def test_run_until_resumable(self, engine):
        fired = []
        engine.schedule(100, lambda: fired.append(100))
        engine.run(until=50)
        engine.run()
        assert fired == [100]

    def test_max_events_guard(self, engine):
        def loop():
            engine.schedule(1, loop)

        engine.schedule(1, loop)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run(max_events=100)

    def test_stop_terminates_run(self, engine):
        fired = []
        engine.schedule(1, lambda: (fired.append(1), engine.stop("test")))
        engine.schedule(2, lambda: fired.append(2))
        engine.run()
        assert fired == [1]
        assert engine.stop_reason == "test"


class TestWaiter:
    def test_wake_runs_all_waiters(self, engine):
        waiter = Waiter(engine)
        fired = []
        waiter.wait(lambda: fired.append("a"))
        waiter.wait(lambda: fired.append("b"))
        waiter.wake()
        engine.run()
        assert fired == ["a", "b"]

    def test_wake_is_one_shot(self, engine):
        waiter = Waiter(engine)
        fired = []
        waiter.wait(lambda: fired.append("a"))
        waiter.wake()
        waiter.wake()
        engine.run()
        assert fired == ["a"]

    def test_waiters_registered_after_wake_need_new_wake(self, engine):
        waiter = Waiter(engine)
        fired = []
        waiter.wake()
        waiter.wait(lambda: fired.append("late"))
        engine.run()
        assert fired == []
        assert len(waiter) == 1


class TestConversions:
    def test_ns_to_cycles_at_2ghz(self):
        assert CPU_FREQ_GHZ == 2.0
        assert ns_to_cycles(1.0) == 2
        assert ns_to_cycles(60.0) == 120
        assert ns_to_cycles(175.0) == 350

    def test_ns_to_cycles_zero_and_negative(self):
        assert ns_to_cycles(0) == 0
        assert ns_to_cycles(-5) == 0

    def test_ns_to_cycles_minimum_one_cycle(self):
        assert ns_to_cycles(0.1) == 1
