"""Unit tests for the configuration dataclasses."""

import pytest

from repro.sim.config import (
    CacheConfig,
    HardwareModel,
    MachineConfig,
    NVMConfig,
    PersistencyModel,
    RunConfig,
    TABLE_II_CONFIG,
)


class TestTableIIDefaults:
    """The default configuration mirrors the paper's Table II."""

    def test_core_and_mc_counts(self):
        assert TABLE_II_CONFIG.num_cores == 4
        assert TABLE_II_CONFIG.num_mcs == 2

    def test_cache_geometry(self):
        assert TABLE_II_CONFIG.l1.size_bytes == 32 * 1024
        assert TABLE_II_CONFIG.l1.ways == 8
        assert TABLE_II_CONFIG.l2.size_bytes == 2 * 1024 * 1024
        assert TABLE_II_CONFIG.llc.size_bytes == 16 * 1024 * 1024
        assert TABLE_II_CONFIG.llc.ways == 16

    def test_buffer_sizes(self):
        assert TABLE_II_CONFIG.pb_entries == 32
        assert TABLE_II_CONFIG.et_entries == 32
        assert TABLE_II_CONFIG.rt_entries == 32
        assert TABLE_II_CONFIG.wpq_entries == 16

    def test_nvm_latencies(self):
        assert TABLE_II_CONFIG.nvm.read_latency_ns == 175.0
        assert TABLE_II_CONFIG.nvm.write_latency_ns == 90.0

    def test_flush_latency(self):
        assert TABLE_II_CONFIG.pb_flush_ns == 60.0

    def test_hops_polling_parameters(self):
        assert TABLE_II_CONFIG.hops_poll_interval_cycles == 500
        assert TABLE_II_CONFIG.hops_poll_access_cycles == 50


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(32 * 1024, 8, 1.0)
        assert cache.num_sets == 64

    def test_too_small_cache_raises(self):
        with pytest.raises(ValueError):
            CacheConfig(32, 8, 1.0).num_sets


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=0)

    def test_zero_mcs_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(num_mcs=0)

    def test_misaligned_interleave_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(interleave_bytes=100)

    def test_zero_pb_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(pb_entries=0)


class TestDerivedConfigs:
    def test_with_cores(self):
        cfg = TABLE_II_CONFIG.with_cores(8)
        assert cfg.num_cores == 8
        assert cfg.num_mcs == TABLE_II_CONFIG.num_mcs

    def test_with_mcs(self):
        cfg = TABLE_II_CONFIG.with_mcs(4)
        assert cfg.num_mcs == 4

    def test_scaled_nvm_write(self):
        cfg = TABLE_II_CONFIG.scaled_nvm_write(0.5)
        assert cfg.nvm.write_latency_ns == pytest.approx(45.0)
        assert TABLE_II_CONFIG.nvm.write_latency_ns == 90.0  # original intact

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            TABLE_II_CONFIG.num_cores = 8


class TestEnums:
    def test_hardware_models_cover_evaluation(self):
        names = {m.value for m in HardwareModel}
        assert {
            "baseline", "hops", "asap", "eadr", "vorpal", "asap_no_undo",
        } == names

    def test_persistency_models(self):
        assert PersistencyModel.EPOCH.value == "epoch"
        assert PersistencyModel.RELEASE.value == "release"

    def test_run_config_defaults(self):
        rc = RunConfig()
        assert rc.hardware is HardwareModel.ASAP
        assert rc.persistency is PersistencyModel.RELEASE
