"""Unit tests for address interleaving."""

import pytest

from repro.mem.interleave import AddressMap


class TestLineMath:
    def test_line_of_aligns_down(self):
        amap = AddressMap(2)
        assert amap.line_of(0) == 0
        assert amap.line_of(63) == 0
        assert amap.line_of(64) == 64
        assert amap.line_of(130) == 128

    def test_lines_of_single_line(self):
        amap = AddressMap(2)
        assert amap.lines_of(0, 8) == [0]
        assert amap.lines_of(60, 4) == [0]

    def test_lines_of_straddles_boundary(self):
        amap = AddressMap(2)
        assert amap.lines_of(60, 8) == [0, 64]

    def test_lines_of_large_write(self):
        amap = AddressMap(2)
        assert amap.lines_of(0, 256) == [0, 64, 128, 192]

    def test_lines_of_zero_size_raises(self):
        with pytest.raises(ValueError):
            AddressMap(2).lines_of(0, 0)


class TestInterleaving:
    def test_256_byte_granules_alternate(self):
        """The paper's microbenchmark: consecutive 256B blocks alternate."""
        amap = AddressMap(2, interleave_bytes=256)
        assert amap.mc_of(0) == 0
        assert amap.mc_of(256) == 1
        assert amap.mc_of(512) == 0

    def test_lines_within_granule_share_mc(self):
        amap = AddressMap(2, interleave_bytes=256)
        assert len({amap.mc_of_line(line) for line in (0, 64, 128, 192)}) == 1

    def test_four_mcs(self):
        amap = AddressMap(4, interleave_bytes=256)
        assert [amap.mc_of(256 * i) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_single_mc(self):
        amap = AddressMap(1)
        assert all(amap.mc_of(256 * i) == 0 for i in range(8))

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressMap(0)
        with pytest.raises(ValueError):
            AddressMap(2, interleave_bytes=100)

    def test_balanced_distribution(self):
        amap = AddressMap(2, interleave_bytes=256)
        counts = [0, 0]
        for block in range(1000):
            counts[amap.mc_of(block * 256)] += 1
        assert counts == [500, 500]
