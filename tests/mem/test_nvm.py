"""Unit tests for the NVM device model."""

import pytest

from repro.sim.config import NVMConfig
from repro.sim.engine import ns_to_cycles
from repro.mem.nvm import NVMDevice, XPBuffer, XPLINE_BYTES


@pytest.fixture
def device(engine, stats):
    return NVMDevice(engine, NVMConfig(), stats, scope="mc0")


class TestXPBuffer:
    def test_miss_then_hit(self):
        buf = XPBuffer(4)
        assert buf.access(0) is False
        assert buf.access(0) is True

    def test_same_256b_block_hits(self):
        buf = XPBuffer(4)
        buf.access(0)
        assert buf.access(64) is True
        assert buf.access(192) is True

    def test_different_block_misses(self):
        buf = XPBuffer(4)
        buf.access(0)
        assert buf.access(XPLINE_BYTES) is False

    def test_lru_eviction(self):
        buf = XPBuffer(2)
        buf.access(0)
        buf.access(256)
        buf.access(512)  # evicts block 0
        assert 0 not in buf
        assert 256 in buf

    def test_hit_refreshes_lru(self):
        buf = XPBuffer(2)
        buf.access(0)
        buf.access(256)
        buf.access(0)  # refresh block 0
        buf.access(512)  # evicts 256, not 0
        assert 0 in buf
        assert 256 not in buf


class TestValuePlane:
    def test_pristine_line_reads_zero(self, device):
        assert device.peek(0x1000) == 0

    def test_write_lands_after_latency(self, engine, device):
        device.write(0x1000, 7)
        assert device.peek(0x1000) == 0  # not yet durable
        engine.run()
        assert device.peek(0x1000) == 7

    def test_commit_write_is_instant(self, device):
        device.commit_write(0x40, 3)
        assert device.peek(0x40) == 3


class TestTiming:
    def test_cold_read_costs_media_latency(self, device):
        assert device.read_latency(0x9000) == ns_to_cycles(175.0)

    def test_xpbuffer_read_hit_is_cheap(self, device):
        cold = device.read_latency(0x9000)
        warm = device.read_latency(0x9000)
        assert warm < cold // 4

    def test_write_completion_callback(self, engine, device):
        done = []
        device.write(0, 1, lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1
        assert done[0] >= ns_to_cycles(90.0) // 4  # at least buffered latency

    def test_bank_parallelism_limits_throughput(self, engine, stats):
        config = NVMConfig(write_parallelism=1, xpbuffer_lines=1)
        device = NVMDevice(engine, config, stats, scope="mc0")
        finish_times = []
        # Writes to distinct blocks so the XPBuffer cannot help.
        for i in range(3):
            device.write(i * 4096, i + 1, lambda: finish_times.append(engine.now))
        engine.run()
        assert len(finish_times) == 3
        # With one bank, writes serialize at media latency each.
        full = ns_to_cycles(90.0)
        assert finish_times[1] - finish_times[0] >= full // 4
        assert finish_times[2] >= 2 * full // 4

    def test_parallel_banks_overlap(self, engine, stats):
        config = NVMConfig(write_parallelism=4, xpbuffer_lines=1)
        device = NVMDevice(engine, config, stats, scope="mc0")
        finish_times = []
        for i in range(4):
            device.write(i * 4096, i + 1, lambda: finish_times.append(engine.now))
        engine.run()
        # All four run concurrently: they all finish at the same cycle.
        assert max(finish_times) == min(finish_times)

    def test_stats_counted(self, engine, device, stats):
        device.write(0, 1)
        device.read_latency(4096)  # cold block: a real media read
        device.read_latency(4096)  # warm: served by the XPBuffer
        engine.run()
        assert stats.get("pm_writes", scope="mc0") == 1
        assert stats.get("pm_reads", scope="mc0") == 1
        assert stats.get("xpbuffer_read_hits", scope="mc0") == 1

    def test_writes_in_flight(self, engine, device):
        device.write(0, 1)
        device.write(4096, 2)
        assert device.writes_in_flight == 2
        engine.run()
        assert device.writes_in_flight == 0
