"""Unit tests for the memory controller, including the Table I matrix.

=====================  ============================  =========================
Event                  Undo record NOT present       Undo record present
=====================  ============================  =========================
Safe flush arrives     Update memory                 Update undo record
Early flush arrives    Create undo record,           Create delay record
                       speculatively update memory
=====================  ============================  =========================
"""

import pytest

from repro.sim.config import MachineConfig
from repro.mem.controller import (
    CommitMessage,
    FlushPacket,
    FlushResponse,
    MemoryController,
    ResponseKind,
)
from repro.core.recovery_table import RecoveryTable


@pytest.fixture
def mc(engine, stats):
    """Controller with an ASAP recovery table attached."""
    config = MachineConfig(num_cores=2)
    rt = RecoveryTable(engine, capacity=4, stats=stats, scope="mc0")
    controller = MemoryController(engine, config, stats, index=0, recovery_table=rt)
    controller.responses = []
    controller.respond = controller.responses.append
    return controller


@pytest.fixture
def plain_mc(engine, stats):
    """Controller without a recovery table (baseline / HOPS)."""
    config = MachineConfig(num_cores=2)
    controller = MemoryController(engine, config, stats, index=0)
    controller.responses = []
    controller.respond = controller.responses.append
    return controller


def flush(line, write_id, early, core=0, ts=1, seq=0):
    return FlushPacket(
        line=line, write_id=write_id, core=core, epoch_ts=ts, early=early, seq=seq
    )


class TestTableI:
    def test_case1_safe_flush_updates_memory(self, engine, mc):
        mc.receive_flush(flush(0, 10, early=False))
        engine.run()
        assert mc.durable_value(0) == 10
        assert mc.responses[0].kind is ResponseKind.ACK
        assert mc.nvm.peek(0) == 10  # drained to media

    def test_case2_safe_flush_with_undo_folds_into_record(self, engine, mc):
        # Early flush first: creates undo (safe value 0), memory = 20.
        mc.receive_flush(flush(0, 20, early=True, ts=2))
        engine.run()
        # A *safe* flush now arrives with an older value 10.
        mc.receive_flush(flush(0, 10, early=False, ts=1))
        engine.run()
        # Memory keeps the newer speculative value; the undo record holds
        # the safe value 10.
        assert mc.durable_value(0) == 20
        assert mc.recovery_table.undo_for(0).safe_value == 10
        assert all(r.kind is ResponseKind.ACK for r in mc.responses)

    def test_case3_early_flush_creates_undo_and_updates(self, engine, mc, stats):
        mc.receive_flush(flush(0, 20, early=True))
        engine.run()
        assert mc.durable_value(0) == 20
        record = mc.recovery_table.undo_for(0)
        assert record is not None
        assert record.safe_value == 0  # pristine memory
        assert stats.get("totalUndo", scope="mc0") == 1

    def test_case4_early_flush_with_undo_creates_delay(self, engine, mc):
        mc.receive_flush(flush(0, 20, early=True, core=0, ts=2))
        engine.run()
        mc.receive_flush(flush(0, 30, early=True, core=1, ts=5))
        engine.run()
        # Memory keeps the first speculative value; the second is delayed.
        assert mc.durable_value(0) == 20
        delays = mc.recovery_table.delays_for(0)
        assert len(delays) == 1
        assert delays[0].write_id == 30

    def test_same_epoch_reflush_updates_memory_not_the_undo(self, engine, mc):
        """Two writes of one epoch to one line, the first early: the
        second must update memory directly.  Folding it into the undo
        record would lose it when the epoch's own commit deletes the
        record (regression test for a real bug the differential tests
        caught)."""
        mc.receive_flush(flush(0, 42, early=True, core=0, ts=20))
        engine.run()
        # Same epoch flushes again (e.g. the first entry was already in
        # flight when the store hit the persist buffer).  Safe or early,
        # memory must take the newer value.
        mc.receive_flush(flush(0, 44, early=False, core=0, ts=20))
        engine.run()
        assert mc.durable_value(0) == 44
        assert mc.recovery_table.undo_for(0).safe_value == 0  # pre-epoch
        # Crash now: the whole epoch rolls back.
        assert mc.crash_drain()[0] == 0
        # Commit: the newest value is durable.
        mc.receive_commit(CommitMessage(core=0, epoch_ts=20))
        engine.run()
        assert mc.crash_drain()[0] == 44

    def test_early_flush_without_rt_is_wiring_bug(self, engine, plain_mc):
        plain_mc.receive_flush(flush(0, 1, early=True))
        with pytest.raises(RuntimeError, match="recovery table"):
            engine.run()


class TestUndoSafeValue:
    def test_undo_captures_wpq_pending_value(self, engine, mc):
        """The safe value is the newest *durable* value -- including a
        write still pending in the WPQ, which ADR guarantees."""
        mc.receive_flush(flush(0, 10, early=False))
        # Don't run the engine to completion -- the write may still be in
        # the WPQ when the early flush arrives; process both together.
        mc.receive_flush(flush(0, 20, early=True, ts=2))
        engine.run()
        assert mc.recovery_table.undo_for(0).safe_value == 10


class TestNACK:
    def test_rt_full_nacks_early_flush(self, engine, mc, stats):
        # Fill the 4-entry RT with undo records on distinct lines.
        for i in range(4):
            mc.receive_flush(flush(i * 64, i + 1, early=True, ts=1))
        engine.run()
        mc.receive_flush(flush(9 * 64, 99, early=True, ts=2))
        engine.run()
        assert mc.responses[-1].kind is ResponseKind.NACK
        assert stats.get("flushes_nacked", scope="mc0") == 1

    def test_safe_flush_never_nacked_when_rt_full(self, engine, mc):
        for i in range(4):
            mc.receive_flush(flush(i * 64, i + 1, early=True, ts=1))
        engine.run()
        mc.receive_flush(flush(9 * 64, 100, early=False, ts=1))
        engine.run()
        assert mc.responses[-1].kind is ResponseKind.ACK


class TestCommit:
    def test_commit_deletes_undo_records(self, engine, mc):
        mc.receive_flush(flush(0, 20, early=True, core=0, ts=3))
        engine.run()
        acked = []
        mc.receive_commit(CommitMessage(core=0, epoch_ts=3, on_ack=lambda: acked.append(1)))
        engine.run()
        assert mc.recovery_table.undo_for(0) is None
        assert acked == [1]

    def test_commit_persists_delayed_write(self, engine, mc):
        mc.receive_flush(flush(0, 20, early=True, core=0, ts=3))
        mc.receive_flush(flush(0, 30, early=True, core=1, ts=7))
        engine.run()
        # Commit epoch (0,3): deletes the undo; then commit (1,7): its
        # delayed write must reach memory.
        mc.receive_commit(CommitMessage(core=0, epoch_ts=3))
        engine.run()
        mc.receive_commit(CommitMessage(core=1, epoch_ts=7))
        engine.run()
        assert mc.durable_value(0) == 30
        assert mc.recovery_table.delays_for(0) == []

    def test_delay_folds_into_surviving_undo(self, engine, mc):
        """Figure 5's write collision, resolved in commit order."""
        # Thread 1 epoch 3 writes A=20 early -> undo(A, safe=0), mem=20.
        mc.receive_flush(flush(0, 20, early=True, core=1, ts=3))
        # Thread 0 epoch 5's A=15 arrives late (out of order) -> delay.
        mc.receive_flush(flush(0, 15, early=True, core=0, ts=5))
        engine.run()
        # Epoch (0,5) is earlier in coherence order and commits first: its
        # delayed value becomes the new safe value inside the undo record.
        mc.receive_commit(CommitMessage(core=0, epoch_ts=5))
        engine.run()
        assert mc.recovery_table.undo_for(0).safe_value == 15
        # Crash now would restore A=15; commit of (1,3) makes A=20 final.
        assert mc.crash_drain()[0] == 15
        mc.receive_commit(CommitMessage(core=1, epoch_ts=3))
        engine.run()
        assert mc.crash_drain()[0] == 20


class TestCrashDrain:
    def test_pristine_controller_drains_clean(self, mc):
        assert mc.crash_drain() == {}

    def test_undo_values_override_speculative_state(self, engine, mc):
        mc.receive_flush(flush(0, 10, early=False, ts=1))
        engine.run()
        mc.receive_flush(flush(0, 99, early=True, ts=2))
        engine.run()
        media = mc.crash_drain()
        assert media[0] == 10  # speculation unwound

    def test_wpq_contents_are_durable(self, engine, plain_mc):
        plain_mc.receive_flush(flush(0, 7, early=False))
        # Run only far enough for admission, not media drain.
        engine.run(until=engine.now + 10)
        assert plain_mc.crash_drain()[0] == 7
