"""Unit tests for the Write Pending Queue."""

import pytest

from repro.mem.wpq import WritePendingQueue


@pytest.fixture
def wpq(engine, stats):
    return WritePendingQueue(engine, capacity=4, stats=stats, scope="mc0")


class TestAdmission:
    def test_push_until_full(self, wpq):
        for i in range(4):
            assert wpq.push(i * 64, i + 1)
        assert wpq.full
        assert not wpq.push(4 * 64, 99)

    def test_pop_restores_space(self, wpq):
        for i in range(4):
            wpq.push(i * 64, i + 1)
        entry = wpq.pop_head()
        assert entry.line == 0 and entry.write_id == 1
        assert not wpq.full
        assert wpq.push(4 * 64, 5)

    def test_pop_empty_returns_none(self, wpq):
        assert wpq.pop_head() is None

    def test_fifo_order(self, wpq):
        wpq.push(0, 1)
        wpq.push(64, 2)
        assert wpq.pop_head().write_id == 1
        assert wpq.pop_head().write_id == 2


class TestCoalescing:
    def test_same_line_coalesces(self, wpq):
        wpq.push(0, 1)
        assert wpq.push(0, 2)
        assert len(wpq) == 1
        assert wpq.pending_value(0) == 2

    def test_coalescing_succeeds_even_when_full(self, wpq):
        for i in range(4):
            wpq.push(i * 64, i + 1)
        assert wpq.push(0, 42)  # coalesces, needs no space
        assert wpq.pending_value(0) == 42

    def test_coalesced_entry_drains_newest_value(self, wpq):
        wpq.push(0, 1)
        wpq.push(0, 2)
        assert wpq.pop_head().write_id == 2

    def test_recoalesce_after_pop(self, wpq):
        """A line re-pushed after its entry drained indexes correctly."""
        wpq.push(0, 1)
        wpq.pop_head()
        wpq.push(0, 2)
        assert wpq.pending_value(0) == 2
        assert len(wpq) == 1

    def test_coalescing_stat(self, wpq, stats):
        wpq.push(0, 1)
        wpq.push(0, 2)
        assert stats.get("wpq_coalesced", scope="mc0") == 1


class TestCrashDrain:
    def test_drain_all_returns_fifo_and_clears(self, wpq):
        wpq.push(0, 1)
        wpq.push(64, 2)
        entries = wpq.drain_all()
        assert [e.write_id for e in entries] == [1, 2]
        assert len(wpq) == 0

    def test_snapshot(self, wpq):
        wpq.push(0, 1)
        wpq.push(64, 2)
        assert wpq.snapshot() == {0: 1, 64: 2}


class TestBackPressure:
    def test_space_waiter_woken_on_pop(self, engine, wpq):
        for i in range(4):
            wpq.push(i * 64, i + 1)
        woken = []
        wpq.space_waiter.wait(lambda: woken.append(True))
        wpq.pop_head()
        engine.run()
        assert woken == [True]
