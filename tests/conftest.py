"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def stats() -> StatsRegistry:
    return StatsRegistry()


@pytest.fixture
def config() -> MachineConfig:
    """A small, fast machine: 2 cores, 2 MCs, Table II latencies."""
    return MachineConfig(num_cores=2)


@pytest.fixture
def config4() -> MachineConfig:
    return MachineConfig(num_cores=4)


def make_machine(
    hardware: HardwareModel = HardwareModel.ASAP,
    persistency: PersistencyModel = PersistencyModel.RELEASE,
    num_cores: int = 2,
    **config_kwargs,
) -> Machine:
    config = MachineConfig(num_cores=num_cores, **config_kwargs)
    return Machine(config, RunConfig(hardware=hardware, persistency=persistency))


def simple_writer(heap: PMAllocator, num_stores: int = 8, epoch_every: int = 2):
    """A single-thread program: ordered stores ending in a dfence."""
    buf = heap.alloc(64 * num_stores)

    def program():
        for i in range(num_stores):
            yield Store(buf + 64 * i, 64)
            if (i + 1) % epoch_every == 0:
                yield OFence()
            yield Compute(30)
        yield DFence()

    return program()


def locked_pair(heap: PMAllocator, iters: int = 6):
    """Two programs passing one lock, creating cross-thread deps."""
    lock = heap.alloc_lock()
    shared = heap.alloc(64)

    def make(tid):
        private = heap.alloc(64 * 4)

        def program():
            for i in range(iters):
                yield Acquire(lock)
                yield Load(shared, 8)
                yield Store(shared, 8)
                yield OFence()
                yield Store(private + 64 * (i % 4), 8)
                yield Release(lock)
                yield Compute(60)
            yield DFence()

        return program()

    return [make(0), make(1)]
