"""The directory queue: atomic claims, crash-safe results, eviction."""

from __future__ import annotations

import json
import pickle

from repro.fabric import FabricQueue, TaskEnvelope, TaskOutcome


def _env(task_id: str = "t1") -> TaskEnvelope:
    return TaskEnvelope(task_id=task_id, kind="call",
                        payload=(len, [1, 2]), label="call:len")


def test_task_roundtrip_and_idempotent_add(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    env = _env()
    queue.add_task(env)
    queue.add_task(env)  # second add is a no-op, not an error
    assert queue.task_ids() == ["t1"]
    assert queue.read_task("t1") == env
    assert queue.read_task("missing") is None


def test_claim_is_exclusive(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    queue.add_task(_env())
    assert queue.try_claim("t1", "w1", ts=1.0) is True
    assert queue.try_claim("t1", "w2", ts=2.0) is False
    lease = queue.lease_info("t1")
    assert lease is not None
    assert lease.worker == "w1"
    assert lease.ts == 1.0
    queue.release_lease("t1")
    assert queue.lease_info("t1") is None
    queue.release_lease("t1")  # releasing twice is fine


def test_claim_next_skips_leased_and_finished(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    for tid in ("a", "b", "c"):
        queue.add_task(_env(tid))
    queue.try_claim("a", "other", ts=0.0)
    queue.write_result(TaskOutcome(task_id="b", ok=True, value=2))
    env = queue.claim_next("me", ts=1.0)
    assert env is not None and env.task_id == "c"
    # everything now leased or finished: idle
    assert queue.claim_next("me", ts=2.0) is None


def test_result_roundtrip(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    outcome = TaskOutcome(task_id="t1", ok=True, value={"n": 3}, worker="w1")
    queue.write_result(outcome)
    assert queue.result_ids() == ["t1"]
    assert queue.read_result("t1") == outcome


def test_corrupt_result_is_evicted(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    (queue.results_dir / "t1.pkl").write_bytes(b"not a pickle")
    assert queue.read_result("t1") is None
    assert not (queue.results_dir / "t1.pkl").exists()


def test_wrong_type_result_is_evicted(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    (queue.results_dir / "t1.pkl").write_bytes(
        pickle.dumps({"not": "an outcome"})
    )
    assert queue.read_result("t1") is None
    assert not (queue.results_dir / "t1.pkl").exists()


def test_garbage_lease_reads_as_none(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    (queue.leases_dir / "t1.lease").write_text("{broken json")
    assert queue.lease_info("t1") is None
    (queue.leases_dir / "t2.lease").write_text(json.dumps({"worker": "w"}))
    assert queue.lease_info("t2") is None  # missing pid/ts fields


def test_stop_resume(tmp_path):
    queue = FabricQueue(tmp_path / "q")
    assert not queue.stopped()
    queue.stop()
    queue.stop()  # idempotent
    assert queue.stopped()
    queue.resume()
    assert not queue.stopped()
