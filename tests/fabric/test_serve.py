"""The ``repro serve`` HTTP service: submit, poll, cache, shutdown."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.fabric.scheduler import FabricScheduler
from repro.fabric.serve import FabricHTTPServer, FabricService

SPEC = {
    "workloads": ["queue"],
    "models": ["baseline", "asap_rp"],
    "ops": 20,
    "threads": 1,
    "seed": 7,
}


@pytest.fixture
def server(tmp_path):
    """A live service on an ephemeral port, torn down afterwards."""
    with FabricScheduler(jobs=2, cache_dir=str(tmp_path / "cache")) as sched:
        service = FabricService(sched, cache_dir=str(tmp_path / "cache"))
        http = FabricHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=http.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            yield http, thread
        finally:
            http.shutdown()
            thread.join(timeout=5)
            http.server_close()


def _request(port, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_done(port, job_id, budget_s=60.0):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        status, doc = _request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if doc["state"] != "running":
            return doc
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} still running after {budget_s}s")


def test_healthz(server):
    http, _ = server
    assert _request(http.server_address[1], "GET", "/v1/healthz") == (
        200, {"ok": True}
    )


def test_submit_poll_and_repeat_submission_hits_cache(server):
    http, _ = server
    port = http.server_address[1]

    status, doc = _request(port, "POST", "/v1/experiments", SPEC)
    assert status == 200
    assert doc["total"] == 2
    first = _poll_done(port, doc["job"])
    assert first["state"] == "done"
    assert first["completed"] == 2
    fingerprints = [c["fingerprint_sha"] for c in first["cells"]]
    assert all(fingerprints)

    # the whole point of serve: resubmitting the same spec is answered
    # from the shared store instantly -- done in the submit response,
    # every cell marked cached, identical fingerprints.
    status, again = _request(port, "POST", "/v1/experiments", SPEC)
    assert status == 200
    assert again["state"] == "done"
    assert again["cached"] == 2
    assert all(c["cached"] for c in again["cells"])
    assert [c["fingerprint_sha"] for c in again["cells"]] == fingerprints


def test_concurrent_submissions_multiplex(server):
    http, _ = server
    port = http.server_address[1]
    specs = [dict(SPEC, seed=seed) for seed in (11, 12, 13)]
    docs = [
        _request(port, "POST", "/v1/experiments", spec)[1] for spec in specs
    ]
    assert len({doc["job"] for doc in docs}) == 3
    for doc in docs:
        final = _poll_done(port, doc["job"])
        assert final["state"] == "done"
        assert final["completed"] == 2


def test_malformed_specs_get_400(server):
    http, _ = server
    port = http.server_address[1]
    for bad in (
        {"workloads": [], "models": ["asap_rp"]},
        {"models": ["asap_rp"]},
        {"workloads": ["queue"], "models": ["asap_rp"], "bogus": 1},
        {"workloads": ["no_such_workload"], "models": ["asap_rp"]},
        "not an object",
    ):
        status, doc = _request(port, "POST", "/v1/experiments", bad)
        assert status == 400, bad
        assert "error" in doc


def test_unknown_routes_and_jobs_get_404(server):
    http, _ = server
    port = http.server_address[1]
    assert _request(port, "GET", "/v1/jobs/nope")[0] == 404
    assert _request(port, "GET", "/v1/bogus")[0] == 404
    assert _request(port, "POST", "/v1/bogus")[0] == 404


def test_stats_merge_service_scheduler_and_cache(server):
    http, _ = server
    port = http.server_address[1]
    _request(port, "POST", "/v1/experiments", SPEC)
    status, stats = _request(port, "GET", "/v1/stats")
    assert status == 200
    assert stats["service"]["experiments_submitted"] == 1
    assert stats["scheduler"]["tasks_submitted"] == 2
    assert "hits" in stats["cache"]


def test_shutdown_route_stops_the_server(server):
    http, thread = server
    port = http.server_address[1]
    status, doc = _request(port, "POST", "/v1/shutdown")
    assert status == 200 and doc["shutting_down"]
    thread.join(timeout=10)
    assert not thread.is_alive()
