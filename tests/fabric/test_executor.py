"""FabricExecutor as a drop-in for every executor.map tenant.

The invariant under test everywhere: running a campaign through the
fabric produces the *same document bytes* as running it serially --
executors are substrates, not semantics.
"""

from __future__ import annotations

from repro.bench.suites import run_named_case
from repro.crashtest.campaign import run_campaign
from repro.exp import ExperimentPlan, run_plan
from repro.fabric import FabricExecutor, FabricScheduler
from repro.litmus import LitmusRunOptions, run_litmus, smoke_corpus


def test_run_plan_over_fabric_matches_serial():
    plan = ExperimentPlan.grid(
        ["queue", "heap"], ["baseline", "asap_rp"], ops_per_thread=20
    )
    serial = run_plan(plan)
    fabric = run_plan(plan, executor=FabricExecutor(jobs=2))
    assert [r.fingerprint() for r in serial.results] == [
        r.fingerprint() for r in fabric.results
    ]


def test_run_campaign_over_fabric_is_byte_identical():
    kwargs = dict(
        workloads=["queue"], models=["asap_rp"], points=5,
        ops_per_thread=10,
    )
    serial = run_campaign(**kwargs)
    fabric = run_campaign(**kwargs, executor=FabricExecutor(jobs=2))
    assert serial.to_json() == fabric.to_json()


def test_run_litmus_over_fabric_is_byte_identical():
    tests = smoke_corpus()[:2]
    serial = run_litmus(tests, LitmusRunOptions(points=4))
    fabric = run_litmus(
        tests,
        LitmusRunOptions(points=4, executor=FabricExecutor(jobs=2)),
    )
    assert serial.to_json() == fabric.to_json()


def test_bench_case_runs_through_generic_call_kind():
    executor = FabricExecutor(jobs=2)
    results = executor.map(
        run_named_case,
        [("smoke", "macro/nstore/baseline", 1),
         ("smoke", "macro/nstore/asap_rp", 1)],
    )
    assert [r.name for r in results] == [
        "macro/nstore/baseline", "macro/nstore/asap_rp"
    ]
    assert all(r.ops > 0 and r.events > 0 for r in results)


def test_attached_executor_reuses_one_scheduler():
    with FabricScheduler(jobs=2) as scheduler:
        executor = FabricExecutor(scheduler=scheduler)
        assert executor.jobs == scheduler.jobs
        plan = ExperimentPlan.grid(["queue"], ["asap_rp"],
                                   ops_per_thread=15)
        first = run_plan(plan, executor=executor)
        second = run_plan(plan, executor=executor)
        counters = scheduler.counters_snapshot()
    # the second plan's cells deduped onto the first's tasks in the
    # shared scheduler rather than spawning a second pool.
    assert counters["tasks_submitted"] == 1
    assert counters["tasks_deduped"] == 1
    assert [r.fingerprint() for r in first.results] == [
        r.fingerprint() for r in second.results
    ]


def test_ephemeral_executor_records_counters():
    executor = FabricExecutor(jobs=2)
    executor.map(run_named_case, [("smoke", "macro/nstore/baseline", 1)])
    assert executor.last_counters["tasks_completed"] == 1
