"""The ``repro fabric`` CLI: grid byte-identity, worker, status."""

from __future__ import annotations

import json

from repro.cli import main


def _run(capsys, *argv):
    code = main(["fabric", *argv])
    return code, capsys.readouterr().out


GRID = ("--workloads", "queue", "--models", "baseline", "asap_rp",
        "--ops", "16", "--threads", "1")


def test_grid_serial_vs_fabric_chaos_byte_identical(capsys, tmp_path):
    """The CI fabric-gate in miniature: a chaos-killed fabric run must
    produce the exact bytes of the serial reference."""
    serial_out = tmp_path / "serial.json"
    fabric_out = tmp_path / "fabric.json"
    stream = tmp_path / "stream.jsonl"

    code, out = _run(capsys, "grid", *GRID, "--serial",
                     "--out", str(serial_out))
    assert code == 0
    assert "2 cell(s) via serial" in out

    code, out = _run(
        capsys, "grid", *GRID, "--jobs", "2", "--chaos-kill", "1",
        "--stream", str(stream), "--out", str(fabric_out),
    )
    assert code == 0
    assert "via fabric jobs=2" in out

    assert serial_out.read_bytes() == fabric_out.read_bytes()
    doc = json.loads(fabric_out.read_text())
    assert doc["kind"] == "fabric-grid"
    assert len(doc["cells"]) == 2
    lines = [
        json.loads(line) for line in stream.read_text().splitlines()
    ]
    assert len(lines) == 2 and all(line["ok"] for line in lines)


def test_grid_cache_round_trip(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    code, first = _run(capsys, "grid", *GRID, "--jobs", "2",
                       "--cache-dir", cache)
    assert code == 0 and "misses 2" in first
    code, second = _run(capsys, "grid", *GRID, "--serial",
                        "--cache-dir", cache)
    assert code == 0 and "cache hits 2" in second


def test_worker_requires_queue_and_idles_out(capsys, tmp_path):
    code, _ = _run(capsys, "worker")
    assert code == 2
    code, out = _run(
        capsys, "worker", "--queue", str(tmp_path / "q"),
        "--max-idle", "0.2", "--worker-id", "w-test",
    )
    assert code == 0
    assert "exited after 0 task(s)" in out


def test_status_reports_queue_counts(capsys, tmp_path):
    code, _ = _run(capsys, "status")
    assert code == 2
    queue_dir = tmp_path / "q"
    code, out = _run(capsys, "grid", *GRID, "--jobs", "2",
                     "--queue", str(queue_dir))
    assert code == 0
    code, out = _run(capsys, "status", "--queue", str(queue_dir))
    assert code == 0
    doc = json.loads(out)
    assert doc["tasks"] == 2
    assert doc["results"] == 2
    assert doc["stopped"] is True  # the grid run stopped its workers
