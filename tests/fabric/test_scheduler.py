"""The fabric scheduler: correctness, dedupe, chaos, retry budget."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.exp import ResultCache
from repro.exp.spec import RunSpec, execute_spec
from repro.fabric import (
    FabricScheduler,
    FabricStalledError,
    FabricTaskError,
)


def _specs(n: int, ops: int = 20):
    return [
        RunSpec("queue", "asap_rp", num_threads=1, ops_per_thread=ops,
                seed=seed)
        for seed in range(1, n + 1)
    ]


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom on {x}")


def _suicide(x: int) -> int:
    os.kill(os.getpid(), signal.SIGKILL)
    return x  # pragma: no cover -- never reached


class _RecordingSink:
    def __init__(self):
        self.events = []

    def handle(self, event) -> None:
        self.events.append(event)


def test_map_matches_serial_execution():
    specs = _specs(4)
    serial = [execute_spec(spec) for spec in specs]
    with FabricScheduler(jobs=2) as scheduler:
        fanned = scheduler.map(execute_spec, specs)
    assert [r.fingerprint() for r in fanned] == [
        r.fingerprint() for r in serial
    ]


def test_generic_call_kind_and_input_order():
    with FabricScheduler(jobs=2) as scheduler:
        values = scheduler.map(_square, list(range(10)))
    assert values == [x * x for x in range(10)]


def test_map_empty_is_trivial():
    with FabricScheduler(jobs=2) as scheduler:
        assert scheduler.map(_square, []) == []


def test_cross_job_dedupe_serves_duplicates_once():
    specs = _specs(3)
    with FabricScheduler(jobs=2) as scheduler:
        first = scheduler.map(execute_spec, specs)
        second = scheduler.map(execute_spec, specs)
        counters = scheduler.counters_snapshot()
    assert [r.fingerprint() for r in first] == [
        r.fingerprint() for r in second
    ]
    assert counters["tasks_submitted"] == 3
    assert counters["tasks_deduped"] == 3
    assert counters["tasks_completed"] == 3
    assert counters["jobs_completed"] == 2


def test_cache_dir_is_a_shared_store_across_schedulers(tmp_path):
    cache_dir = str(tmp_path / "cache")
    specs = _specs(3)
    with FabricScheduler(jobs=2, cache_dir=cache_dir) as warm:
        warm.map(execute_spec, specs)
    # a brand-new scheduler (fresh queue) must hit the store for every
    # cell: no simulation happens twice anywhere on the fabric.
    with FabricScheduler(jobs=2, cache_dir=cache_dir) as cold:
        results = cold.map(execute_spec, specs)
        counters = cold.counters_snapshot()
    assert counters["tasks_cached"] == 3
    cache = ResultCache(cache_dir)
    assert all(
        cache.get(spec).fingerprint() == result.fingerprint()
        for spec, result in zip(specs, results)
    )


def test_chaos_kill_converges_byte_identical(tmp_path):
    """The fabric-gate property: SIGKILL mid-campaign loses nothing."""
    specs = _specs(8)
    serial = [execute_spec(spec) for spec in specs]
    stream = tmp_path / "results.jsonl"
    with FabricScheduler(
        jobs=2, chaos_kill_after=2, lease_timeout=5.0,
        stream_path=str(stream),
    ) as scheduler:
        results = scheduler.map(execute_spec, specs, timeout=110)
        counters = scheduler.counters_snapshot()
    assert counters["chaos_kills"] == 1
    assert counters["workers_died"] >= 1
    assert counters["workers_respawned"] >= 1
    assert [r.fingerprint() for r in results] == [
        r.fingerprint() for r in serial
    ]
    lines = [json.loads(line) for line in stream.read_text().splitlines()]
    assert len(lines) == len(specs)
    assert all(line["ok"] for line in lines)
    assert all(line["kind"] == "run" for line in lines)


def test_task_exception_is_terminal_not_retried():
    with FabricScheduler(jobs=2) as scheduler:
        with pytest.raises(FabricTaskError, match="boom on 1"):
            scheduler.map(_boom, [1])
        counters = scheduler.counters_snapshot()
    assert counters["tasks_failed"] == 1
    assert counters["tasks_retried"] == 0


def test_retry_budget_fails_worker_killing_task_cleanly():
    """A poison task that SIGKILLs every worker it lands on must be
    failed by the scheduler after ``max_retries`` steals -- not loop
    forever and not stall the fabric."""
    with FabricScheduler(
        jobs=1, max_retries=2, max_respawns=8, lease_timeout=60.0,
        poll_interval=0.01,
    ) as scheduler:
        with pytest.raises(FabricTaskError, match="retry budget"):
            scheduler.map(_suicide, [1], timeout=100)
        counters = scheduler.counters_snapshot()
    assert counters["leases_stolen"] == 3  # initial + 2 retries
    assert counters["tasks_retried"] == 2
    assert counters["workers_died"] == 3
    assert counters["tasks_failed"] == 1


def test_pool_death_without_respawn_raises_stalled():
    with FabricScheduler(
        jobs=1, respawn=False, poll_interval=0.01,
    ) as scheduler:
        with pytest.raises(FabricStalledError):
            scheduler.map(_suicide, [1], timeout=100)


def test_obs_events_reach_sinks():
    sink = _RecordingSink()
    with FabricScheduler(jobs=1, sinks=[sink]) as scheduler:
        scheduler.map(_square, [1, 2])
    kinds = {(e.type.value, e.kind) for e in sink.events}
    assert ("fabric_worker", "spawn") in kinds
    assert ("fabric_task", "submit") in kinds
    assert ("fabric_task", "done") in kinds
    assert all(e.comp == "fabric" for e in sink.events)


def test_wait_timeout_reports_progress():
    with FabricScheduler(jobs=1) as scheduler:
        with pytest.raises(TimeoutError, match="incomplete"):
            scheduler.map(
                execute_spec, _specs(2, ops=400), timeout=0.01
            )


def test_rejects_zero_workers():
    with pytest.raises(ValueError):
        FabricScheduler(jobs=0)
