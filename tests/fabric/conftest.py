"""Shared guard for the fabric suite.

Every test here spawns real worker processes and some deliberately
SIGKILL them, so a scheduling bug shows up as a hang, not a failure.
The autouse SIGALRM alarm turns any hang into a loud TimeoutError well
inside the CI job timeout.
"""

from __future__ import annotations

import signal

import pytest

#: hard cap per test; a wedged fabric must fail, not hang CI.
HARD_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _hard_timeout():
    """SIGALRM-based hard timeout (no pytest-timeout in the image)."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no guard available
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {HARD_TIMEOUT_S}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
