"""Checkpoint equivalence: resume must be observationally invisible.

The contract under test: take a run to a quiescent barrier, then either
(A) continue the live machine, or (B) serialize the snapshot to the
canonical-JSON envelope, parse it back, rebuild a machine from scratch
(regenerated programs fast-forwarded by executed-op counts) and continue
that.  Both halves must produce the *same run*: identical stats,
identical NVM media, identical epoch log, identical event count --
compared via :func:`repro.ckpt.api.run_fingerprint`, a digest of all of
it.  Any divergence means snapshot() missed a piece of machine state.

The property suite draws random (workload, model, ops, barrier) cells so
the checked surface grows over time instead of fossilizing around a few
hand-picked cases.
"""

from __future__ import annotations

import random

import pytest

from repro.ckpt.api import (
    CheckpointCell,
    create_checkpoint,
    resume_machine,
    run_fingerprint,
)
from repro.ckpt.codec import dumps_checkpoint, loads_checkpoint

pytestmark = pytest.mark.ckpt

#: every persistency design with distinct machine state (persist
#: buffers, epoch tables, bloom filters, eADR write-back buffers).
RP_MODEL_NAMES = ("baseline", "hops_rp", "asap_rp", "eadr")

WORKLOADS = ("queue", "ctree", "cceh", "echo", "nstore")


def _ab_fingerprints(cell: CheckpointCell, barrier_cycle: int):
    """Returns (live-continue, resumed-continue) fingerprints or None."""
    made = create_checkpoint(cell, barrier_cycle)
    if made is None:  # run finished before the barrier -- nothing to test
        return None
    meta, state, live = made
    blob = dumps_checkpoint(meta, state)

    result_a = live.continue_run()
    fp_a = run_fingerprint(live, result_a)

    meta2, state2 = loads_checkpoint(blob)
    resumed = resume_machine(meta2, state2)
    result_b = resumed.continue_run()
    fp_b = run_fingerprint(resumed, result_b)
    return fp_a, fp_b


@pytest.mark.parametrize("model", RP_MODEL_NAMES)
def test_snapshot_resume_identity_per_model(model):
    """barrier -> snapshot -> restore -> continue is byte-identical."""
    cell = CheckpointCell("queue", model, ops_per_thread=200)
    pair = _ab_fingerprints(cell, barrier_cycle=1500)
    assert pair is not None, "barrier landed after the run ended"
    assert pair[0] == pair[1]


def test_property_random_cells():
    """Random (workload, model, ops, barrier) triples all round-trip."""
    rng = random.Random(0xA5A9)
    checked = 0
    for _ in range(10):
        cell = CheckpointCell(
            rng.choice(WORKLOADS),
            rng.choice(RP_MODEL_NAMES),
            ops_per_thread=rng.choice((120, 200, 320)),
            seed=rng.choice((7, 11)),
        )
        pair = _ab_fingerprints(cell, barrier_cycle=rng.randrange(400, 4000))
        if pair is None:
            continue
        checked += 1
        assert pair[0] == pair[1], f"divergence in {cell}"
    # the barrier may fall after short runs end; most draws must count.
    assert checked >= 6


def test_snapshot_is_canonical():
    """Same barrier -> byte-identical serialized checkpoint."""
    blobs = []
    for _ in range(2):
        made = create_checkpoint(
            CheckpointCell("ctree", "asap_rp", ops_per_thread=150), 1200
        )
        assert made is not None
        meta, state, _live = made
        blobs.append(dumps_checkpoint(meta, state))
    assert blobs[0] == blobs[1]


def test_mid_run_snapshot_preserves_locks():
    """Barriers inside lock-heavy regions still round-trip (the lock
    table, waiter queues and retire order are all part of the state)."""
    cell = CheckpointCell("queue", "asap_rp", ops_per_thread=260, seed=11)
    pair = _ab_fingerprints(cell, barrier_cycle=900)
    assert pair is not None
    assert pair[0] == pair[1]


@pytest.mark.slow
def test_property_random_cells_deep():
    """Wider random sweep (opt-in: -m slow)."""
    rng = random.Random(0xC0FFEE)
    for _ in range(40):
        cell = CheckpointCell(
            rng.choice(WORKLOADS),
            rng.choice(RP_MODEL_NAMES),
            ops_per_thread=rng.choice((200, 400, 800)),
            seed=rng.choice((3, 7, 13)),
        )
        pair = _ab_fingerprints(cell, barrier_cycle=rng.randrange(500, 12000))
        if pair is None:
            continue
        assert pair[0] == pair[1], f"divergence in {cell}"
