"""Checkpoint envelope: round-trip, forward compatibility, rejection."""

from __future__ import annotations

import json

import pytest

from repro.ckpt.codec import (
    CKPT_KIND,
    CKPT_SCHEMA_VERSION,
    dumps_checkpoint,
    loads_checkpoint,
)

pytestmark = pytest.mark.ckpt

META = {"workload": "queue", "model": "asap_rp", "seed": 7,
        "ops_per_thread": 100, "num_threads": None, "barrier_cycle": 500}
STATE = {"engine": {"now": 500, "events_executed": 123}, "cores": []}


def test_round_trip():
    meta, state = loads_checkpoint(dumps_checkpoint(META, STATE))
    assert meta == META
    assert state == STATE


def test_canonical_bytes():
    assert dumps_checkpoint(META, STATE) == dumps_checkpoint(META, STATE)
    # key order of the input dicts must not leak into the bytes
    shuffled = dict(reversed(list(META.items())))
    assert dumps_checkpoint(shuffled, STATE) == dumps_checkpoint(META, STATE)


def test_unknown_extra_fields_tolerated():
    """A newer writer may add top-level or meta fields; this reader
    must ignore them rather than refuse the file."""
    doc = json.loads(dumps_checkpoint(META, STATE))
    doc["written_by"] = "repro 9.9"
    doc["meta"]["comment"] = "future field"
    meta, state = loads_checkpoint(json.dumps(doc))
    assert meta["workload"] == "queue"
    assert meta["comment"] == "future field"
    assert state == STATE


def test_schema_version_bump_rejected():
    doc = json.loads(dumps_checkpoint(META, STATE))
    doc["schema"] = CKPT_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema version"):
        loads_checkpoint(json.dumps(doc))


def test_wrong_kind_rejected_with_pointed_error():
    doc = json.loads(dumps_checkpoint(META, STATE))
    doc["kind"] = "repro-crash-state"
    with pytest.raises(ValueError, match="not a simulator checkpoint"):
        loads_checkpoint(json.dumps(doc))
    assert CKPT_KIND == "repro-checkpoint"


@pytest.mark.parametrize("text", ["[]", "42", '"x"'])
def test_non_object_rejected(text):
    with pytest.raises(ValueError, match="JSON object"):
        loads_checkpoint(text)


def test_malformed_meta_state_rejected():
    doc = json.loads(dumps_checkpoint(META, STATE))
    doc["state"] = "oops"
    with pytest.raises(ValueError, match="meta/state"):
        loads_checkpoint(json.dumps(doc))
