"""Checkpoint-anchored crash simulation equivalence.

The fast-forward contract used by dense crash sweeps: crashing a run
that was resumed from a checkpoint must produce *exactly* the crash
state of continuing the live machine past the same barrier -- identical
surviving media, identical epoch log, byte-identical ``dumps_state``
output.  (A barrier-free cold run is a different, equally valid
trajectory: the quiescent barrier itself drains the machine, so the
comparison baseline is always "cold through the same barrier".)
"""

from __future__ import annotations

import json

import pytest

from repro.ckpt.api import CheckpointCell, create_checkpoint, resume_machine
from repro.ckpt.codec import dumps_checkpoint, loads_checkpoint
from repro.core.crash import crash_machine
from repro.crashtest.campaign import CrashPointSpec, replay_failure
from repro.crashtest.serialize import dumps_state, save_state

pytestmark = pytest.mark.ckpt

CELL = CheckpointCell("queue", "asap_rp", ops_per_thread=200)
BARRIER = 1200
CRASH = 2600


def _anchored_pair(cell, barrier, crash_cycle):
    """(live-continued crash bytes, resumed crash bytes, meta, state)."""
    made = create_checkpoint(cell, barrier)
    assert made is not None, "barrier landed after the run ended"
    meta, state, live = made
    blob = dumps_checkpoint(meta, state)

    live.continue_until(crash_cycle)
    bytes_a = dumps_state(crash_machine(live), {})

    meta2, state2 = loads_checkpoint(blob)
    resumed = resume_machine(meta2, state2)
    resumed.continue_until(crash_cycle)
    bytes_b = dumps_state(crash_machine(resumed), {})
    return bytes_a, bytes_b, meta, state


def test_anchored_crash_is_byte_identical():
    bytes_a, bytes_b, _meta, _state = _anchored_pair(CELL, BARRIER, CRASH)
    assert bytes_a == bytes_b


@pytest.mark.parametrize("model", ("baseline", "hops_rp", "eadr"))
def test_anchored_crash_across_models(model):
    cell = CheckpointCell("ctree", model, ops_per_thread=150)
    bytes_a, bytes_b, _meta, _state = _anchored_pair(cell, 1000, 2200)
    assert bytes_a == bytes_b


def test_spec_simulate_from_checkpoint_matches_live():
    """CrashPointSpec.simulate_from_checkpoint == continuing the live
    machine -- the API the campaign/CLI layers actually call."""
    made = create_checkpoint(CELL, BARRIER)
    assert made is not None
    meta, state, live = made
    spec = CrashPointSpec(
        CELL.workload, CELL.model, crash_cycle=CRASH,
        ops_per_thread=CELL.ops_per_thread, seed=CELL.seed,
    )
    anchored = spec.simulate_from_checkpoint(meta, state)

    live.continue_until(CRASH)
    reference = crash_machine(live)
    assert dumps_state(anchored, {}) == dumps_state(reference, {})
    assert anchored.crash_cycle == CRASH


def test_simulate_from_checkpoint_rejects_foreign_cell():
    made = create_checkpoint(CELL, BARRIER)
    assert made is not None
    meta, state, _live = made
    for wrong in (
        CrashPointSpec("ctree", "asap_rp", CRASH,
                       ops_per_thread=CELL.ops_per_thread),
        CrashPointSpec("queue", "hops_rp", CRASH,
                       ops_per_thread=CELL.ops_per_thread),
        CrashPointSpec("queue", "asap_rp", CRASH, ops_per_thread=999),
        CrashPointSpec("queue", "asap_rp", CRASH,
                       ops_per_thread=CELL.ops_per_thread, seed=99),
    ):
        with pytest.raises(ValueError, match="checkpoint is for"):
            wrong.simulate_from_checkpoint(meta, state)


def test_replay_failure_from_checkpoint(tmp_path):
    """End-to-end: a saved crash state re-adjudicated AND re-simulated
    from a checkpoint anchor yields the same verdict and crash image."""
    made = create_checkpoint(CELL, BARRIER)
    assert made is not None
    meta, state, live = made
    ckpt_path = tmp_path / "anchor.ckpt.json"
    ckpt_path.write_text(dumps_checkpoint(meta, state))

    spec = CrashPointSpec(
        CELL.workload, CELL.model, crash_cycle=CRASH,
        ops_per_thread=CELL.ops_per_thread, seed=CELL.seed,
    )
    live.continue_until(CRASH)
    crashed = crash_machine(live)
    failure_path = tmp_path / "failure.json"
    save_state(str(failure_path), crashed,
               {"spec": spec.describe(), "violations": []})

    doc = replay_failure(str(failure_path), from_checkpoint=str(ckpt_path))
    anchored = doc["anchored"]
    assert anchored["crash_cycle"] == doc["crash_cycle"] == CRASH
    assert anchored["barrier_cycle"] == BARRIER
    assert anchored["media_lines"] == doc["media_lines"]
    assert anchored["generic_violations"] == doc["generic_violations"]
    assert anchored["oracle_violations"] == doc["oracle_violations"]
    assert anchored["reproduced"] == doc["reproduced"]
    json.dumps(doc)  # the whole report must stay JSON-serializable
