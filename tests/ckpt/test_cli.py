"""The ``repro ckpt`` and ``repro sample`` CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.ckpt


def test_ckpt_create_inspect_resume(capsys, tmp_path):
    path = tmp_path / "queue.ckpt.json"
    code = main([
        "ckpt", "queue", "--model", "asap_rp", "--ops", "200",
        "--at", "1200", "--out", str(path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"wrote {path}" in out
    doc = json.loads(path.read_text())
    assert doc["kind"] == "repro-checkpoint"

    code = main(["ckpt", "--inspect", str(path)])
    summary = json.loads(capsys.readouterr().out)
    assert code == 0
    assert summary["workload"] == "queue"
    assert summary["model"] == "asap_rp"
    assert summary["barrier_cycle"] == 1200
    assert summary["quiesced_at"] >= 1200
    assert len(summary["cores"]) == 4

    code = main(["ckpt", "--resume", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "resumed queue/asap_rp from barrier cycle 1200" in out
    assert "finished at cycle" in out


def test_ckpt_barrier_after_run_end_errors(capsys, tmp_path):
    code = main([
        "ckpt", "queue", "--ops", "8", "--at", "10000000",
        "--out", str(tmp_path / "never.json"),
    ])
    err = capsys.readouterr().err
    assert code == 1
    assert "finished before cycle" in err
    assert not (tmp_path / "never.json").exists()


def test_ckpt_requires_workload_or_file(capsys):
    assert main(["ckpt"]) == 2
    assert main(["ckpt", "queue"]) == 2  # missing --at


def test_sample_cli_reports_estimates(capsys, tmp_path):
    out_path = tmp_path / "sample.json"
    code = main([
        "sample", "queue", "--model", "asap_rp", "--ops", "800",
        "--interval-ops", "50", "--out", str(out_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "representatives of" in out
    assert "cycles" in out
    doc = json.loads(out_path.read_text())
    assert doc["workload"] == "queue"
    assert doc["ops_simulated"] < doc["ops_total"]
    assert "errors" not in doc  # no full run without --validate


def test_sample_cli_validate_prints_errors(capsys):
    code = main([
        "sample", "queue", "--model", "baseline", "--ops", "800",
        "--interval-ops", "50", "--validate",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "actual-error" in out
    assert "geomean error" in out


def test_sample_cli_rejects_bad_config(capsys):
    code = main(["sample", "queue", "--interval-ops", "0"])
    assert code == 2
    assert "interval_ops" in capsys.readouterr().err


def test_crashtest_from_checkpoint_requires_replay(capsys):
    code = main(["crashtest", "--from-checkpoint", "x.json"])
    assert code == 2
    assert "--replay" in capsys.readouterr().err


def test_crashtest_anchor_past_crash_cycle_is_clean_error(capsys, tmp_path):
    """A checkpoint whose quiescent point lands past the saved crash
    cycle exits 2 with a message, not a traceback."""
    from repro.ckpt.api import CheckpointCell, create_checkpoint
    from repro.ckpt.codec import dumps_checkpoint
    from repro.core.crash import crash_machine
    from repro.crashtest.campaign import CrashPointSpec
    from repro.crashtest.serialize import save_state

    cell = CheckpointCell("queue", "asap_rp", ops_per_thread=200)
    early = create_checkpoint(cell, 600)
    late = create_checkpoint(cell, 3000)
    assert early is not None and late is not None
    ckpt = tmp_path / "late.ckpt.json"
    ckpt.write_text(dumps_checkpoint(late[0], late[1]))

    live = early[2]
    live.continue_until(1300)
    spec = CrashPointSpec("queue", "asap_rp", 1300, ops_per_thread=200)
    failure = tmp_path / "failure.json"
    save_state(str(failure), crash_machine(live),
               {"spec": spec.describe(), "violations": []})

    code = main([
        "crashtest", "--replay", str(failure),
        "--from-checkpoint", str(ckpt),
    ])
    assert code == 2
    assert "precedes the quiescent point" in capsys.readouterr().err


def test_crashtest_replay_from_checkpoint(capsys, tmp_path):
    """Anchored replay through the CLI: same cell checkpoint + saved
    crash state -> anchored verdict printed alongside the direct one."""
    from repro.ckpt.api import CheckpointCell, create_checkpoint
    from repro.ckpt.codec import dumps_checkpoint
    from repro.core.crash import crash_machine
    from repro.crashtest.campaign import CrashPointSpec
    from repro.crashtest.serialize import save_state

    cell = CheckpointCell("queue", "asap_rp", ops_per_thread=200)
    made = create_checkpoint(cell, 1200)
    assert made is not None
    meta, state, live = made
    ckpt = tmp_path / "anchor.ckpt.json"
    ckpt.write_text(dumps_checkpoint(meta, state))

    live.continue_until(2600)
    spec = CrashPointSpec("queue", "asap_rp", 2600, ops_per_thread=200)
    failure = tmp_path / "failure.json"
    save_state(str(failure), crash_machine(live),
               {"spec": spec.describe(), "violations": []})

    code = main([
        "crashtest", "--replay", str(failure),
        "--from-checkpoint", str(ckpt),
    ])
    out = capsys.readouterr().out
    assert "anchored re-simulation" in out
    assert "barrier cycle 1200" in out
    # a clean state reproduces no violations either way: exit 1, both
    # direct and anchored marked NOT reproduced.
    assert code == 1
    assert out.count("NOT reproduced") == 2
