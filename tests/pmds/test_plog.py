"""Crash-recovery tests for the persistent append-only log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import Compute, DFence, PMAllocator
from repro.core.crash import run_and_crash
from repro.pmds import PersistentLog
from repro.sim.config import HardwareModel, MachineConfig, RunConfig


def log_program(log, n, think=50):
    def program():
        for i in range(n):
            yield from log.append(f"record-{i}")
            yield Compute(think)
        yield DFence()

    return program()


def run_crash(hardware, crash_cycle, n=20, think=50):
    heap = PMAllocator()
    log = PersistentLog(heap, capacity=64)
    state = run_and_crash(
        MachineConfig(num_cores=1), RunConfig(hardware=hardware),
        [log_program(log, n, think)], crash_cycle,
    )
    return log, state


class TestBasics:
    def test_complete_run_recovers_everything(self):
        log, state = run_crash(HardwareModel.ASAP, 10**8)
        recovery = log.recover(state)
        assert recovery.clean
        assert recovery.values == log.appended

    def test_immediate_crash_recovers_empty(self):
        log, state = run_crash(HardwareModel.ASAP, 1)
        recovery = log.recover(state)
        assert recovery.clean
        assert recovery.values == []

    def test_capacity_enforced(self):
        heap = PMAllocator()
        log = PersistentLog(heap, capacity=2)
        list(log.append("a"))
        list(log.append("b"))
        with pytest.raises(ValueError, match="full"):
            list(log.append("c"))


class TestPrefixGuarantee:
    @pytest.mark.parametrize(
        "hardware",
        [HardwareModel.BASELINE, HardwareModel.HOPS, HardwareModel.ASAP,
         HardwareModel.EADR],
        ids=lambda h: h.value,
    )
    @given(crash_cycle=st.integers(min_value=10, max_value=12_000))
    @settings(max_examples=12, deadline=None)
    def test_crash_loses_at_most_a_suffix(self, hardware, crash_cycle):
        log, state = run_crash(hardware, crash_cycle)
        recovery = log.recover(state)
        assert recovery.clean, f"holes: {recovery.holes}"
        assert recovery.values == log.appended[: len(recovery.values)]

    def test_mid_crash_is_a_proper_prefix(self):
        log, state = run_crash(HardwareModel.ASAP, 1200)
        recovery = log.recover(state)
        assert recovery.clean
        assert 0 < len(recovery.values) < len(log.appended)


class TestHolesOnUnsoundHardware:
    # A wide flush window is what exposes the reorder: with the default
    # 8-flush limit the persist buffer self-serializes against the jammed
    # controller and accidentally hides the bug.
    CONFIG = MachineConfig(num_cores=1, pb_inflight_max=32)

    def test_no_undo_can_produce_holes(self):
        """Interleave the log with controller-jamming traffic so eager
        unordered flushing can persist entry i+1 while entry i is stuck;
        the recovery procedure must detect the hole and truncate."""
        from repro.core.api import Store

        def jammed_program(heap, log, n=16):
            chunk = heap.alloc(64 * 1024, align=256)
            # blocks on MC0 only (the log's own lines span both MCs)
            mc0 = [
                addr for addr in range(chunk, chunk + 80 * 256, 256)
                if (addr // 256) % 2 == 0
            ]

            def program():
                for i in range(n):
                    for j in range(4):
                        yield Store(mc0[(4 * i + j) % len(mc0)], 64)
                    yield from log.append(f"record-{i}")
                yield DFence()

            return program()

        saw_hole = False
        for crash_cycle in range(100, 9000, 83):
            heap = PMAllocator()
            log = PersistentLog(heap, capacity=64)
            state = run_and_crash(
                self.CONFIG,
                RunConfig(hardware=HardwareModel.ASAP_NO_UNDO),
                [jammed_program(heap, log)], crash_cycle,
            )
            recovery = log.recover(state)
            # truncation recovery always yields a prefix...
            assert recovery.values == log.appended[: len(recovery.values)]
            if not recovery.clean:
                saw_hole = True
                assert recovery.truncated  # something was beyond the hole
        assert saw_hole

    def test_real_asap_never_holes_under_the_same_jam(self):
        from repro.core.api import Store

        for crash_cycle in range(100, 9000, 167):
            heap = PMAllocator()
            log = PersistentLog(heap, capacity=64)
            chunk = heap.alloc(64 * 1024, align=256)
            mc0 = [
                addr for addr in range(chunk, chunk + 80 * 256, 256)
                if (addr // 256) % 2 == 0
            ]

            def program():
                for i in range(16):
                    for j in range(4):
                        yield Store(mc0[(4 * i + j) % len(mc0)], 64)
                    yield from log.append(f"record-{i}")
                yield DFence()

            state = run_and_crash(
                self.CONFIG,
                RunConfig(hardware=HardwareModel.ASAP),
                [program()], crash_cycle,
            )
            assert log.recover(state).clean
