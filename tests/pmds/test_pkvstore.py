"""Crash-recovery tests for the persistent KV store."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import Compute, DFence, PMAllocator
from repro.core.crash import run_and_crash
from repro.core.machine import Machine
from repro.pmds import PersistentKVStore
from repro.sim.config import HardwareModel, MachineConfig, RunConfig


def kv_programs(store, num_threads=2, puts_per_thread=15, seed=3):
    programs = []
    for thread in range(num_threads):
        rng = random.Random(seed * 31 + thread)

        def program(thread=thread, rng=rng):
            for i in range(puts_per_thread):
                key = f"k{rng.randrange(10)}"
                yield from store.put(key, f"v{thread}.{i}")
                yield Compute(rng.randrange(30, 120))
            yield DFence()

        programs.append(program())
    return programs


def run_crash(hardware, crash_cycle, seed=3):
    heap = PMAllocator()
    store = PersistentKVStore(heap, buckets=4, pool_slots=64)
    state = run_and_crash(
        MachineConfig(num_cores=2), RunConfig(hardware=hardware),
        kv_programs(store, seed=seed), crash_cycle,
    )
    return store, state


class TestBasics:
    def test_complete_run_recovers_shadow(self):
        store, state = run_crash(HardwareModel.ASAP, 10**8)
        recovery = store.recover(state)
        assert recovery.clean
        assert recovery.values == store.shadow

    def test_empty_store_recovers_empty(self):
        heap = PMAllocator()
        store = PersistentKVStore(heap)
        state = run_crash(HardwareModel.ASAP, 1)[1]
        recovery = store.recover(state)
        assert recovery.values == {}

    def test_pool_exhaustion_raises(self):
        heap = PMAllocator()
        store = PersistentKVStore(heap, pool_slots=1)
        list(store.put("a", 1))
        with pytest.raises(ValueError, match="exhausted"):
            list(store.put("b", 2))

    def test_updates_shadow_newest_value(self):
        store, state = run_crash(HardwareModel.ASAP, 10**8)
        recovery = store.recover(state)
        # every recovered value is the newest put for its key
        for key, value in recovery.values.items():
            assert store.shadow[key] == value


class TestCrashSafety:
    @pytest.mark.parametrize(
        "hardware",
        [HardwareModel.BASELINE, HardwareModel.HOPS, HardwareModel.ASAP],
        ids=lambda h: h.value,
    )
    @given(crash_cycle=st.integers(min_value=10, max_value=20_000))
    @settings(max_examples=10, deadline=None)
    def test_no_dangling_pointers_on_sound_hardware(
        self, hardware, crash_cycle
    ):
        store, state = run_crash(hardware, crash_cycle)
        recovery = store.recover(state)
        assert recovery.clean, f"dangling buckets: {recovery.dangling}"

    @given(crash_cycle=st.integers(min_value=10, max_value=20_000))
    @settings(max_examples=10, deadline=None)
    def test_recovered_values_are_well_formed_puts(self, crash_cycle):
        """Chains never invent data: every recovered pair came from a put."""
        store, state = run_crash(HardwareModel.ASAP, crash_cycle)
        recovery = store.recover(state)
        for key, value in recovery.values.items():
            assert key.startswith("k")
            assert value.startswith("v")
            thread, index = value[1:].split(".")
            assert int(thread) in (0, 1)
            assert 0 <= int(index) < 15


class TestDanglingOnUnsoundHardware:
    """End-to-end failure injection: jam the entry pool's controller so a
    bucket head can race ahead of the entry it names."""

    @staticmethod
    def _jammer(heap, parity):
        from repro.core.api import Store

        chunk = heap.alloc(64 * 1024, align=256)
        blocks = [
            addr for addr in range(chunk, chunk + 120 * 256, 256)
            if (addr // 256) % 2 == parity
        ]

        def program():
            for i in range(120):
                yield Store(blocks[i % len(blocks)], 64)
            yield DFence()

        return program()

    def _dangles(self, hardware):
        count = 0
        for crash_cycle in range(200, 5000, 83):
            heap = PMAllocator()
            store = PersistentKVStore(heap, buckets=4, pool_slots=64)
            parity = (store.slot_addr(0) // 256) % 2
            programs = kv_programs(store, puts_per_thread=12) + [
                self._jammer(heap, parity)
            ]
            state = run_and_crash(
                MachineConfig(num_cores=3, pb_inflight_max=32),
                RunConfig(hardware=hardware), programs, crash_cycle,
            )
            if not store.recover(state).clean:
                count += 1
        return count

    def test_no_undo_dangles(self):
        assert self._dangles(HardwareModel.ASAP_NO_UNDO) > 0

    def test_real_asap_never_dangles_under_the_same_jam(self):
        assert self._dangles(HardwareModel.ASAP) == 0


class TestDanglingDetection:
    def test_recovery_detects_corrupted_pointer(self):
        """Unit-level: hand the recovery a doctored crash image with a
        head pointer naming a never-written slot."""
        from repro.pmds.pkvstore import HeadPointer

        heap = PMAllocator()
        store = PersistentKVStore(heap, buckets=2, pool_slots=8)
        machine = Machine(
            MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
        )

        def program():
            yield from store.put("a", 1)
            yield DFence()

        machine.run([program()])
        from repro.core.crash import crash_machine

        state = crash_machine(machine)
        # doctor the image: point bucket 0's head at an unwritten slot
        bucket = store.bucket_of("a")
        head_line = store.head_addr(bucket)
        fake_id = max(state.log.writes) + 1
        state.media[head_line] = fake_id
        state.log.payloads[fake_id] = HeadPointer(slot=7)  # never written
        state.log.writes[fake_id] = state.log.writes[max(state.log.writes) - 1]
        recovery = store.recover(state)
        assert not recovery.clean
        assert bucket in recovery.dangling
