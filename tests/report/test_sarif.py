"""The shared SARIF 2.1.0 renderer (used by repro.lint and repro.litmus)."""

import json

import pytest

from repro.report import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    SarifResult,
    SarifRule,
    dumps,
    make_sarif,
    relative_uri,
)

RULE = SarifRule(id="XX001", name="demo", summary="a demo rule",
                 level="warning", help_text="do the thing")


class TestBuildingBlocks:
    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            SarifRule(id="XX002", name="bad", summary="s", level="fatal")
        with pytest.raises(ValueError, match="level"):
            SarifResult(rule_id="XX001", level="fatal", message="m")

    def test_relative_uri_cuts_at_marker(self):
        assert relative_uri("/abs/repo/src/repro/x.py") == "src/repro/x.py"
        assert relative_uri(
            "/abs/repo/tests/lint/t.py"
        ) == "tests/lint/t.py"
        # unknown paths degrade to the file name, missing to "unknown"
        assert relative_uri("/elsewhere/x.py") == "x.py"
        assert relative_uri("/abs/tests/x.py", markers=("src",)) == "x.py"
        assert relative_uri(None) == "unknown"


class TestMakeSarif:
    def test_document_shape(self):
        result = SarifResult(
            rule_id="XX001", level="warning", message="hello",
            uri="src/repro/x.py", start_line=3,
            properties={"extra": 1},
        )
        doc = make_sarif("tool", "9.9.9", [RULE], [result])
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "tool"
        assert run["tool"]["driver"]["rules"][0]["id"] == "XX001"
        entry = run["results"][0]
        assert entry["ruleId"] == "XX001"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"]["startLine"] == 3
        assert entry["properties"] == {"extra": 1}

    def test_unknown_rule_id_rejected(self):
        stray = SarifResult(rule_id="YY999", level="note", message="m")
        with pytest.raises(ValueError, match="YY999"):
            make_sarif("tool", "1.0.0", [RULE], [stray])

    def test_dumps_round_trips(self):
        doc = make_sarif("tool", "1.0.0", [RULE], [])
        assert json.loads(dumps(doc)) == doc
