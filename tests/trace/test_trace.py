"""Tests for trace recording, serialization, replay and generation."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.trace import (
    SyntheticTraceConfig,
    Trace,
    record_programs,
    synthetic_trace,
)
from repro.trace.ops import decode_op, dumps_op, encode_op, loads_op
from repro.workloads import get_workload

from repro.core.api import NewStrand

ALL_OPS = [
    Store(0x1000, 64, "payload"),
    Store(0x1000, 8),
    Load(0x2000, 16),
    OFence(),
    DFence(),
    Acquire(0x40),
    Release(0x40),
    Compute(123),
    NewStrand(),
]


class TestOpCodec:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda o: type(o).__name__)
    def test_roundtrip(self, op):
        assert decode_op(encode_op(op)) == op

    def test_json_roundtrip(self):
        for op in ALL_OPS:
            assert loads_op(dumps_op(op)) == op

    def test_non_json_payload_dropped(self):
        op = Store(0x1000, 8, payload=object())
        decoded = decode_op(encode_op(op))
        assert decoded.payload is None
        assert decoded.addr == op.addr

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_op(["XX"])

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError):
            encode_op(object())


class TestRecordReplay:
    def _run(self, programs, hardware=HardwareModel.ASAP):
        machine = Machine(
            MachineConfig(num_cores=4), RunConfig(hardware=hardware)
        )
        return machine.run(programs)

    def test_recording_captures_all_ops(self):
        workload = get_workload("cceh", ops_per_thread=10)
        heap = PMAllocator()
        programs = workload.programs(heap, 4)
        wrapped, trace = record_programs(programs)
        result = self._run(wrapped)
        assert trace.num_threads == 4
        assert trace.num_ops() == result.ops_executed

    def test_replay_reproduces_runtime_exactly(self):
        workload = get_workload("dash_eh", ops_per_thread=10)
        heap = PMAllocator()
        wrapped, trace = record_programs(workload.programs(heap, 4))
        original = self._run(wrapped)
        replayed = self._run(trace.programs())
        assert replayed.runtime_cycles == original.runtime_cycles

    def test_replay_across_models(self):
        """A trace recorded under ASAP runs under every model."""
        workload = get_workload("p_clht", ops_per_thread=8)
        heap = PMAllocator()
        wrapped, trace = record_programs(workload.programs(heap, 2))
        self._run(wrapped)
        for hardware in HardwareModel:
            machine = Machine(
                MachineConfig(num_cores=2), RunConfig(hardware=hardware)
            )
            result = machine.run(trace.programs())
            assert result.runtime_cycles > 0

    def test_save_and_load(self, tmp_path):
        workload = get_workload("fast_fair", ops_per_thread=6)
        heap = PMAllocator()
        wrapped, trace = record_programs(workload.programs(heap, 2))
        self._run(wrapped)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_threads == trace.num_threads
        assert loaded.num_ops() == trace.num_ops()
        original = self._run(trace.programs())
        replayed = self._run(loaded.programs())
        assert replayed.runtime_cycles == original.runtime_cycles

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "threads": 0}\n')
        with pytest.raises(ValueError, match="version"):
            Trace.load(path)


class TestSyntheticTraces:
    def test_shape_parameters(self):
        config = SyntheticTraceConfig(
            num_threads=2, ops_per_thread=20, epoch_size=4, sharing=0.0
        )
        trace = synthetic_trace(config)
        assert trace.num_threads == 2
        ofences = sum(
            1 for op in trace.threads[0] if type(op).__name__ == "OFence"
        )
        assert ofences == 5  # 20 stores / 4 per epoch

    def test_sharing_produces_lock_ops(self):
        config = SyntheticTraceConfig(sharing=1.0, ops_per_thread=12)
        trace = synthetic_trace(config)
        kinds = {type(op).__name__ for op in trace.threads[0]}
        assert "Acquire" in kinds and "Release" in kinds

    def test_no_sharing_no_locks(self):
        config = SyntheticTraceConfig(sharing=0.0)
        trace = synthetic_trace(config)
        kinds = {type(op).__name__ for op in trace.threads[0]}
        assert "Acquire" not in kinds

    def test_deterministic(self):
        config = SyntheticTraceConfig(seed=5)
        heap_a, heap_b = PMAllocator(), PMAllocator()
        a = synthetic_trace(config, heap_a)
        b = synthetic_trace(config, heap_b)
        assert a.threads == b.threads

    def test_runs_on_machine(self):
        trace = synthetic_trace(SyntheticTraceConfig(num_threads=2))
        machine = Machine(
            MachineConfig(num_cores=2), RunConfig(hardware=HardwareModel.ASAP)
        )
        result = machine.run(trace.programs())
        assert result.runtime_cycles > 0
