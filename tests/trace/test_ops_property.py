"""Property test: the op codec round-trips every op type.

Hypothesis drives :func:`repro.trace.ops.encode_op` /
:func:`~repro.trace.ops.decode_op` across the whole op vocabulary and
arbitrary field values, including the documented lossy case: a ``Store``
payload that is not JSON-representable is dropped to ``None`` (payloads
never affect timing), while every other field survives exactly.
"""

from hypothesis import given, strategies as st

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    Release,
    Store,
)
from repro.trace.ops import decode_op, dumps_op, encode_op, loads_op

_addrs = st.integers(min_value=0, max_value=2**48)
_sizes = st.integers(min_value=0, max_value=4096)
_json_safe_payloads = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
)
_unsafe_payloads = st.one_of(
    st.binary(min_size=1, max_size=16),
    st.tuples(st.integers()),
    st.lists(st.integers(), min_size=1, max_size=4),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
    st.builds(object),
)

_any_op = st.one_of(
    st.builds(Store, addr=_addrs, size=_sizes, payload=_json_safe_payloads),
    st.builds(Load, addr=_addrs, size=_sizes),
    st.just(OFence()),
    st.just(DFence()),
    st.builds(Acquire, lock=_addrs),
    st.builds(Release, lock=_addrs),
    st.builds(Compute, cycles=st.integers(min_value=0, max_value=10**9)),
    st.just(NewStrand()),
)


class TestOpCodecProperties:
    @given(op=_any_op)
    def test_encode_decode_roundtrip(self, op):
        assert decode_op(encode_op(op)) == op

    @given(op=_any_op)
    def test_json_line_roundtrip(self, op):
        assert loads_op(dumps_op(op)) == op

    @given(addr=_addrs, size=_sizes, payload=_unsafe_payloads)
    def test_non_json_safe_store_payload_dropped(self, addr, size, payload):
        decoded = decode_op(encode_op(Store(addr, size, payload)))
        assert decoded.payload is None
        assert (decoded.addr, decoded.size) == (addr, size)

    @given(addr=_addrs, size=_sizes, payload=_json_safe_payloads)
    def test_json_safe_store_payload_preserved(self, addr, size, payload):
        decoded = loads_op(dumps_op(Store(addr, size, payload)))
        assert decoded.payload == payload

    @given(op=_any_op)
    def test_encoding_is_deterministic(self, op):
        assert dumps_op(op) == dumps_op(op)
