"""Registry completeness: every workload module is registered and lintable.

A workload that exists on disk but is missing from the registry silently
escapes the lint gate (and every figure), so this test walks the package
directory and cross-checks it against the registry -- then proves the
whole registered set expands and lints via the same path ``repro lint
--all`` uses.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.workloads as workloads_pkg
from repro.lint import LintConfig, lint_all, stock_workload_names
from repro.workloads.base import Workload
from repro.workloads.registry import FIXTURES, MICROBENCHES, SUITE

#: modules that provide infrastructure, not workload classes.
_NON_WORKLOAD_MODULES = {"base", "registry"}


def _workload_modules():
    for info in pkgutil.iter_modules(workloads_pkg.__path__):
        if info.name.startswith("_"):
            continue
        if info.name in _NON_WORKLOAD_MODULES:
            continue
        yield importlib.import_module(f"repro.workloads.{info.name}")


def _classes_in(module):
    for _, cls in inspect.getmembers(module, inspect.isclass):
        if (
            issubclass(cls, Workload)
            and cls is not Workload
            and cls.__module__ == module.__name__
            and not cls.__name__.startswith("_")
            and not inspect.isabstract(cls)
            # helper bases keep the placeholder name
            and cls.name != Workload.name
        ):
            yield cls


REGISTERED = set(SUITE + MICROBENCHES + FIXTURES)


class TestRegistryCompleteness:
    def test_every_module_contributes_registered_classes(self):
        missing = []
        for module in _workload_modules():
            classes = list(_classes_in(module))
            assert classes, (
                f"{module.__name__} defines no concrete Workload; either "
                f"add one or list the module in _NON_WORKLOAD_MODULES"
            )
            for cls in classes:
                if cls not in REGISTERED:
                    missing.append(f"{module.__name__}.{cls.__name__}")
        assert not missing, (
            f"workload classes not registered (add to SUITE, "
            f"MICROBENCHES, or FIXTURES): {missing}"
        )

    def test_names_are_unique(self):
        names = [cls.name for cls in REGISTERED]
        assert len(names) == len(set(names))

    def test_every_stock_workload_lints_via_all(self):
        config = LintConfig(threads=2, ops_per_thread=5)
        reports, sources = lint_all(config=config)
        assert [r.workload for r in reports] == stock_workload_names()
        for report in reports:
            assert report.ops_scanned > 0, report.workload
        assert set(sources) == set(stock_workload_names())

    @pytest.mark.parametrize(
        "cls", sorted(FIXTURES, key=lambda c: c.name),
        ids=lambda c: c.name,
    )
    def test_fixtures_lintable_but_not_gated(self, cls):
        from repro.lint import lint_workload

        assert cls.name not in stock_workload_names()
        report = lint_workload(
            cls.name, LintConfig(threads=2, ops_per_thread=5)
        )
        assert report.ops_scanned > 0
