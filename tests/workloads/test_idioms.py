"""Unit tests for the persistence idioms (pmdk_tx, AtlasSection) and the
microbenchmarks."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.workloads import run_workload
from repro.workloads.base import AtlasSection, ordered_store, pmdk_tx
from repro.workloads.microbench import (
    BandwidthMicrobench,
    CoalescingMicrobench,
    FenceLatencyMicrobench,
)


class TestOrderedStore:
    def test_emits_store_then_fence(self):
        ops = list(ordered_store(0x100, 64))
        assert isinstance(ops[0], Store)
        assert isinstance(ops[1], OFence)


class TestPmdkTx:
    def test_structure(self):
        ops = list(pmdk_tx(0x1000, 0, [(0x2000, 32), (0x3000, 8)]))
        kinds = [type(op).__name__ for op in ops]
        # log appends, fence, data writes, commit dfence, log drop, fence
        assert kinds == [
            "Store", "Store", "OFence", "Store", "Store", "DFence",
            "Store", "OFence",
        ]

    def test_log_entries_precede_data(self):
        ops = list(pmdk_tx(0x1000, 0, [(0x2000, 32)]))
        fence_at = next(i for i, op in enumerate(ops) if isinstance(op, OFence))
        data_at = next(
            i for i, op in enumerate(ops)
            if isinstance(op, Store) and op.addr == 0x2000
        )
        assert fence_at < data_at

    def test_work_cycles_between_log_and_data(self):
        ops = list(pmdk_tx(0x1000, 0, [(0x2000, 32)], work_cycles=100))
        assert any(isinstance(op, Compute) and op.cycles == 100 for op in ops)

    def test_log_slots_isolated(self):
        ops_a = list(pmdk_tx(0x1000, 0, [(0x2000, 8)]))
        ops_b = list(pmdk_tx(0x1000, 512, [(0x2000, 8)]))
        log_a = {op.addr for op in ops_a if isinstance(op, Store)}
        log_b = {op.addr for op in ops_b if isinstance(op, Store)}
        assert log_a & log_b == {0x2000}  # only the data address is shared


class TestAtlasSection:
    def test_log_append_before_each_store(self):
        section = AtlasSection(lock=0x10, log_base=0x1000)
        ops = list(section.begin()) + list(section.store(0x2000, 8))
        ops += list(section.end())
        kinds = [type(op).__name__ for op in ops]
        assert kinds == ["Acquire", "Store", "OFence", "Store", "Release"]
        stores = [op for op in ops if isinstance(op, Store)]
        assert stores[0].addr >= 0x1000  # log first
        assert stores[1].addr == 0x2000

    def test_log_cursor_rotates(self):
        section = AtlasSection(lock=0x10, log_base=0x1000)
        first = list(section.store(0x2000, 8))[0].addr
        second = list(section.store(0x2000, 8))[0].addr
        assert first != second


class TestMicrobenches:
    def test_bandwidth_writes_alternate_mcs(self):
        heap = PMAllocator()
        workload = BandwidthMicrobench(ops_per_thread=8)
        programs = workload.programs(heap, 1)
        stores = [op for op in programs[0] if isinstance(op, Store)]
        mcs = [(op.addr // 256) % 2 for op in stores]
        assert mcs == [0, 1] * 4  # strict alternation
        assert all(op.size == 256 for op in stores)

    def test_bandwidth_bytes_written(self):
        workload = BandwidthMicrobench(ops_per_thread=10)
        assert workload.bytes_written(2) == 2 * 10 * 256

    def test_coalescing_bench_reduces_pm_writes(self):
        config = MachineConfig(num_cores=1)
        result = run_workload(
            CoalescingMicrobench(ops_per_thread=64), config,
            RunConfig(hardware=HardwareModel.HOPS),
        )
        stores_issued = 64
        pm_writes = result.result.stats.total("pm_writes")
        assert pm_writes < stores_issued * 0.75  # coalescing visible

    def test_fence_latency_bench_runs_all_models(self):
        config = MachineConfig(num_cores=1)
        for hw in (HardwareModel.BASELINE, HardwareModel.ASAP, HardwareModel.EADR):
            result = run_workload(
                FenceLatencyMicrobench(ops_per_thread=16), config,
                RunConfig(hardware=hw),
            )
            assert result.runtime_cycles > 0
