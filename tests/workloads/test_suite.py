"""Tests over the full Table III workload suite.

Each workload is run small but end-to-end under several models; we check
structural properties (valid programs, deterministic traces, plausible
persist behaviour) rather than performance numbers, which belong to the
benchmarks.
"""

import pytest

from repro.core.api import PMAllocator
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.workloads import SUITE, get_workload, run_workload, workload_names
from repro.workloads.base import Workload
from repro.workloads.registry import MICROBENCHES

SMALL = 12  # ops per thread for functional checks


class TestRegistry:
    def test_suite_matches_table_iii(self):
        # Table III's classes plus WHISPER's ctree -- fifteen workloads,
        # matching the artifact appendix's count.
        assert workload_names() == [
            "nstore", "echo", "ctree", "vacation", "memcached",
            "heap", "queue", "skiplist",
            "cceh", "fast_fair", "dash_lh", "dash_eh",
            "p_art", "p_clht", "p_masstree",
        ]

    def test_get_workload_by_name(self):
        workload = get_workload("cceh", ops_per_thread=5)
        assert workload.name == "cceh"
        assert workload.ops_per_thread == 5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_microbenches_registered(self):
        assert get_workload("bandwidth").name == "bandwidth"
        assert get_workload("coalescing").name == "coalescing"

    def test_categories(self):
        categories = {cls.category for cls in SUITE}
        assert categories == {"whisper", "atlas", "concurrent-ds"}


@pytest.mark.parametrize("cls", SUITE, ids=lambda c: c.name)
class TestEveryWorkload:
    def test_runs_under_asap(self, cls, config4):
        result = run_workload(
            cls(ops_per_thread=SMALL), config4,
            RunConfig(hardware=HardwareModel.ASAP),
        )
        assert result.runtime_cycles > 0
        assert result.result.stats.total("entriesInserted") > 0

    def test_runs_under_baseline(self, cls, config4):
        result = run_workload(
            cls(ops_per_thread=SMALL), config4,
            RunConfig(hardware=HardwareModel.BASELINE),
        )
        assert result.runtime_cycles > 0

    def test_runs_under_hops_ep(self, cls, config4):
        result = run_workload(
            cls(ops_per_thread=SMALL), config4,
            RunConfig(hardware=HardwareModel.HOPS, persistency=PersistencyModel.EPOCH),
        )
        assert result.runtime_cycles > 0

    def test_single_thread_runs(self, cls):
        config = MachineConfig(num_cores=1)
        result = run_workload(
            cls(ops_per_thread=SMALL), config,
            RunConfig(hardware=HardwareModel.ASAP),
        )
        assert result.runtime_cycles > 0

    def test_deterministic_given_seed(self, cls, config4):
        runs = [
            run_workload(
                cls(ops_per_thread=SMALL, seed=3), config4,
                RunConfig(hardware=HardwareModel.ASAP),
            ).runtime_cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_seed_changes_trace(self, cls, config4):
        """Different seeds should usually produce different traces; at
        minimum the run must still complete."""
        result = run_workload(
            cls(ops_per_thread=SMALL, seed=99), config4,
            RunConfig(hardware=HardwareModel.ASAP),
        )
        assert result.runtime_cycles > 0

    def test_writes_end_durable(self, cls, config4):
        """After a clean run the machine reports a drained persist path;
        workloads end with a dfence, so nothing should be in flight."""
        from repro.core.machine import Machine

        heap = PMAllocator()
        workload = cls(ops_per_thread=SMALL)
        machine = Machine(config4, RunConfig(hardware=HardwareModel.ASAP))
        machine.run(workload.programs(heap, config4.num_cores))
        assert all(path.is_drained() for path in machine.paths)


class TestWorkloadCharacter:
    """Spot checks that workloads exhibit their paper-documented traits."""

    def _deps(self, name, persistency=PersistencyModel.RELEASE, ops=40):
        config = MachineConfig(num_cores=4)
        result = run_workload(
            get_workload(name, ops_per_thread=ops), config,
            RunConfig(hardware=HardwareModel.ASAP, persistency=persistency),
        )
        return result.result.stats.total("interTEpochConflict")

    def test_concurrent_structures_have_many_deps(self):
        """Figure 2: CCEH/Dash/RECIPE show frequent cross-thread deps."""
        assert self._deps("dash_eh") > 10
        assert self._deps("p_clht") > 10

    def test_nstore_has_no_deps(self):
        """Nstore partitions are thread-private."""
        assert self._deps("nstore") == 0

    def test_vacation_deps_are_rare(self):
        """Coarse lock + volatile bookkeeping before release: by the time
        the next thread acquires, the previous epoch has committed."""
        assert self._deps("vacation") <= 2

    def test_base_class_contract(self):
        with pytest.raises(NotImplementedError):
            Workload().programs(PMAllocator(), 1)
