"""Property-based tests on the core data structures."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.bloom import CountingBloomFilter
from repro.core.recovery_table import RecoveryTable
from repro.mem.wpq import WritePendingQueue
from repro.sim.engine import Engine
from repro.sim.stats import Histogram, StatsRegistry, TimeWeightedStat

lines = st.integers(min_value=0, max_value=63).map(lambda i: i * 64)


class TestBloomProperties:
    @given(st.lists(lines, max_size=40))
    @settings(max_examples=50)
    def test_no_false_negatives(self, added):
        bloom = CountingBloomFilter(128, 2)
        for line in added:
            bloom.add(line)
        assert all(line in bloom for line in added)

    @given(st.lists(lines, min_size=1, max_size=40), st.data())
    @settings(max_examples=50)
    def test_discard_preserves_other_members(self, added, data):
        bloom = CountingBloomFilter(64, 2)
        for line in added:
            bloom.add(line)
        victim = data.draw(st.sampled_from(added))
        bloom.discard(victim)
        remaining = list(added)
        remaining.remove(victim)
        assert all(line in bloom for line in remaining)

    @given(st.lists(lines, max_size=40))
    @settings(max_examples=30)
    def test_add_discard_all_returns_to_empty_population(self, added):
        bloom = CountingBloomFilter(128, 2)
        for line in added:
            bloom.add(line)
        for line in added:
            bloom.discard(line)
        assert len(bloom) == 0


class TestWPQProperties:
    @given(st.lists(st.tuples(lines, st.integers(1, 1000)), max_size=60))
    @settings(max_examples=50)
    def test_newest_value_per_line_wins(self, writes):
        engine = Engine()
        stats = StatsRegistry()
        wpq = WritePendingQueue(engine, capacity=64, stats=stats, scope="t")
        expected = {}
        for line, write_id in writes:
            assert wpq.push(line, write_id)
            expected[line] = write_id
        assert wpq.snapshot() == expected

    @given(st.lists(st.tuples(lines, st.integers(1, 1000)), max_size=60))
    @settings(max_examples=50)
    def test_drain_applies_in_fifo_yields_newest(self, writes):
        engine = Engine()
        stats = StatsRegistry()
        wpq = WritePendingQueue(engine, capacity=64, stats=stats, scope="t")
        expected = {}
        for line, write_id in writes:
            wpq.push(line, write_id)
            expected[line] = write_id
        media = {}
        for entry in wpq.drain_all():
            media[entry.line] = entry.write_id
        assert media == expected

    @given(st.lists(st.tuples(lines, st.integers(1, 1000)), max_size=200))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, writes):
        engine = Engine()
        stats = StatsRegistry()
        wpq = WritePendingQueue(engine, capacity=8, stats=stats, scope="t")
        for line, write_id in writes:
            if not wpq.push(line, write_id):
                wpq.pop_head()
                assert wpq.push(line, write_id)
            assert len(wpq) <= 8


class TestRecoveryTableProperties:
    @given(
        st.lists(
            st.tuples(lines, st.integers(0, 3), st.integers(1, 5)),
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_occupancy_bounded_and_commit_cleans(self, events):
        """Apply a random stream of early flushes and commits; the table
        never exceeds capacity, and committing every epoch empties it."""
        engine = Engine()
        stats = StatsRegistry()
        rt = RecoveryTable(engine, capacity=8, stats=stats, scope="t")
        touched = set()
        for line, core, ts in events:
            if rt.has_undo(line):
                rt.add_delay(line, 1, core, ts)
            else:
                rt.create_undo(line, 0, core, ts)
            touched.add((core, ts))
            assert len(rt) <= 8
        for core, ts in sorted(touched):
            released = rt.process_commit(core, ts)
            for _line, _wid in released:
                pass  # controller would persist these
        assert len(rt) == 0

    @given(st.lists(st.tuples(lines, st.integers(1, 100)), max_size=30))
    @settings(max_examples=50)
    def test_undo_values_trace_safe_updates(self, safe_values):
        """update_undo always leaves the record at the latest safe value."""
        engine = Engine()
        stats = StatsRegistry()
        rt = RecoveryTable(engine, capacity=64, stats=stats, scope="t")
        latest = {}
        for line, value in safe_values:
            if not rt.has_undo(line):
                rt.create_undo(line, 0, core=0, epoch_ts=1)
                latest.setdefault(line, 0)
            rt.update_undo(line, value)
            latest[line] = value
        for line, value in latest.items():
            assert rt.undo_for(line).safe_value == value


class TestHistogramProperties:
    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_mean_matches_reference(self, values):
        hist = Histogram("h", 31)
        for value in values:
            hist.record(value)
        assert hist.mean() == pytest.approx(sum(values) / len(values))

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_percentiles_monotone(self, values):
        hist = Histogram("h", 31)
        for value in values:
            hist.record(value)
        ps = [hist.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert ps == sorted(ps)
        assert ps[-1] == max(values)

    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, 15)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_time_weighted_mean_bounded(self, intervals):
        stat = TimeWeightedStat("occ", 15)
        now = 0
        for duration, level in intervals:
            stat.update(now, level)
            now += duration
        stat.finish(now)
        levels = [level for _d, level in intervals]
        assert min(levels) <= stat.mean() <= max(levels)
