"""Hypothesis properties behind the crash-sweep engine.

Three invariants the campaign silently relies on:

1. **Crash determinism** -- ``crash_machine`` on a fixed stopped machine
   is a pure function, and two fresh same-spec runs crash to identical
   serialized states.  Without this, result caching and failure
   minimization (which re-simulate) would be unsound.
2. **The undo overlay only rewinds** -- the post-crash media image never
   runs *ahead* of the ADR image (WPQ drain + in-flight writes): for
   every line, the surviving write with undo records applied appears at
   the same or an earlier position in that line's persist order than
   without them.  Undo records unwind speculation; they must never
   invent newer state.
3. **Serialization is exact** -- a crash state survives a JSON
   round-trip bit-for-bit (canonical text) and field-for-field.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import PMAllocator
from repro.core.crash import crash_machine, run_and_crash
from repro.core.machine import Machine
from repro.core.models import resolve_model
from repro.crashtest.serialize import dumps_state, loads_state
from repro.sim.config import MachineConfig
from repro.workloads import get_workload

MODELS = ["baseline", "hops_rp", "asap_rp", "eadr", "asap_no_undo"]
WORKLOADS = ["queue", "nstore", "dash_eh"]


def _stopped_machine(workload, model, crash_cycle, seed=7):
    w = get_workload(workload, ops_per_thread=6, seed=seed)
    config = MachineConfig()
    programs = w.programs(PMAllocator(), config.num_cores)
    run_config = resolve_model(model).run_config(seed=seed)
    machine = Machine(config, run_config)
    machine.run_until(programs, crash_cycle)
    return machine


def _spec_state(workload, model, crash_cycle, seed=7):
    w = get_workload(workload, ops_per_thread=6, seed=seed)
    config = MachineConfig()
    programs = w.programs(PMAllocator(), config.num_cores)
    run_config = resolve_model(model).run_config(seed=seed)
    return run_and_crash(config, run_config, programs, crash_cycle)


@settings(max_examples=10, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    model=st.sampled_from(MODELS),
    crash_cycle=st.integers(min_value=1, max_value=3000),
)
def test_crash_machine_is_deterministic(workload, model, crash_cycle):
    machine = _stopped_machine(workload, model, crash_cycle)
    first = crash_machine(machine)
    second = crash_machine(machine)
    assert first.crash_cycle == second.crash_cycle
    assert first.media == second.media
    assert first.log is second.log  # same log object, untouched
    # ...and the full pipeline agrees across fresh runs of the same spec
    fresh = _spec_state(workload, model, crash_cycle)
    assert dumps_state(fresh, {}) == dumps_state(
        _spec_state(workload, model, crash_cycle), {}
    )


@settings(max_examples=10, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    model=st.sampled_from(["asap_rp", "asap_no_undo", "hops_rp", "baseline"]),
    crash_cycle=st.integers(min_value=1, max_value=3000),
)
def test_undo_overlay_never_advances_the_media(workload, model, crash_cycle):
    machine = _stopped_machine(workload, model, crash_cycle)
    order = machine.log.line_order
    for mc in machine.mcs:
        with_undo = mc.crash_drain()
        without_undo = dict(mc.nvm.media)
        without_undo.update(mc.adr_value)
        assert set(with_undo) >= {
            line for line, wid in without_undo.items() if wid
        }
        for line, survivor in with_undo.items():
            baseline_wid = without_undo.get(line, 0)
            if survivor == baseline_wid:
                continue
            line_writes = order.get(line, [])
            # a divergent survivor must be a rewind: same line, strictly
            # earlier in the persist order than the ADR image's write.
            if survivor and baseline_wid:
                assert line_writes.index(survivor) < line_writes.index(
                    baseline_wid
                ), f"undo overlay advanced line {line:#x}"


@settings(max_examples=10, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    model=st.sampled_from(MODELS),
    crash_cycle=st.integers(min_value=1, max_value=5000),
    seed=st.integers(min_value=0, max_value=3),
)
def test_crash_state_json_round_trips_exactly(
    workload, model, crash_cycle, seed
):
    state = _spec_state(workload, model, crash_cycle, seed=seed)
    meta = {"workload": workload, "model": model}
    text = dumps_state(state, meta)
    loaded, loaded_meta = loads_state(text)
    assert loaded_meta == meta
    assert dumps_state(loaded, loaded_meta) == text
    assert loaded.crash_cycle == state.crash_cycle
    assert loaded.media == state.media
    assert loaded.run_config == state.run_config
    assert loaded.log.line_order == state.log.line_order
    assert loaded.log.payloads == state.log.payloads
    assert loaded.log.dep_edges == state.log.dep_edges
    assert loaded.log.strand_starts == state.log.strand_starts
