"""Model-based testing of the epoch table with hypothesis state machines.

Drives random sequences of the epoch table's operations (enqueue writes,
open epochs, strand breaks, ACKs, dependence set/resolve) against a
simple reference model and asserts the lifecycle invariants after every
step:

- commits within a strand happen in order;
- an epoch is never committed while it has outstanding writes or an
  unresolved dependence;
- ``committed_upto`` is a dense prefix and never regresses;
- retired epochs never reappear.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.epoch_table import EpochTable
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


class EpochTableMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.engine = Engine()
        self.et = EpochTable(
            self.engine, capacity=8, stats=StatsRegistry(), scope="t", core=0
        )
        #: reference model: ts -> outstanding write count for live epochs
        self.outstanding = {1: 0}
        self.deps_unresolved = set()
        self.committed = set()
        self.last_committed_upto = 0
        self.dep_source_ts = 0

    # ------------------------------------------------------------------

    @rule()
    def enqueue_write(self):
        ts = self.et.current_ts
        self.et.on_enqueue(ts)
        self.outstanding[ts] = self.outstanding.get(ts, 0) + 1

    @rule(strand=st.booleans())
    def open_epoch(self, strand):
        old = self.et.current_ts
        new = self.et.open_epoch(strand_break=strand)
        assert new == old + 1
        self.outstanding.setdefault(new, 0)
        self._sync_commits()

    @rule(data=st.data())
    def ack_write(self, data):
        pending = [
            ts for ts, count in self.outstanding.items()
            if count > 0 and ts not in self.committed
        ]
        if not pending:
            return
        ts = data.draw(st.sampled_from(pending))
        self.et.on_write_acked(ts)
        self.outstanding[ts] -= 1
        self._sync_commits()

    @precondition(lambda self: self.et.current_ts not in self.deps_unresolved
                  and self.et.entries[self.et.current_ts].dep is None)
    @rule()
    def set_dep(self):
        ts = self.et.current_ts
        self.dep_source_ts += 1
        self.et.set_dep(ts, (1, self.dep_source_ts))
        self.deps_unresolved.add(ts)

    @rule(data=st.data())
    def resolve_dep(self, data):
        if not self.deps_unresolved:
            return
        ts = data.draw(st.sampled_from(sorted(self.deps_unresolved)))
        self.et.resolve_dep(ts)
        self.deps_unresolved.discard(ts)
        self._sync_commits()

    def _sync_commits(self):
        self.engine.run()
        for ts in list(self.outstanding):
            if self.et.is_committed(ts) and ts not in self.committed:
                # a commit is only legal once the epoch closed, drained
                # its writes, and resolved its dependence
                assert self.outstanding[ts] == 0, ts
                assert ts not in self.deps_unresolved, ts
                assert ts != self.et.current_ts
                self.committed.add(ts)

    # ------------------------------------------------------------------

    @invariant()
    def committed_prefix_is_dense_and_monotone(self):
        if not hasattr(self, "et"):
            return
        assert self.et.committed_upto >= self.last_committed_upto
        self.last_committed_upto = self.et.committed_upto
        for ts in range(1, self.et.committed_upto + 1):
            assert ts not in self.et.entries

    @invariant()
    def current_epoch_always_live(self):
        if not hasattr(self, "et"):
            return
        assert self.et.current_ts in self.et.entries

    @invariant()
    def retired_epochs_stay_retired(self):
        if not hasattr(self, "et"):
            return
        for ts in self.committed:
            assert self.et.is_committed(ts)
            assert ts not in self.et.entries

    @invariant()
    def no_entry_negative(self):
        if not hasattr(self, "et"):
            return
        for entry in self.et.entries.values():
            assert entry.unacked >= 0


EpochTableModelTest = EpochTableMachine.TestCase
EpochTableModelTest.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
