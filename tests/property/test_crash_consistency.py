"""Property-based crash-consistency testing (machine-checked Theorem 2).

Hypothesis generates workload shapes and crash instants; every correct
model (baseline, HOPS, ASAP, eADR) must recover to a consistent state at
*any* instant.  The ``ASAP_NO_UNDO`` ablation -- eager flushing without
recovery information -- demonstrates the checker's teeth: the adversarial
scenario below reliably produces ordering violations under it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.crash import run_and_crash
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.verify import check_consistency
from repro.verify.dag import build_dag


def crash_workload(heap, seed, num_threads=2, ops=10):
    """A random mix of ordered writes and lock-mediated sharing."""
    import random

    rng = random.Random(seed)
    lock = heap.alloc_lock()
    shared = heap.alloc(64 * 4)
    programs = []
    for tid in range(num_threads):
        # Eight 256-byte slots: big enough for the largest store below, so
        # threads can never spill into each other's regions (that would be
        # a data race, excluded under release persistency).
        private = heap.alloc(256 * 8, align=256)

        # ``private`` must be bound per thread: sharing it would create
        # unsynchronized conflicting writes -- a data race, which release
        # persistency explicitly excludes (Section IV-E: "ASAP requires
        # race-free code").
        def program(
            tid=tid, private=private, rng=random.Random(seed * 131 + tid)
        ):
            for i in range(ops):
                choice = rng.random()
                if choice < 0.4:
                    yield Store(private + 256 * (i % 8), rng.choice((8, 64, 256)))
                    yield OFence()
                elif choice < 0.7:
                    yield Acquire(lock)
                    yield Load(shared, 8)
                    yield Store(shared + 64 * rng.randrange(4), 8)
                    yield OFence()
                    yield Release(lock)
                else:
                    yield Compute(rng.randrange(10, 200))
            yield DFence()

        programs.append(program())
    return programs


CORRECT_MODELS = [
    HardwareModel.BASELINE,
    HardwareModel.HOPS,
    HardwareModel.ASAP,
    HardwareModel.EADR,
    HardwareModel.VORPAL,
]


@pytest.mark.parametrize("hardware", CORRECT_MODELS, ids=lambda h: h.value)
@pytest.mark.parametrize("persistency", list(PersistencyModel), ids=lambda p: p.value)
class TestTheorem2:
    @given(
        crash_cycle=st.integers(min_value=1, max_value=30_000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_recovery_is_consistent_at_any_instant(
        self, hardware, persistency, crash_cycle, seed
    ):
        heap = PMAllocator()
        state = run_and_crash(
            MachineConfig(num_cores=2),
            RunConfig(hardware=hardware, persistency=persistency),
            crash_workload(heap, seed),
            crash_cycle,
        )
        report = check_consistency(state.log, state.media)
        assert report.consistent, report.summary()


class TestDagInvariant:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_epoch_graph_always_acyclic(self, seed):
        """Lemma 0.1 on randomized runs."""
        heap = PMAllocator()
        state = run_and_crash(
            MachineConfig(num_cores=2),
            RunConfig(
                hardware=HardwareModel.ASAP,
                persistency=PersistencyModel.EPOCH,
            ),
            crash_workload(heap, seed),
            crash_cycle=10**9,
        )
        dag = build_dag(state.log)
        assert dag.is_acyclic()
        assert dag.topological_order()


def adversarial_workload(heap):
    """Asymmetric MC pressure + a cross-thread dependency: the scenario
    speculative persistence must keep safe (and no-undo cannot)."""

    def mc_lines(base, mc, count):
        out, addr = [], base
        while len(out) < count:
            if (addr // 256) % 2 == mc:
                out.append(addr)
            addr += 64
        return out

    chunk = heap.alloc(64 * 1024, align=256)
    burst = mc_lines(chunk, 0, 24)
    a = mc_lines(chunk + 32 * 1024, 0, 1)[0]
    b = mc_lines(chunk + 48 * 1024, 1, 1)[0]

    def t1():
        for addr in burst:
            yield Store(addr, 64)
        yield Store(a, 64)
        yield Compute(2000)
        yield OFence()
        yield DFence()

    def t2():
        yield Compute(60)
        yield Load(a, 8)  # conflicting access -> dependency on t1
        yield Store(b, 64)  # must not outlive the write to `a`
        yield OFence()
        yield DFence()

    return [t1(), t2()]


class TestCheckerHasTeeth:
    """Failure injection: the broken model must be caught."""

    def _violations(self, hardware, crash_cycles):
        bad = 0
        for crash_cycle in crash_cycles:
            heap = PMAllocator()
            state = run_and_crash(
                MachineConfig(num_cores=2),
                RunConfig(
                    hardware=hardware, persistency=PersistencyModel.EPOCH
                ),
                adversarial_workload(heap),
                crash_cycle,
            )
            if not check_consistency(state.log, state.media).consistent:
                bad += 1
        return bad

    CRASH_POINTS = list(range(50, 4000, 37))

    def test_no_undo_model_violates_ordering(self):
        assert self._violations(HardwareModel.ASAP_NO_UNDO, self.CRASH_POINTS) > 0

    def test_real_asap_survives_the_same_scenario(self):
        assert self._violations(HardwareModel.ASAP, self.CRASH_POINTS) == 0

    def test_hops_survives_the_same_scenario(self):
        assert self._violations(HardwareModel.HOPS, self.CRASH_POINTS) == 0
