"""Property-based checks of the axiomatic engine.

The load-bearing one is **durable-prefix closure**: for any corpus-shaped
litmus test and any candidate execution, every prefix of the execution's
global persist-order witness must canonicalize to an allowed crash state.
If this ever fails, the axioms forbid a state the machine can trivially
reach by draining in witness order and crashing -- i.e. the checker
would raise false alarms.
"""

from hypothesis import given, settings, strategies as st

from repro.axiom import (
    INIT,
    allowed_states,
    annotate_epochs,
    enumerate_executions,
    execution_allows,
    format_state,
    is_state_allowed,
)
from repro.litmus.corpus import NAMED_BUILDERS, random_test

_NAMES = sorted(NAMED_BUILDERS)


def _build(name_index, seed):
    """Half the space: named shapes; other half: seeded random family."""
    if name_index < len(_NAMES):
        return NAMED_BUILDERS[_NAMES[name_index]]()
    return random_test(seed, name_index - len(_NAMES))


def _prefix_state(test, witness, length):
    """Crash state if exactly the first ``length`` witness writes drained."""
    line_symbols = test.line_symbols()
    values = {symbol: INIT for symbol in line_symbols.values()}
    for write in witness[:length]:
        values[line_symbols[write.line]] = write.label
    return tuple(sorted(values.items()))


class TestDurablePrefixClosure:
    @given(
        name_index=st.integers(min_value=0, max_value=len(_NAMES) + 5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_witness_prefix_is_allowed(self, name_index, seed):
        test = _build(name_index, seed)
        epochs = annotate_epochs(test)
        for execution in enumerate_executions(test).executions:
            for length in range(len(execution.witness) + 1):
                state = _prefix_state(test, execution.witness, length)
                assert execution_allows(test, epochs, execution, state), (
                    f"{test.name}: witness prefix of length {length} "
                    f"({format_state(state)}) must be allowed"
                )

    @given(
        name_index=st.integers(min_value=0, max_value=len(_NAMES) + 5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_initial_and_final_states_always_allowed(self, name_index, seed):
        test = _build(name_index, seed)
        aset = allowed_states(test)
        assert test.initial_state() in aset.states
        # membership API agrees with enumeration on the initial state
        assert is_state_allowed(test, test.initial_state())
