"""Differential and online-invariant testing across hardware models.

Two families of properties:

1. **Convergence** -- every model, run to completion on the same trace,
   must leave the persistence domain holding the newest write of every
   line (durability is eventually total, whatever the ordering policy).

2. **Structural invariants hold throughout** -- persist buffers, epoch
   tables, recovery tables and WPQs never leave their legal envelopes at
   any sampled instant of any run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import PMAllocator
from repro.core.crash import crash_machine
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.trace import SyntheticTraceConfig, synthetic_trace
from repro.verify.invariants import InvariantMonitor, validate_run
from repro.workloads import get_workload

ALL_MODELS = list(HardwareModel)


class TestConvergence:
    @pytest.mark.parametrize("hardware", ALL_MODELS, ids=lambda h: h.value)
    def test_final_memory_is_newest_writes(self, hardware):
        """After completion + drain, the persistence domain holds the
        newest value of every written line -- on every model, including
        the unsound one (its flaw is ordering, not convergence)."""
        trace = synthetic_trace(
            SyntheticTraceConfig(num_threads=2, ops_per_thread=30, sharing=0.3)
        )
        machine = Machine(
            MachineConfig(num_cores=2), RunConfig(hardware=hardware)
        )
        machine.run(trace.programs())
        state = crash_machine(machine)  # a crash after the end = final state
        expected = machine.log.newest_write_per_line()
        for line, write_id in expected.items():
            assert state.media.get(line) == write_id, hex(line)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        epoch_size=st.integers(min_value=1, max_value=6),
        sharing=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_asap_and_hops_converge_identically(self, seed, epoch_size, sharing):
        """Trace-driven differential: both buffered designs end with the
        same durable image for the same trace.

        Global write IDs are assigned in execution order, so two cores'
        stores can be numbered differently under different timing models;
        compare each line's surviving write by its model-invariant
        identity -- (core, program-order ordinal within that core) --
        not by raw write ID.
        """
        config = SyntheticTraceConfig(
            num_threads=2, ops_per_thread=24, epoch_size=epoch_size,
            sharing=sharing, seed=seed,
        )
        images = {}
        for hardware in (HardwareModel.ASAP, HardwareModel.HOPS):
            trace = synthetic_trace(config, PMAllocator())
            machine = Machine(
                MachineConfig(num_cores=2), RunConfig(hardware=hardware)
            )
            machine.run(trace.programs())
            media = crash_machine(machine).media
            ordinal = {}
            per_core = {}
            for write_id in sorted(machine.log.writes):
                core = machine.log.writes[write_id].core
                per_core[core] = per_core.get(core, -1) + 1
                ordinal[write_id] = (core, per_core[core])
            images[hardware] = {
                line: ordinal[write_id] for line, write_id in media.items()
            }
        assert images[HardwareModel.ASAP] == images[HardwareModel.HOPS]


class TestOnlineInvariants:
    @pytest.mark.parametrize(
        "workload", ["cceh", "queue", "dash_eh", "nstore"]
    )
    @pytest.mark.parametrize(
        "hardware",
        [HardwareModel.ASAP, HardwareModel.HOPS, HardwareModel.BASELINE],
        ids=lambda h: h.value,
    )
    def test_invariants_hold_throughout_suite_runs(self, workload, hardware):
        machine = Machine(
            MachineConfig(num_cores=4),
            RunConfig(hardware=hardware, persistency=PersistencyModel.EPOCH),
        )
        heap = PMAllocator()
        programs = get_workload(workload, ops_per_thread=25).programs(heap, 4)
        result = validate_run(machine, programs)
        assert result.runtime_cycles > 0

    def test_invariants_hold_on_vorpal(self):
        machine = Machine(
            MachineConfig(num_cores=4),
            RunConfig(hardware=HardwareModel.VORPAL),
        )
        heap = PMAllocator()
        programs = get_workload("queue", ops_per_thread=25).programs(heap, 4)
        result = validate_run(machine, programs)
        assert result.runtime_cycles > 0
        assert machine.vorpal.pending_writes() == 0

    def test_invariants_hold_under_rt_pressure(self):
        """NACK/fallback paths stay within the envelopes too."""
        machine = Machine(
            MachineConfig(num_cores=4, rt_entries=2),
            RunConfig(hardware=HardwareModel.ASAP),
        )
        heap = PMAllocator()
        programs = get_workload("dash_lh", ops_per_thread=25).programs(heap, 4)
        result = validate_run(machine, programs, period_cycles=200)
        assert result.stats.total("flushes_nacked") > 0

    def test_monitor_counts_checks(self):
        machine = Machine(
            MachineConfig(num_cores=2), RunConfig(hardware=HardwareModel.ASAP)
        )
        monitor = InvariantMonitor(machine, period_cycles=100)
        monitor.arm()
        heap = PMAllocator()
        programs = get_workload("p_clht", ops_per_thread=15).programs(heap, 2)
        machine.run(programs)
        monitor.check()
        assert monitor.checks_run > 5

    def test_monitor_detects_seeded_corruption(self):
        """Sanity: the monitor actually fails on a broken structure."""
        from repro.verify.invariants import InvariantViolation

        machine = Machine(
            MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
        )
        monitor = InvariantMonitor(machine)
        # corrupt: fabricate a negative unacked count
        machine.paths[0].et.entries[1].unacked = -1
        with pytest.raises(InvariantViolation, match="negative unacked"):
            monitor.check()
