"""Campaign driver: smoke sweep, spec identity, caching, events."""

import json

import pytest

from repro.crashtest import (
    CrashPointSpec,
    execute_crash_point,
    run_campaign,
)
from repro.exp import ResultCache
from repro.obs.events import EventType


def _smoke(**kwargs):
    defaults = dict(
        workloads=["queue"], models=["asap"], points=8,
        ops_per_thread=6, jobs=1,
    )
    defaults.update(kwargs)
    return run_campaign(**defaults)


# -- spec identity ----------------------------------------------------------

def test_spec_key_is_stable_and_content_addressed():
    a = CrashPointSpec("queue", "asap_rp", crash_cycle=100, seed=7)
    b = CrashPointSpec("queue", "asap_rp", crash_cycle=100, seed=7)
    assert a.key() == b.key()
    assert a.key() != CrashPointSpec("queue", "asap_rp", 101, seed=7).key()
    assert a.key() != CrashPointSpec("queue", "asap_rp", 100, seed=8).key()
    assert a.key() != CrashPointSpec("queue", "eadr", 100, seed=7).key()


def test_spec_describe_is_json_and_versioned():
    spec = CrashPointSpec("queue", "asap", crash_cycle=42)
    doc = json.loads(json.dumps(spec.describe()))
    assert doc["schema"] == 1
    assert doc["kind"] == "crashtest-point"
    assert doc["crash_cycle"] == 42
    assert "asap" in spec.label() and "42" in spec.label()


def test_unknown_workload_or_model_raises_early():
    with pytest.raises(KeyError, match="unknown workload"):
        CrashPointSpec("nope", "asap_rp", 10)
    with pytest.raises(KeyError, match="unknown model"):
        CrashPointSpec("queue", "nope", 10)


def test_execute_crash_point_is_deterministic():
    spec = CrashPointSpec("queue", "asap_rp", crash_cycle=300,
                          ops_per_thread=6)
    assert execute_crash_point(spec) == execute_crash_point(spec)


# -- smoke campaign ---------------------------------------------------------

def test_smoke_campaign_is_clean_and_deterministic():
    first = _smoke()
    second = _smoke()
    assert first.ok
    assert first.total_points == 8
    assert first.to_json() == second.to_json()
    # bookkeeping is excluded from the canonical report
    assert "cache_hits" not in first.to_json()


def test_campaign_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path))
    first = _smoke(cache=cache)
    assert first.cache_misses == first.total_points
    second = _smoke(cache=cache)
    assert second.cache_hits == second.total_points
    assert second.cache_misses == 0
    assert first.to_json() == second.to_json()


def test_campaign_emits_one_event_per_point():
    class Collector:
        def __init__(self):
            self.events = []

        def handle(self, event):
            self.events.append(event)

        def close(self):
            pass

    sink = Collector()
    report = _smoke(sinks=[sink])
    assert len(sink.events) == report.total_points
    for event in sink.events:
        assert event.type is EventType.CRASH_POINT
        assert event.comp == "crashtest"
        assert event.kind == "queue/asap:ok"
        assert event.value is None  # ok points carry no violation count


def test_report_shape():
    report = _smoke()
    doc = report.to_dict()
    assert doc["kind"] == "crashtest-campaign"
    assert doc["ok"] is True
    (cell,) = doc["cells"]
    assert cell["workload"] == "queue"
    assert cell["model"] == "asap"
    assert cell["failure"] is None
    assert len(cell["points"]) == 8
    for point in cell["points"]:
        assert point["ok"] is True
        assert point["generic_violations"] == []
        assert point["oracle_violations"] == []
