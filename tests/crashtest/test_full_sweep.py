"""The full crash-sweep campaign: every stock workload, every RP design.

This is the acceptance sweep -- 50 crash points per (workload, model)
cell over the whole Table III suite and the four release-persistency
acceptance designs -- minutes of fault injection, so it runs behind
``-m crash`` in its own non-blocking CI job.  The PR-gating smoke
version (two workloads, a handful of points) lives in
``test_campaign.py`` and ``tests/cli/``.
"""

import os
import signal

import pytest

from repro.core.models import RP_MODELS
from repro.crashtest import run_campaign
from repro.workloads.registry import SUITE

pytestmark = pytest.mark.crash

#: hard cap; a wedged worker pool must fail, not hang CI.
HARD_TIMEOUT_S = 3000

POINTS = 50
OPS_PER_THREAD = 24  # the CLI default; keeps a cell's horizon tractable


@pytest.fixture(autouse=True)
def _hard_timeout():
    """SIGALRM-based hard timeout (no pytest-timeout in the image)."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: no guard available
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {HARD_TIMEOUT_S}s hard timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _jobs() -> int:
    try:
        return max(2, len(os.sched_getaffinity(0)))
    except AttributeError:
        return max(2, os.cpu_count() or 2)


def test_stock_suite_survives_every_crash_point():
    names = [cls.name for cls in SUITE]
    report = run_campaign(
        names, models=list(RP_MODELS), points=POINTS,
        ops_per_thread=OPS_PER_THREAD, jobs=_jobs(),
    )
    failing = {
        (cell.workload, cell.model): [r.crash_cycle for r in cell.failures]
        for cell in report.cells if not cell.ok
    }
    assert report.ok, f"crash-recovery violations: {failing}"
    assert len(report.cells) == len(names) * len(RP_MODELS)
    for cell in report.cells:
        assert len(cell.results) >= POINTS, (
            f"{cell.workload}/{cell.model}: only {len(cell.results)} "
            f"crash points (run too short for {POINTS}?)"
        )


def test_sweep_reports_are_byte_identical_across_runs():
    kwargs = dict(
        workloads=["cceh", "p_art"], models=list(RP_MODELS),
        points=POINTS, ops_per_thread=OPS_PER_THREAD, jobs=_jobs(),
    )
    assert run_campaign(**kwargs).to_json() == run_campaign(**kwargs).to_json()
