"""The ``repro crashtest`` CLI: smoke campaign, report, events, replay.

Doubles as the PR-gating smoke sweep: a few crash points on two
workloads must come back clean (the full 50-point suite sweep is the
``-m crash`` job in ``test_full_sweep.py``).
"""

import json

from repro.cli import main


def _run(capsys, *argv):
    code = main(["crashtest", *argv])
    return code, capsys.readouterr().out


def test_smoke_campaign_two_workloads(capsys, tmp_path):
    out_path = tmp_path / "report.json"
    events_path = tmp_path / "events.jsonl"
    code, out = _run(
        capsys, "queue", "--models", "asap", "eadr",
        "--points", "6", "--ops", "8", "--jobs", "2",
        "--out", str(out_path), "--events", str(events_path),
    )
    assert code == 0
    assert "PASS" in out

    report = json.loads(out_path.read_text())
    assert report["kind"] == "crashtest-campaign"
    assert report["ok"] is True
    assert report["total_points"] == 12
    assert {c["model"] for c in report["cells"]} == {"asap", "eadr"}

    events = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    assert len(events) == 12
    assert all(e["ev"] == "crash_point" for e in events)
    assert all(e["kind"].endswith(":ok") for e in events)


def test_second_smoke_workload_is_clean(capsys):
    code, out = _run(
        capsys, "nstore", "--points", "6", "--ops", "8", "--jobs", "2",
        "--models", "baseline", "asap",
    )
    assert code == 0
    assert "PASS" in out


def test_cache_dir_round_trip(capsys, tmp_path):
    argv = (
        "queue", "--models", "asap", "--points", "5", "--ops", "8",
        "--cache-dir", str(tmp_path / "cache"),
    )
    code1, out1 = _run(capsys, *argv)
    code2, out2 = _run(capsys, *argv)
    assert code1 == code2 == 0
    assert out1 == out2


def test_failing_campaign_exits_nonzero_and_replays(capsys, tmp_path):
    save_dir = tmp_path / "failures"
    code, out = _run(
        capsys, "xpub", "--models", "asap_no_undo",
        "--points", "40", "--jobs", "2", "--save-failures", str(save_dir),
    )
    assert code == 1
    assert "FAIL" in out
    assert "minimized failing state" in out
    (saved,) = list(save_dir.iterdir())

    code, out = _run(capsys, "--replay", str(saved))
    assert code == 0
    assert "reproduced" in out and "NOT reproduced" not in out


def test_missing_workload_argument_errors(capsys):
    assert main(["crashtest"]) == 2
