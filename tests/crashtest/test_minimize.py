"""Minimization unit tests on synthetic crash states.

The integration path (a real workload producing a real violation that
minimizes to a single-line media delta) lives in ``test_negative.py``;
here the bisection and shrinking algorithms are pinned in isolation.
"""

import pytest

from repro.core.crash import CrashState
from repro.core.epoch import EpochLog
from repro.core.models import resolve_model
from repro.crashtest.minimize import (
    bisect_crash_cycle,
    minimize_failure,
    shrink_media,
)

RC = resolve_model("asap_rp").run_config(seed=7)

#: the judge fires iff line 0x40 survived with write 5.
BAD = {0x40: 5}


def _state(cycle, media):
    return CrashState(
        crash_cycle=cycle, media=dict(media), log=EpochLog(), run_config=RC
    )


def _judge(state):
    return ["bad line"] if state.media.get(0x40) == 5 else []


def _simulate(threshold):
    """Failure appears exactly at ``threshold`` and persists after it."""

    def simulate(cycle):
        media = dict(BAD) if cycle >= threshold else {}
        media[0x80] = 2  # noise that shrinking must remove
        media[0xC0] = 7
        return _state(cycle, media)

    return simulate


def test_bisect_finds_the_boundary_cycle():
    calls = []

    def counting(cycle):
        calls.append(cycle)
        return _simulate(37)(cycle)

    cycle, state, violations, simulations = bisect_crash_cycle(
        counting, _judge, failing_cycle=1000, passing_cycle=0
    )
    assert cycle == 37
    assert violations == ["bad line"]
    assert simulations == len(calls)
    assert simulations <= 12  # ~log2(1000) + the initial reproduction


def test_bisect_respects_the_passing_lower_bound():
    cycle, _, _, _ = bisect_crash_cycle(
        _simulate(500), _judge, failing_cycle=512, passing_cycle=490
    )
    assert cycle == 500


def test_bisect_raises_when_failure_does_not_reproduce():
    with pytest.raises(ValueError, match="does not fail"):
        bisect_crash_cycle(_simulate(10**9), _judge, failing_cycle=100)


def test_shrink_media_is_one_minimal():
    state = _state(100, {0x40: 5, 0x80: 2, 0xC0: 7, 0x100: 9})
    shrunk = shrink_media(state, _judge)
    assert shrunk.media == BAD
    assert _judge(shrunk)
    # the original state is untouched
    assert len(state.media) == 4


def test_shrink_media_keeps_conjunctions():
    def judge(state):
        ok = state.media.get(0x40) == 5 and state.media.get(0x80) == 2
        return ["pair"] if ok else []

    state = _state(100, {0x40: 5, 0x80: 2, 0xC0: 7})
    shrunk = shrink_media(state, judge)
    assert shrunk.media == {0x40: 5, 0x80: 2}


def test_minimize_failure_pipeline():
    minimized = minimize_failure(
        _simulate(37), _judge, failing_cycle=900, passing_cycle=0
    )
    assert minimized.state.crash_cycle == 37
    assert minimized.state.media == BAD
    assert minimized.original_cycle == 900
    assert minimized.original_media_lines == 3
    assert minimized.violations == ["bad line"]
    assert minimized.simulations >= 2
