"""Golden regression: recovery verdicts pinned on serialized crash states.

Each file in ``golden/`` (regenerate with
``scripts/gen_crashtest_golden.py``) carries a crash state, the
transaction-layer metadata needed to run recovery offline, and the
verdict at generation time.  These tests re-run ``tx.recovery.recover``
and ``check_atomicity`` on the loaded state -- no simulation -- and
demand the identical verdict: committed sequences, recovered values,
undo count, atomicity, and problem text.

One passing case per acceptance design (baseline, HOPS, ASAP, eADR) and
one failing case (ORDERED commits on the no-undo ablation) keep both
sides of the adjudicator honest.
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro.crashtest.serialize import state_from_dict
from repro.tx import check_atomicity, recover
from repro.tx.undolog import PVar, TxRecord

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_FILES = sorted(
    f for f in os.listdir(GOLDEN_DIR) if f.endswith(".json")
)

PASSING = [f"bank-{m}.json" for m in ("baseline", "hops_rp", "asap_rp", "eadr")]
FAILING = ["adversarial-asap_no_undo.json"]


def _load(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        doc = json.load(handle)
    assert doc["kind"] == "repro-crashtest-golden"
    assert doc["schema"] == 1
    state = state_from_dict(doc["state"])
    managers = [
        SimpleNamespace(
            thread=m["thread"],
            commit_cell=m["commit_cell"],
            log_base=m["log_base"],
            log_lines=m["log_lines"],
            records=[
                TxRecord(
                    tx_id=r["tx_id"], thread=r["thread"],
                    tx_seq=r["tx_seq"],
                    writes=[tuple(w) for w in r["writes"]],
                    serial=r["serial"],
                )
                for r in m["records"]
            ],
        )
        for m in doc["managers"]
    ]
    pvars = [PVar(v["name"], v["addr"]) for v in doc["pvars"]]
    return doc, state, managers, pvars


def test_golden_set_is_complete():
    assert set(PASSING + FAILING) <= set(GOLDEN_FILES)


@pytest.mark.parametrize("name", GOLDEN_FILES)
def test_golden_verdict_is_reproduced(name):
    doc, state, managers, pvars = _load(name)
    recovery = recover(state, managers, pvars)
    report = check_atomicity(recovery, managers, initial={})
    pinned = doc["verdict"]

    assert report.atomic == pinned["atomic"], report.summary()
    assert list(report.problems) == pinned["problems"]
    assert {
        str(t): s for t, s in sorted(recovery.committed_seq.items())
    } == pinned["committed_seq"]
    assert {
        k: v for k, v in sorted(recovery.values.items()) if v is not None
    } == pinned["recovered_values"]
    assert len(recovery.undone) == pinned["num_undone"]


@pytest.mark.parametrize("name", PASSING)
def test_passing_goldens_are_atomic(name):
    doc, *_ = _load(name)
    assert doc["verdict"]["atomic"]


@pytest.mark.parametrize("name", FAILING)
def test_failing_golden_reports_the_leak(name):
    doc, state, managers, pvars = _load(name)
    assert not doc["verdict"]["atomic"]
    recovery = recover(state, managers, pvars)
    report = check_atomicity(recovery, managers, initial={})
    assert not report.atomic
    assert any("commit order leaked" in p for p in report.problems)
