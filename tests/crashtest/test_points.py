"""Crash-point enumeration: deterministic, structured, in-bounds."""

from repro.core.models import resolve_model
from repro.crashtest.points import (
    ReferenceRun,
    derive_rng,
    enumerate_crash_points,
    stratified_cycles,
    trace_reference,
)
from repro.sim.config import MachineConfig
from repro.workloads import get_workload

IDENTITY = {"workload": "queue", "model": "asap_rp", "seed": 7, "points": 20}


def _reference(commits=(100, 200, 300), drain=1000):
    return ReferenceRun(
        drain_cycles=drain, runtime_cycles=drain - 50,
        commit_cycles=tuple(commits),
    )


def test_enumeration_is_deterministic():
    ref = _reference()
    first = enumerate_crash_points(ref, 20, IDENTITY)
    second = enumerate_crash_points(ref, 20, IDENTITY)
    assert first == second


def test_identity_changes_the_random_fill():
    ref = _reference()
    a = enumerate_crash_points(ref, 20, IDENTITY)
    b = enumerate_crash_points(ref, 20, dict(IDENTITY, seed=8))
    assert a != b
    # ...but commit boundaries appear in both regardless of the seed.
    for cycle in (101, 201, 301):
        assert cycle in a and cycle in b


def test_points_are_sorted_unique_and_in_bounds():
    ref = _reference()
    cycles = enumerate_crash_points(ref, 40, IDENTITY)
    assert cycles == sorted(set(cycles))
    assert all(1 <= c < ref.drain_cycles for c in cycles)
    assert len(cycles) == 40


def test_commit_boundaries_are_included():
    ref = _reference(commits=(10, 20, 30))
    cycles = enumerate_crash_points(ref, 12, IDENTITY)
    for boundary in (11, 21, 31):
        assert boundary in cycles


def test_many_boundaries_are_subsampled_to_half_budget():
    ref = _reference(commits=tuple(range(10, 910, 10)), drain=1000)
    cycles = enumerate_crash_points(ref, 20, IDENTITY)
    boundaries = {c + 1 for c in ref.commit_cycles}
    assert len([c for c in cycles if c in boundaries]) >= 10
    assert len(cycles) == 20


def test_short_run_yields_fewer_points_without_error():
    ref = _reference(commits=(), drain=5)
    cycles = enumerate_crash_points(ref, 50, IDENTITY)
    assert cycles == sorted(set(cycles))
    assert all(1 <= c < 5 for c in cycles)


def test_stratified_cycles_cover_all_strata():
    rng = derive_rng(IDENTITY)
    cycles = stratified_cycles(1000, 10, rng)
    assert len(cycles) == 10
    span = 999
    for index, cycle in enumerate(cycles):
        lo = 1 + index * span // 10
        hi = 1 + (index + 1) * span // 10
        assert lo <= cycle < max(lo + 1, hi)


def test_trace_reference_finds_commits_on_buffered_designs():
    workload = get_workload("queue", ops_per_thread=6)
    model = resolve_model("asap_rp")
    ref = trace_reference(
        workload, MachineConfig(), model.run_config(seed=7)
    )
    assert ref.drain_cycles > 0
    assert ref.commit_cycles  # the epoch table committed something
    assert ref.commit_cycles == tuple(sorted(set(ref.commit_cycles)))
    assert all(c <= ref.drain_cycles for c in ref.commit_cycles)
