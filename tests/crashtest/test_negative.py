"""Negative path: seeded bugs MUST be caught, minimized, and replayable.

Two true positives are pinned:

- ``buggy_demo`` (missing fence before a strand switch) violates its
  *semantic* recovery oracle under ASAP while the generic Theorem-2
  checker stays clean -- NewStrand legitimately relaxes the epoch DAG,
  so only the ordered-chain oracle sees the lost prefix.
- ``xpub`` under the ``asap_no_undo`` ablation (speculative persistence
  without undo logging) violates both checkers: an early-flushed
  dependent line survives while its cross-thread predecessor is lost.

Both failures must shrink to a single-line media delta and replay from
their serialized form.
"""

import pytest

from repro.crashtest import loads_state, replay_failure, run_campaign


@pytest.fixture(scope="module")
def buggy_report(tmp_path_factory):
    save_dir = tmp_path_factory.mktemp("buggy-failures")
    report = run_campaign(
        ["buggy_demo"], models=["asap_rp"], points=60, jobs=2,
        save_dir=str(save_dir),
    )
    return report


@pytest.fixture(scope="module")
def ablation_report(tmp_path_factory):
    save_dir = tmp_path_factory.mktemp("ablation-failures")
    report = run_campaign(
        ["xpub"], models=["asap_no_undo"], points=40, jobs=2,
        save_dir=str(save_dir),
    )
    return report


def test_buggy_demo_trips_the_semantic_oracle_only(buggy_report):
    (cell,) = buggy_report.cells
    assert not cell.ok, "the seeded bug must produce oracle violations"
    for result in cell.failures:
        assert result.oracle_violations, "violations must come from the oracle"
        assert not result.generic_violations, (
            "NewStrand relaxation keeps the generic checker clean; a "
            "generic violation here means the epoch DAG changed"
        )
    assert any(
        "chain 'buggy" in v
        for r in cell.failures for v in r.oracle_violations
    )


def test_buggy_demo_minimizes_to_single_line_delta(buggy_report):
    (cell,) = buggy_report.cells
    assert cell.failure is not None
    assert cell.failure["media_lines"] == 1
    assert cell.failure["media_lines"] < cell.failure["original_media_lines"]
    assert cell.failure["crash_cycle"] <= cell.failure["original_cycle"]
    assert cell.failure["violations"]


def test_ablation_trips_both_checkers(ablation_report):
    (cell,) = ablation_report.cells
    assert not cell.ok
    assert any(r.generic_violations for r in cell.failures)
    assert any(r.oracle_violations for r in cell.failures)
    assert cell.failure["media_lines"] == 1


def test_minimized_states_replay_exactly(buggy_report, ablation_report):
    for report in (buggy_report, ablation_report):
        assert report.saved_failures, "minimized state must be serialized"
        for path in report.saved_failures:
            replay = replay_failure(path)
            assert replay["reproduced"], path
            assert replay["media_lines"] == 1
            # the recorded verdict matches the fresh adjudication
            fresh = replay["generic_violations"] + replay["oracle_violations"]
            assert sorted(fresh) == sorted(replay["recorded_violations"])


def test_serialized_failure_carries_its_spec(ablation_report):
    (path,) = ablation_report.saved_failures
    with open(path) as handle:
        _, meta = loads_state(handle.read())
    assert meta["spec"]["workload"] == "xpub"
    assert meta["spec"]["hardware"] == "asap_no_undo"
    assert meta["violations"]
