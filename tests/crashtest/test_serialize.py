"""CrashState JSON serialization: exact, canonical, strict."""

import pytest

from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.core.models import resolve_model
from repro.crashtest.serialize import (
    STATE_KIND,
    decode_payload,
    dumps_state,
    encode_payload,
    loads_state,
)
from repro.sim.config import MachineConfig
from repro.tx.undolog import CommitPayload, DataPayload, PVar, UndoPayload
from repro.workloads import get_workload


def _crash_state(workload="queue", model="asap_rp", cycle=400, ops=6):
    w = get_workload(workload, ops_per_thread=ops)
    machine = MachineConfig()
    programs = w.programs(PMAllocator(), machine.num_cores)
    run_config = resolve_model(model).run_config(seed=7)
    return run_and_crash(machine, run_config, programs, cycle)


def _assert_states_equal(a, b):
    assert a.crash_cycle == b.crash_cycle
    assert a.media == b.media
    assert a.run_config == b.run_config
    assert set(a.log.writes) == set(b.log.writes)
    for wid, rec in a.log.writes.items():
        assert b.log.writes[wid] == rec
    assert a.log.line_order == b.log.line_order
    assert a.log.dep_edges == b.log.dep_edges
    assert a.log.strand_starts == b.log.strand_starts
    assert a.log.max_ts == b.log.max_ts
    assert a.log.payloads == b.log.payloads


def test_round_trip_is_exact():
    state = _crash_state()
    loaded, meta = loads_state(dumps_state(state, {"note": "rt"}))
    assert meta == {"note": "rt"}
    _assert_states_equal(state, loaded)


def test_round_trip_is_canonical_bytes():
    state = _crash_state()
    text = dumps_state(state, {"a": 1})
    loaded, _ = loads_state(text)
    assert dumps_state(loaded, {"a": 1}) == text


def test_payload_codec_covers_tx_records_and_tuples():
    payloads = [
        None, True, 42, -1, 3.5, "abc",
        ("ot", "queue/t0", 3),
        ["x", ("y", 1)],
        UndoPayload(tx_id=1, thread=0, tx_seq=2, var="a", old_value=9),
        DataPayload(tx_id=1, var="a", value=10),
        CommitPayload(thread=0, tx_seq=2, tx_id=1),
        PVar("bal", 0x1000),
    ]
    for payload in payloads:
        assert decode_payload(encode_payload(payload)) == payload
    # tuples stay tuples, lists stay lists
    assert isinstance(decode_payload(encode_payload((1, 2))), tuple)
    assert isinstance(decode_payload(encode_payload([1, 2])), list)


def test_unserializable_payload_is_a_hard_error():
    with pytest.raises(TypeError, match="not serializable"):
        encode_payload(object())


def test_loads_rejects_wrong_kind_and_schema():
    state = _crash_state(cycle=50)
    text = dumps_state(state, {})
    with pytest.raises(ValueError, match="not a repro-crashstate"):
        loads_state(text.replace(STATE_KIND, "something-else"))
    with pytest.raises(ValueError, match="unsupported"):
        loads_state(text.replace('"schema": 1', '"schema": 999'))


def test_round_trip_preserves_tx_payloads_from_a_real_run():
    # vacation runs pmdk-style undo transactions whose chain tags are
    # tuples; the serialized form must carry them through exactly.
    state = _crash_state(workload="vacation", cycle=3000, ops=8)
    loaded, _ = loads_state(dumps_state(state, {}))
    _assert_states_equal(state, loaded)
    assert any(
        isinstance(p, tuple) for p in state.log.payloads.values()
    ), "expected ordered-chain tuple payloads in the log"
