"""Unit tests for the recovery table (undo / delay records)."""

import pytest

from repro.core.recovery_table import RecoveryTable


@pytest.fixture
def rt(engine, stats):
    return RecoveryTable(engine, capacity=4, stats=stats, scope="mc0")


class TestUndoRecords:
    def test_create_and_lookup(self, rt):
        assert rt.create_undo(0, safe_value=0, core=0, epoch_ts=1)
        assert rt.has_undo(0)
        assert rt.undo_for(0).safe_value == 0

    def test_duplicate_undo_rejected(self, rt):
        rt.create_undo(0, 0, 0, 1)
        with pytest.raises(ValueError):
            rt.create_undo(0, 5, 1, 2)

    def test_update_undo(self, rt):
        rt.create_undo(0, 0, 0, 1)
        rt.update_undo(0, 42)
        assert rt.undo_for(0).safe_value == 42

    def test_update_missing_undo_raises(self, rt):
        with pytest.raises(KeyError):
            rt.update_undo(0, 42)

    def test_capacity_limit(self, rt):
        for i in range(4):
            assert rt.create_undo(i * 64, 0, 0, 1)
        assert rt.full
        assert not rt.create_undo(9 * 64, 0, 0, 1)

    def test_undo_records_export(self, rt):
        rt.create_undo(0, 11, 0, 1)
        rt.create_undo(64, 22, 0, 1)
        assert sorted(rt.undo_records()) == [(0, 11), (64, 22)]


class TestDelayRecords:
    def test_add_delay(self, rt):
        rt.create_undo(0, 0, 0, 1)
        assert rt.add_delay(0, 33, core=1, epoch_ts=4)
        assert len(rt.delays_for(0)) == 1

    def test_delay_coalesces_same_epoch(self, rt, stats):
        rt.add_delay(0, 33, core=1, epoch_ts=4)
        rt.add_delay(0, 44, core=1, epoch_ts=4)
        delays = rt.delays_for(0)
        assert len(delays) == 1
        assert delays[0].write_id == 44
        assert stats.get("delay_coalesced", scope="mc0") == 1

    def test_distinct_epochs_get_distinct_delays(self, rt):
        rt.add_delay(0, 33, core=1, epoch_ts=4)
        rt.add_delay(0, 44, core=2, epoch_ts=9)
        assert len(rt.delays_for(0)) == 2

    def test_delays_count_against_capacity(self, rt):
        rt.create_undo(0, 0, 0, 1)
        for i in range(3):
            assert rt.add_delay(0, 10 + i, core=1, epoch_ts=i + 10)
        assert rt.full
        assert not rt.add_delay(0, 99, core=1, epoch_ts=99)


class TestCommitProcessing:
    def test_commit_drops_own_undo_records(self, rt):
        rt.create_undo(0, 0, core=0, epoch_ts=3)
        rt.create_undo(64, 0, core=0, epoch_ts=4)
        released = rt.process_commit(core=0, epoch_ts=3)
        assert released == []
        assert not rt.has_undo(0)
        assert rt.has_undo(64)  # different epoch untouched

    def test_commit_releases_delays_for_persist(self, rt):
        rt.add_delay(0, 33, core=1, epoch_ts=4)
        released = rt.process_commit(core=1, epoch_ts=4)
        assert released == [(0, 33)]
        assert rt.delays_for(0) == []

    def test_commit_folds_delay_into_foreign_undo(self, rt):
        rt.create_undo(0, 0, core=0, epoch_ts=3)
        rt.add_delay(0, 55, core=1, epoch_ts=7)
        released = rt.process_commit(core=1, epoch_ts=7)
        assert released == []  # folded, not persisted
        assert rt.undo_for(0).safe_value == 55

    def test_commit_of_unknown_epoch_is_noop(self, rt):
        rt.create_undo(0, 0, 0, 1)
        assert rt.process_commit(core=5, epoch_ts=99) == []
        assert rt.has_undo(0)


class TestOccupancy:
    def test_len_counts_both_kinds(self, rt):
        rt.create_undo(0, 0, 0, 1)
        rt.add_delay(0, 1, 1, 2)
        assert len(rt) == 2

    def test_max_occupancy_tracked(self, rt):
        for i in range(3):
            rt.create_undo(i * 64, 0, 0, 1)
        rt.process_commit(0, 1)
        assert rt.max_occupancy == 3
        assert len(rt) == 0

    def test_records_of_epoch(self, rt):
        rt.create_undo(0, 0, core=0, epoch_ts=3)
        rt.add_delay(64, 1, core=0, epoch_ts=3)
        rt.add_delay(128, 2, core=1, epoch_ts=3)
        assert rt.records_of_epoch(0, 3) == 2
        assert rt.records_of_epoch(1, 3) == 1


class TestFigure5WriteCollision:
    """The paper's Figure 5: A=0, three threads write A=1, A=2, A=3;
    thread 3's flush arrives first, then thread 2's."""

    def test_collision_sequence_preserves_recoverable_value(self, rt):
        # A=3 (thread 3, epoch t3) arrives early: undo holds A=0.
        assert rt.create_undo(0, safe_value=0, core=3, epoch_ts=1)
        # A=2 (thread 2, epoch t2) arrives early while the undo exists:
        # a delay record, NOT a second speculative update.
        assert rt.add_delay(0, 2, core=2, epoch_ts=1)
        # Crash now must restore A=0.
        assert rt.undo_records() == [(0, 0)]
        # Thread 2's epoch commits (it precedes thread 3's in coherence
        # order): the delay value becomes the safe value.
        assert rt.process_commit(core=2, epoch_ts=1) == []
        assert rt.undo_for(0).safe_value == 2
        # Thread 3's epoch commits: speculation is now safe, undo dropped.
        rt.process_commit(core=3, epoch_ts=1)
        assert not rt.has_undo(0)
