"""Strand persistency (the Section VII-E StrandWeaver integration).

Strands split a thread's persists into independent chains: epochs in
different strands are unordered (their flushes are safe immediately and
their commits proceed independently), except that conflicting accesses
still order across strands (strong persist atomicity).
"""

import pytest

from repro.core.api import (
    Compute,
    DFence,
    NewStrand,
    OFence,
    PMAllocator,
    Store,
)
from repro.core.crash import crash_machine, run_and_crash
from repro.core.epoch_table import EpochTable
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.verify import check_consistency
from repro.verify.dag import build_dag

from tests.conftest import make_machine


def two_strand_program(buf, epochs_per_strand=4):
    """Interleaved writes to two structures, one strand each."""
    yield Store(buf, 64)  # strand 0
    yield OFence()
    yield NewStrand()
    for i in range(epochs_per_strand):
        yield Store(buf + 64 * (1 + i), 64)  # strand 1
        yield OFence()
    yield NewStrand()
    for i in range(epochs_per_strand):
        yield Store(buf + 64 * (16 + i), 64)  # strand 2
        yield OFence()
    yield DFence()


class TestEpochTableStrands:
    def test_strand_break_epoch_has_no_predecessor(self, engine, stats):
        et = EpochTable(engine, 8, stats, "c0", 0)
        et.on_enqueue(1)
        ts = et.open_epoch(strand_break=True)
        assert et.entries[ts].prev is None
        assert et.entries[ts].strand != et._committed_sparse  # distinct id

    def test_strand_start_safe_despite_uncommitted_older_epochs(
        self, engine, stats
    ):
        et = EpochTable(engine, 8, stats, "c0", 0)
        et.on_enqueue(1)  # epoch 1 has an outstanding write
        ts = et.open_epoch(strand_break=True)
        assert not et.is_committed(1)
        assert et.is_safe(ts)  # new strand does not wait for epoch 1

    def test_chained_epoch_not_safe(self, engine, stats):
        et = EpochTable(engine, 8, stats, "c0", 0)
        et.on_enqueue(1)
        ts = et.open_epoch()  # same strand
        assert not et.is_safe(ts)

    def test_out_of_order_commits_across_strands(self, engine, stats):
        et = EpochTable(engine, 8, stats, "c0", 0)
        et.on_enqueue(1)
        strand_ts = et.open_epoch(strand_break=True)
        et.on_enqueue(strand_ts)
        et.open_epoch()  # close the strand epoch
        # The strand epoch commits before epoch 1 (different chains).
        et.on_write_acked(strand_ts)
        assert et.is_committed(strand_ts)
        assert not et.is_committed(1)
        # Epoch 1 commits later; the dense prefix catches up.
        et.on_write_acked(1)
        assert et.committed_upto >= strand_ts

    def test_strand_of(self, engine, stats):
        et = EpochTable(engine, 8, stats, "c0", 0)
        first = et.strand_of(1)
        ts = et.open_epoch(strand_break=True)
        assert et.strand_of(ts) != first

    def test_dfence_waits_for_all_strands(self, engine, stats):
        et = EpochTable(engine, 8, stats, "c0", 0)
        et.on_enqueue(1)
        strand_ts = et.open_epoch(strand_break=True)
        et.on_enqueue(strand_ts)
        closed = et.close_current()
        fired = []
        assert not et.wait_for_commit(closed, lambda: fired.append(1))
        et.on_write_acked(strand_ts)
        engine.run()
        assert fired == []  # epoch 1 still outstanding
        et.on_write_acked(1)
        engine.run()
        assert fired == [1]


class TestStrandsOnASAP:
    def test_strand_flushes_are_safe_not_early(self):
        """A jammed chain in strand A must not force strand B's flushes
        early."""
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 64)

        def with_strands():
            for i in range(10):
                yield Store(buf + 64 * i, 64)
                yield OFence()
                yield NewStrand()
            yield DFence()

        result = machine.run([with_strands()])
        with_spec = result.stats.total("totSpecWrites")

        machine2 = make_machine(HardwareModel.ASAP, num_cores=1)
        heap2 = PMAllocator()
        buf2 = heap2.alloc(64 * 64)

        def without_strands():
            for i in range(10):
                yield Store(buf2 + 64 * i, 64)
                yield OFence()
            yield DFence()

        result2 = machine2.run([without_strands()])
        without_spec = result2.stats.total("totSpecWrites")
        assert with_spec < without_spec

    def test_strand_starts_recorded(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 64)
        result = machine.run([two_strand_program(buf)])
        assert len(result.log.strand_starts) == 2
        assert result.stats.total("strand_starts") == 2

    def test_dag_has_no_edges_into_strand_starts(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 64)
        result = machine.run([two_strand_program(buf)])
        dag = build_dag(result.log)
        assert dag.is_acyclic()
        for start in result.log.strand_starts:
            for _node, succs in dag.successors.items():
                core, ts = start
                # only cross edges may enter a strand start; intra edge
                # (core, ts-1) -> (core, ts) must be absent
                assert (core, ts) not in dag.successors.get((core, ts - 1), [])

    def test_hops_treats_strand_as_epoch_boundary(self):
        machine = make_machine(HardwareModel.HOPS, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 64)
        result = machine.run([two_strand_program(buf)])
        assert len(result.log.strand_starts) == 0  # no relaxation granted

    def test_baseline_runs_strands(self):
        machine = make_machine(HardwareModel.BASELINE, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 64)
        result = machine.run([two_strand_program(buf)])
        assert result.runtime_cycles > 0


class TestStrandCrashConsistency:
    def test_strand_crashes_stay_consistent(self):
        """Crash the strand workload at many instants; the (strand-aware)
        checker must accept every recovered state."""
        for crash_cycle in range(100, 6000, 171):
            heap = PMAllocator()
            buf = heap.alloc(64 * 64)
            state = run_and_crash(
                MachineConfig(num_cores=1),
                RunConfig(hardware=HardwareModel.ASAP),
                [two_strand_program(buf)],
                crash_cycle,
            )
            report = check_consistency(state.log, state.media)
            assert report.consistent, (crash_cycle, report.summary())

    def test_strands_may_survive_independently(self):
        """The relaxation is real: find a crash where a later strand's
        write survived while an earlier strand's write was lost -- legal
        with strands, a violation without them."""
        observed = False
        for crash_cycle in range(100, 8000, 61):
            heap = PMAllocator()
            buf = heap.alloc(64 * 64)
            machine = make_machine(HardwareModel.ASAP, num_cores=1)
            machine.run_until([two_strand_program(buf)], crash_cycle)
            state = crash_machine(machine)
            report = check_consistency(state.log, state.media)
            assert report.consistent
            # strand-2 epochs have higher ts than strand-1 epochs; check
            # whether some strand-2 write survived while a strand-1 write
            # was lost.
            strand1 = [buf + 64 * (1 + i) for i in range(4)]
            strand2 = [buf + 64 * (16 + i) for i in range(4)]
            lost1 = any(state.surviving_value(line) == 0 for line in strand1)
            kept2 = any(state.surviving_value(line) != 0 for line in strand2)
            if lost1 and kept2:
                observed = True
                break
        assert observed

    def test_cross_strand_conflict_still_ordered(self):
        """Writes to the same line from different strands stay ordered
        (strong persist atomicity): the checker must never flag them."""

        def conflicting(buf):
            yield Store(buf, 64)
            yield OFence()
            yield NewStrand()
            yield Store(buf, 64)  # same line, new strand
            yield OFence()
            yield Store(buf + 64, 64)
            yield DFence()

        for crash_cycle in range(50, 3000, 97):
            heap = PMAllocator()
            buf = heap.alloc(64 * 8)
            state = run_and_crash(
                MachineConfig(num_cores=1),
                RunConfig(hardware=HardwareModel.ASAP),
                [conflicting(buf)],
                crash_cycle,
            )
            report = check_consistency(state.log, state.media)
            assert report.consistent, (crash_cycle, report.summary())

    def test_cross_strand_conflicts_counted(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)

        def conflicting():
            yield Store(buf, 64)
            yield NewStrand()
            yield Store(buf, 64)
            yield DFence()

        result = machine.run([conflicting()])
        assert result.stats.total("cross_strand_conflicts") == 1
