"""Unit tests for the epoch table lifecycle and the global TS register."""

import pytest

from repro.core.epoch_table import EpochTable, GlobalTSRegister


@pytest.fixture
def et(engine, stats):
    return EpochTable(engine, capacity=4, stats=stats, scope="core0", core=0)


class TestLifecycle:
    def test_initial_state(self, et):
        assert et.current_ts == 1
        assert et.committed_upto == 0
        assert et.is_safe(1)

    def test_open_epoch_closes_previous(self, et):
        ts = et.open_epoch()
        assert ts == 2
        assert 1 not in et.entries  # empty epoch 1 committed immediately

    def test_epoch_with_pending_writes_does_not_commit(self, et):
        et.on_enqueue(1)
        et.open_epoch()
        assert 1 in et.entries
        assert not et.is_committed(1)

    def test_ack_completes_and_commits(self, et):
        et.on_enqueue(1)
        et.open_epoch()
        et.on_write_acked(1)
        assert et.is_committed(1)
        assert et.committed_upto == 1

    def test_open_epoch_never_commits(self, et):
        et.on_enqueue(1)
        et.on_write_acked(1)
        # all writes ACKed but the epoch is still open (not closed)
        assert not et.is_committed(1)

    def test_commits_cascade_in_order(self, et):
        et.on_enqueue(1)
        et.open_epoch()  # ts=2
        et.on_enqueue(2)
        et.open_epoch()  # ts=3
        # ACK epoch 2's write first: it cannot commit before epoch 1.
        et.on_write_acked(2)
        assert not et.is_committed(2)
        et.on_write_acked(1)
        assert et.committed_upto == 2  # both cascade

    def test_ack_underflow_detected(self, et):
        with pytest.raises(RuntimeError):
            et.on_write_acked(1)

    def test_all_committed(self, et):
        assert et.all_committed()
        et.on_enqueue(1)
        et.open_epoch()
        assert not et.all_committed()
        et.on_write_acked(1)
        assert et.all_committed()


class TestSafety:
    def test_safe_requires_predecessor_committed(self, et):
        et.on_enqueue(1)
        et.open_epoch()
        assert not et.is_safe(2)
        et.on_write_acked(1)
        assert et.is_safe(2)

    def test_safe_requires_dep_resolved(self, et):
        et.set_dep(1, (1, 7))
        assert not et.is_safe(1)
        et.resolve_dep(1)
        assert et.is_safe(1)

    def test_committed_epochs_are_safe(self, et):
        et.open_epoch()
        assert et.is_safe(1)

    def test_one_dep_per_epoch(self, et):
        et.set_dep(1, (1, 7))
        with pytest.raises(ValueError):
            et.set_dep(1, (2, 9))


class TestDependencies:
    def test_register_dependent_on_live_epoch(self, et):
        et.on_enqueue(1)
        et.open_epoch()
        assert et.register_dependent(1, (1, 4))
        assert et.entries[1].dependents == [(1, 4)]

    def test_register_dependent_on_committed_epoch_declines(self, et):
        et.open_epoch()  # epoch 1 committed
        assert not et.register_dependent(1, (1, 4))

    def test_cdr_sent_on_commit(self, engine, et):
        sent = []
        et.send_cdr = sent.append
        et.on_enqueue(1)
        et.open_epoch()
        et.register_dependent(1, (1, 4))
        et.on_write_acked(1)
        assert sent == [(1, 4)]

    def test_resolve_dep_on_retired_epoch_is_noop(self, et):
        et.open_epoch()
        et.resolve_dep(1)  # epoch 1 already gone

    def test_unresolved_deps_listing(self, et):
        et.set_dep(1, (1, 7))
        assert et.unresolved_deps() == [(1, (1, 7))]
        et.resolve_dep(1)
        assert et.unresolved_deps() == []


class TestCommitAction:
    def test_custom_commit_action_controls_finalize(self, et):
        pending = []
        et.commit_action = pending.append
        et.on_enqueue(1)
        et.open_epoch()
        et.on_write_acked(1)
        assert not et.is_committed(1)  # action deferred
        et.finalize_commit(pending[0])
        assert et.is_committed(1)

    def test_out_of_order_finalize_rejected(self, et):
        et.on_enqueue(1)
        et.open_epoch()  # ts 2
        et.on_enqueue(2)
        et.open_epoch()  # ts 3
        entry2 = et.entries[2]
        entry2.closed = True
        with pytest.raises(RuntimeError):
            et.finalize_commit(entry2)

    def test_commit_action_called_once(self, et):
        calls = []
        et.commit_action = calls.append
        et.on_enqueue(1)
        et.open_epoch()
        et.on_write_acked(1)
        et.maybe_commit(1)  # extra nudges must not duplicate
        assert len(calls) == 1


class TestFenceSupport:
    def test_wait_for_commit_immediate_when_satisfied(self, et):
        fired = []
        assert et.wait_for_commit(0, lambda: fired.append(1))
        assert fired == []  # satisfied synchronously, no callback

    def test_wait_for_commit_deferred(self, engine, et):
        et.on_enqueue(1)
        et.open_epoch()
        fired = []
        assert not et.wait_for_commit(1, lambda: fired.append(engine.now))
        et.on_write_acked(1)
        engine.run()
        assert len(fired) == 1

    def test_capacity_pressure(self, et):
        for _ in range(6):
            et.on_enqueue(et.current_ts)
            et.open_epoch()
        assert et.over_capacity  # 6 live epochs > 4 entries


class TestGlobalTSRegister:
    def test_publish_visible_after_access_latency(self, engine, stats):
        register = GlobalTSRegister(stats, engine, access_cycles=50)
        register.publish(0, 7)
        assert register.committed_upto(0) == 0  # write still in flight
        engine.run()
        assert register.committed_upto(0) == 7

    def test_publishes_coalesce_per_core(self, engine, stats):
        register = GlobalTSRegister(stats, engine, access_cycles=50)
        register.publish(0, 1)
        register.publish(0, 5)  # coalesces into the pending write
        engine.run()
        assert register.committed_upto(0) == 5
        assert stats.get("global_ts_writes") == 2

    def test_accesses_serialize(self, engine, stats):
        register = GlobalTSRegister(stats, engine, access_cycles=50)
        first = register.read_done_at()
        second = register.read_done_at()
        assert second - first == 50

    def test_value_never_regresses(self, engine, stats):
        register = GlobalTSRegister(stats, engine, access_cycles=10)
        register.publish(0, 9)
        engine.run()
        register.publish(0, 3)  # stale publish
        engine.run()
        assert register.committed_upto(0) == 9

    def test_without_engine_is_immediate(self, stats):
        register = GlobalTSRegister(stats)
        register.publish(1, 4)
        assert register.committed_upto(1) == 4
