"""Unit tests for the PMem programming API and allocator."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)


class TestOps:
    def test_store_defaults(self):
        op = Store(0x1000)
        assert op.size == 8
        assert op.payload is None

    def test_ops_are_immutable(self):
        with pytest.raises(Exception):
            Store(0x1000).addr = 5

    def test_distinct_op_types(self):
        kinds = {type(op) for op in (
            Store(0), Load(0), OFence(), DFence(), Acquire(1), Release(1),
            Compute(5),
        )}
        assert len(kinds) == 7


class TestPMAllocator:
    def test_allocations_do_not_overlap(self):
        heap = PMAllocator()
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert b >= a + 100

    def test_line_allocations_are_aligned(self):
        heap = PMAllocator()
        heap.alloc(13)  # misalign the bump pointer
        addr = heap.alloc_lines(2)
        assert addr % 64 == 0

    def test_small_allocations_naturally_aligned(self):
        heap = PMAllocator()
        heap.alloc(3)
        addr = heap.alloc(8)
        assert addr % 8 == 0

    def test_explicit_alignment(self):
        heap = PMAllocator()
        heap.alloc(10)
        addr = heap.alloc(512, align=256)
        assert addr % 256 == 0

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            PMAllocator().alloc(0)

    def test_locks_on_distinct_lines(self):
        heap = PMAllocator()
        locks = [heap.alloc_lock() for _ in range(4)]
        lines = {lock // 64 for lock in locks}
        assert len(lines) == 4

    def test_bytes_allocated(self):
        heap = PMAllocator()
        heap.alloc(64)
        heap.alloc(64)
        assert heap.bytes_allocated >= 128
