"""Model-specific behaviour tests (early flushes, NACK fallback, polling)."""

import pytest

from repro.core.api import (
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)

from tests.conftest import locked_pair, make_machine, simple_writer


def burst_writer(heap, epochs=12, lines_per_epoch=2):
    """Back-to-back small epochs with no think time: epochs pile up, so
    later epochs flush while earlier ones are still uncommitted."""
    buf = heap.alloc(64 * epochs * lines_per_epoch)

    def program():
        addr = buf
        for _ in range(epochs):
            for _ in range(lines_per_epoch):
                yield Store(addr, 64)
                addr += 64
            yield OFence()
        yield DFence()

    return program()


class TestASAP:
    def test_early_flushes_and_undo_records(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap)])
        assert result.stats.total("totSpecWrites") > 0
        assert result.stats.total("totalUndo") > 0

    def test_commit_messages_only_for_early_epochs(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap)])
        commits = result.stats.total("commits_processed")
        # some epochs commit locally (safe flushes only), so commit
        # messages are fewer than epochs but more than zero here
        assert 0 < commits <= result.stats.total("epochs_committed")

    def test_rt_freed_after_run(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        machine.run([burst_writer(heap)])
        for rt in machine.recovery_tables:
            assert len(rt) == 0  # every undo/delay record cleaned up

    def test_asap_uses_more_pm_reads_than_hops(self):
        """Undo-record creation reads the device (Figure 9: +5.3% reads)."""
        reads = {}
        for hw in (HardwareModel.ASAP, HardwareModel.HOPS):
            machine = make_machine(hw, num_cores=1)
            heap = PMAllocator()
            result = machine.run([burst_writer(heap)])
            reads[hw] = result.stats.total("pm_reads")
        assert reads[HardwareModel.ASAP] >= reads[HardwareModel.HOPS]


class TestNACKFallback:
    def _tiny_rt_machine(self, rt_entries=2):
        config = MachineConfig(num_cores=1, rt_entries=rt_entries)
        return Machine(config, RunConfig(hardware=HardwareModel.ASAP))

    def test_nacks_trigger_conservative_fallback(self):
        machine = self._tiny_rt_machine()
        heap = PMAllocator()
        result = machine.run([burst_writer(heap, epochs=20, lines_per_epoch=3)])
        assert result.stats.total("flushes_nacked") > 0
        assert result.stats.total("conservative_fallbacks") > 0

    def test_nacked_run_still_completes_and_drains(self):
        machine = self._tiny_rt_machine()
        heap = PMAllocator()
        result = machine.run([burst_writer(heap, epochs=20, lines_per_epoch=3)])
        for rt in machine.recovery_tables:
            assert len(rt) == 0
        assert machine.paths[0].is_drained()

    def test_forward_progress_with_zero_rt(self):
        """An RT of size 0 NACKs every early flush; the system must fall
        back to pure conservative flushing and still finish (Theorem 1)."""
        machine = self._tiny_rt_machine(rt_entries=0)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap, epochs=10)])
        assert result.stats.total("totalUndo") == 0
        assert result.runtime_cycles > 0


class TestHOPS:
    def test_conservative_never_issues_early(self):
        machine = make_machine(HardwareModel.HOPS, num_cores=1)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap)])
        assert result.stats.total("totSpecWrites") == 0
        assert result.stats.total("totalUndo") == 0

    def test_hops_blocks_while_asap_does_not(self):
        blocked = {}
        for hw in (HardwareModel.HOPS, HardwareModel.ASAP):
            machine = make_machine(hw, num_cores=1)
            heap = PMAllocator()
            result = machine.run([burst_writer(heap)])
            blocked[hw] = result.stats.total("cyclesBlocked")
        assert blocked[HardwareModel.HOPS] > blocked[HardwareModel.ASAP]

    def test_polling_resolves_cross_deps(self):
        machine = make_machine(
            HardwareModel.HOPS, PersistencyModel.RELEASE, num_cores=2
        )
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=8))
        assert result.stats.total("interTEpochConflict") > 0
        assert result.stats.total("global_ts_reads") > 0
        # and the run drained: every dep eventually resolved
        for path in machine.paths:
            assert path.et.unresolved_deps() == []

    def test_hops_slower_than_asap_on_cross_deps(self):
        runtimes = {}
        for hw in (HardwareModel.HOPS, HardwareModel.ASAP):
            machine = make_machine(hw, num_cores=2)
            heap = PMAllocator()
            runtimes[hw] = machine.run(locked_pair(heap, iters=10)).runtime_cycles
        assert runtimes[HardwareModel.ASAP] < runtimes[HardwareModel.HOPS]


class TestBaseline:
    def test_no_recovery_tables(self):
        machine = make_machine(HardwareModel.BASELINE, num_cores=1)
        assert all(rt is None for rt in machine.recovery_tables)

    def test_flushes_never_early(self):
        machine = make_machine(HardwareModel.BASELINE, num_cores=1)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap)])
        assert result.stats.total("totSpecWrites") == 0

    def test_release_drains_buffer(self):
        machine = make_machine(HardwareModel.BASELINE, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=4))
        assert result.stats.total("sfenceStalled") > 0


class TestEADR:
    def test_no_flush_traffic(self):
        machine = make_machine(HardwareModel.EADR, num_cores=1)
        heap = PMAllocator()
        result = machine.run([burst_writer(heap)])
        assert result.stats.total("entriesInserted") == 0
        assert result.stats.total("pm_writes") == 0

    def test_fastest_model(self):
        runtimes = {}
        for hw in HardwareModel:
            machine = make_machine(hw, num_cores=1)
            heap = PMAllocator()
            runtimes[hw] = machine.run([burst_writer(heap)]).runtime_cycles
        assert runtimes[HardwareModel.EADR] == min(runtimes.values())


class TestCoalescingComparison:
    def test_hops_coalesces_more_on_hot_lines(self):
        """Entries linger longer under conservative flushing, so rewrites
        of hot lines coalesce in the PB (Figure 9's counter-effect)."""

        def hot_line_program(heap):
            buf = heap.alloc(64 * 2)

            def program():
                for i in range(30):
                    yield Store(buf + 64 * (i % 2), 8)
                    if i % 3 == 2:
                        yield OFence()
                yield DFence()

            return program()

        coalesced = {}
        for hw in (HardwareModel.HOPS, HardwareModel.ASAP):
            machine = make_machine(hw, num_cores=1)
            heap = PMAllocator()
            result = machine.run([hot_line_program(heap)])
            coalesced[hw] = result.stats.total("pb_coalesced")
        assert coalesced[HardwareModel.HOPS] >= coalesced[HardwareModel.ASAP]
