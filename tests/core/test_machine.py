"""Integration tests for the machine: op execution, locks, dependencies."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)

from tests.conftest import locked_pair, make_machine, simple_writer


class TestBasicExecution:
    def test_empty_program_finishes(self):
        machine = make_machine(num_cores=1)
        result = machine.run([iter(())])
        assert result.runtime_cycles >= 0

    def test_compute_advances_clock(self):
        machine = make_machine(HardwareModel.EADR, num_cores=1)
        result = machine.run([iter([Compute(1000)])])
        assert result.runtime_cycles >= 1000

    def test_single_writer_all_models(self):
        for hw in HardwareModel:
            machine = make_machine(hw, num_cores=1)
            heap = PMAllocator()
            result = machine.run([simple_writer(heap)])
            assert result.runtime_cycles > 0, hw

    def test_multiline_store_touches_every_line(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(256, align=256)
        result = machine.run([iter([Store(buf, 256), DFence()])])
        lines = {record.line for record in result.log.writes.values()}
        assert lines == {buf, buf + 64, buf + 128, buf + 192}

    def test_ops_counted(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64)
        result = machine.run([iter([Store(buf, 8), OFence(), DFence()])])
        assert result.ops_executed == 3

    def test_too_many_programs_rejected(self):
        machine = make_machine(num_cores=1)
        with pytest.raises(ValueError):
            machine.run([iter(()), iter(())])

    def test_machine_is_single_use(self):
        machine = make_machine(num_cores=1)
        machine.run([iter(())])
        with pytest.raises(RuntimeError):
            machine.run([iter(())])

    def test_unknown_op_rejected(self):
        machine = make_machine(num_cores=1)
        with pytest.raises(TypeError):
            machine.run([iter([object()])])


class TestOrderingCosts:
    def test_baseline_slower_than_eadr(self):
        heap1, heap2 = PMAllocator(), PMAllocator()
        base = make_machine(HardwareModel.BASELINE, num_cores=1).run(
            [simple_writer(heap1)]
        )
        ideal = make_machine(HardwareModel.EADR, num_cores=1).run(
            [simple_writer(heap2)]
        )
        assert base.runtime_cycles > ideal.runtime_cycles

    def test_asap_between_baseline_and_eadr(self):
        runtimes = {}
        for hw in (HardwareModel.BASELINE, HardwareModel.ASAP, HardwareModel.EADR):
            heap = PMAllocator()
            runtimes[hw] = make_machine(hw, num_cores=1).run(
                [simple_writer(heap, num_stores=16)]
            ).runtime_cycles
        assert (
            runtimes[HardwareModel.EADR]
            <= runtimes[HardwareModel.ASAP]
            <= runtimes[HardwareModel.BASELINE]
        )

    def test_baseline_ofence_drains(self):
        machine = make_machine(HardwareModel.BASELINE, num_cores=1)
        heap = PMAllocator()
        result = machine.run([simple_writer(heap)])
        assert result.stats.total("sfenceStalled") > 0

    def test_eadr_fences_free(self):
        machine = make_machine(HardwareModel.EADR, num_cores=1)
        heap = PMAllocator()
        result = machine.run([simple_writer(heap)])
        assert result.stats.total("sfenceStalled") == 0
        assert result.stats.total("dfenceStalled") == 0


class TestLocks:
    def test_mutual_exclusion_serializes(self):
        machine = make_machine(HardwareModel.EADR, num_cores=2)
        heap = PMAllocator()
        lock = heap.alloc_lock()

        def holder():
            yield Acquire(lock)
            yield Compute(1000)
            yield Release(lock)

        result = machine.run([holder(), holder()])
        # Two 1000-cycle critical sections under one lock cannot overlap.
        assert result.runtime_cycles >= 2000

    def test_release_without_hold_raises(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        lock = heap.alloc_lock()
        with pytest.raises(RuntimeError, match="does not hold"):
            machine.run([iter([Release(lock)])])

    def test_reacquire_raises(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        lock = heap.alloc_lock()
        with pytest.raises(RuntimeError, match="re-acquiring"):
            machine.run([iter([Acquire(lock), Acquire(lock)])])

    def test_fifo_handoff(self):
        """Three contenders acquire in arrival order."""
        machine = make_machine(HardwareModel.EADR, num_cores=3)
        heap = PMAllocator()
        lock = heap.alloc_lock()
        order = []

        def contender(tid, delay):
            yield Compute(delay)
            yield Acquire(lock)
            order.append(tid)
            yield Compute(500)
            yield Release(lock)

        machine.run([contender(0, 1), contender(1, 50), contender(2, 100)])
        assert order == [0, 1, 2]


class TestDependencies:
    def test_lock_transfer_creates_dep_under_rp(self):
        machine = make_machine(
            HardwareModel.ASAP, PersistencyModel.RELEASE, num_cores=2
        )
        heap = PMAllocator()
        result = machine.run(locked_pair(heap))
        assert result.stats.total("interTEpochConflict") > 0
        assert result.log.num_cross_deps() > 0

    def test_ep_creates_more_deps_than_rp(self):
        counts = {}
        for pm in PersistencyModel:
            machine = make_machine(HardwareModel.ASAP, pm, num_cores=2)
            heap = PMAllocator()
            result = machine.run(locked_pair(heap, iters=10))
            counts[pm] = result.log.num_cross_deps()
        assert counts[PersistencyModel.EPOCH] >= counts[PersistencyModel.RELEASE]

    def test_baseline_records_no_deps(self):
        machine = make_machine(
            HardwareModel.BASELINE, PersistencyModel.RELEASE, num_cores=2
        )
        heap = PMAllocator()
        result = machine.run(locked_pair(heap))
        assert result.log.num_cross_deps() == 0

    def test_dep_edges_are_between_distinct_cores(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap))
        for (src_core, _), (dst_core, _) in result.log.dep_edges:
            assert src_core != dst_core

    def test_conflicting_load_creates_dep_under_ep(self):
        machine = make_machine(
            HardwareModel.ASAP, PersistencyModel.EPOCH, num_cores=2
        )
        heap = PMAllocator()
        shared = heap.alloc(64)

        def writer():
            yield Store(shared, 8)
            yield Compute(20)
            yield Compute(2000)
            yield DFence()

        def reader():
            yield Compute(60)
            yield Load(shared, 8)
            yield Store(shared + 8, 8)
            yield DFence()

        result = machine.run([writer(), reader()])
        assert result.log.num_cross_deps() >= 1


class TestDrainGuarantees:
    def test_run_result_reports_drained_system(self):
        for hw in HardwareModel:
            machine = make_machine(hw, num_cores=2)
            heap = PMAllocator()
            result = machine.run(locked_pair(heap, iters=4))
            for path in machine.paths:
                assert path.is_drained(), hw

    def test_drain_time_at_least_runtime(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=4))
        assert result.drain_cycles >= result.runtime_cycles

    def test_per_core_runtimes_populated(self):
        machine = make_machine(num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=3))
        assert len(result.per_core_runtime) == 2
        assert all(t > 0 for t in result.per_core_runtime)


class TestWriteLog:
    def test_every_store_logged_with_epoch(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 4)
        ops = [Store(buf + 64 * i, 8) for i in range(4)]
        ops += [OFence(), Store(buf, 8), DFence()]
        result = machine.run([iter(ops)])
        assert len(result.log.writes) == 5
        epochs = {r.epoch_ts for r in result.log.writes.values()}
        assert len(epochs) == 2  # before and after the ofence

    def test_line_order_matches_execution_order(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64)
        result = machine.run(
            [iter([Store(buf, 8), Store(buf, 8), Store(buf, 8), DFence()])]
        )
        order = result.log.line_order[buf]
        assert order == sorted(order)

    def test_payloads_recorded(self):
        machine = make_machine(num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64)
        result = machine.run([iter([Store(buf, 8, payload="hello"), DFence()])])
        newest = result.log.newest_write_per_line()[buf]
        assert result.log.payloads[newest] == "hello"
