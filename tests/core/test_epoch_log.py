"""Unit tests for the epoch log (the checker's input)."""

from repro.core.epoch import EpochEntry, EpochLog


class TestEpochEntry:
    def test_complete_requires_closed_and_acked(self):
        entry = EpochEntry(ts=1)
        assert not entry.complete  # open
        entry.closed = True
        assert entry.complete
        entry.unacked = 1
        assert not entry.complete

    def test_single_dep(self):
        entry = EpochEntry(ts=1)
        entry.set_dep((2, 5))
        assert entry.dep == (2, 5)
        assert not entry.dep_resolved


class TestEpochLog:
    def test_record_write_tracks_order(self):
        log = EpochLog()
        log.record_write(1, line=0, core=0, epoch_ts=1)
        log.record_write(2, line=0, core=1, epoch_ts=1)
        assert log.line_order[0] == [1, 2]

    def test_epoch_of_write(self):
        log = EpochLog()
        log.record_write(5, line=64, core=2, epoch_ts=9)
        assert log.epoch_of_write(5) == (2, 9)

    def test_newest_write_per_line(self):
        log = EpochLog()
        log.record_write(1, 0, 0, 1)
        log.record_write(2, 0, 0, 2)
        log.record_write(3, 64, 0, 2)
        assert log.newest_write_per_line() == {0: 2, 64: 3}

    def test_num_epochs_counts_max_ts_per_core(self):
        log = EpochLog()
        log.record_write(1, 0, 0, 3)
        log.record_write(2, 64, 1, 5)
        assert log.num_epochs() == 8

    def test_dep_edges_bump_epoch_counts(self):
        log = EpochLog()
        log.record_dep((0, 4), (1, 2))
        assert log.num_cross_deps() == 1
        assert log.max_ts == {0: 4, 1: 2}

    def test_payload_recording(self):
        log = EpochLog()
        log.record_write(1, 0, 0, 1, payload={"k": 1})
        assert log.payloads[1] == {"k": 1}
        log.record_write(2, 0, 0, 1)  # no payload
        assert 2 not in log.payloads
