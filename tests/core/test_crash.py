"""Unit/integration tests for crash injection and reconstruction."""

import pytest

from repro.core.api import Compute, DFence, OFence, PMAllocator, Store
from repro.core.crash import CrashState, crash_machine, run_and_crash
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)

from tests.conftest import make_machine, simple_writer


def ordered_program(buf, n=6):
    for i in range(n):
        yield Store(buf + 64 * i, 64, payload=f"v{i}")
        yield OFence()
    yield DFence()


class TestCrashTiming:
    def test_crash_before_anything_leaves_memory_pristine(self):
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.ASAP),
            [ordered_program(buf)],
            crash_cycle=1,
        )
        assert all(v == 0 for v in state.media.values())

    def test_crash_after_completion_has_everything(self):
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.ASAP),
            [ordered_program(buf)],
            crash_cycle=10_000_000,
        )
        expected = state.log.newest_write_per_line()
        for line, write_id in expected.items():
            assert state.media.get(line) == write_id

    def test_mid_crash_loses_a_suffix(self):
        """Under ordered writes, what survives must be a prefix."""
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.ASAP),
            [ordered_program(buf)],
            crash_cycle=700,
        )
        survived = [
            i for i in range(6) if state.surviving_value(buf + 64 * i) != 0
        ]
        assert survived == list(range(len(survived)))  # contiguous prefix


class TestEADRCrash:
    def test_eadr_preserves_every_write(self):
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.EADR),
            [ordered_program(buf)],
            crash_cycle=300,  # mid-run: caches are battery-backed anyway
        )
        executed = state.log.newest_write_per_line()
        for line, write_id in executed.items():
            assert state.media[line] == write_id


class TestPayloads:
    def test_surviving_payload_maps_write_ids_to_values(self):
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.ASAP),
            [ordered_program(buf)],
            crash_cycle=10_000_000,
        )
        assert state.surviving_payload(buf) == "v0"
        assert state.surviving_payload(buf + 64 * 5) == "v5"

    def test_missing_payload_returns_default(self):
        heap = PMAllocator()
        buf = heap.alloc(64 * 8)
        state = run_and_crash(
            MachineConfig(num_cores=1),
            RunConfig(hardware=HardwareModel.ASAP),
            [ordered_program(buf)],
            crash_cycle=1,
        )
        assert state.surviving_payload(buf, default="none") == "none"


class TestUndoUnwinding:
    def test_speculative_writes_rolled_back(self):
        """Pause a machine while undo records are live and check the
        crash image excludes the speculative values."""
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        buf = heap.alloc(64 * 16)

        def program():
            for i in range(16):
                yield Store(buf + 64 * i, 64)
                yield OFence()
            yield DFence()

        # Stop early enough that some epochs are still uncommitted.
        machine.run_until([program()], crash_cycle=400)
        live_undos = sum(len(rt) for rt in machine.recovery_tables if rt)
        state = crash_machine(machine)
        # Every surviving line value must belong to a prefix of epochs.
        survived = [i for i in range(16) if state.surviving_value(buf + 64 * i)]
        assert survived == list(range(len(survived)))
        # If undo records were live, something was indeed rolled back or
        # pending -- the run must not have persisted all 16 lines.
        if live_undos:
            assert len(survived) < 16
