"""Unit tests for the persist buffer and its flush policies."""

import pytest

from repro.core.persist_buffer import (
    EnqueueResult,
    PBEntryState,
    PersistBuffer,
    make_conservative_policy,
    make_eager_policy,
    select_fifo_any,
)


@pytest.fixture
def pb(engine, stats):
    buffer = PersistBuffer(
        engine, capacity=4, issue_cycles=2, stats=stats, scope="core0", core=0,
        inflight_max=8,
    )
    buffer.select_entry = select_fifo_any
    buffer.sent = []
    buffer.send_flush = buffer.sent.append
    return buffer


class TestEnqueue:
    def test_enqueue_until_full(self, pb):
        for i in range(4):
            assert pb.enqueue(i * 64, i + 1, epoch_ts=1) is EnqueueResult.ADDED
        assert pb.full
        assert pb.enqueue(9 * 64, 99, epoch_ts=1) is EnqueueResult.FULL

    def test_entries_inserted_stat(self, pb, stats):
        pb.enqueue(0, 1, 1)
        pb.enqueue(64, 2, 1)
        assert stats.get("entriesInserted", scope="core0") == 2

    def test_coalesce_same_line_same_epoch(self, engine, stats):
        # Hold issue back so the second store finds the first still queued
        # (exactly the conservative-flushing situation where coalescing
        # pays off, per the Figure 9 discussion).
        pb = PersistBuffer(engine, 4, 2, stats, "core0", 0)
        pb.select_entry = lambda buf: None
        assert pb.enqueue(0, 1, epoch_ts=1) is EnqueueResult.ADDED
        assert pb.enqueue(0, 2, epoch_ts=1) is EnqueueResult.COALESCED
        assert len(pb) == 1
        assert pb.entries[0].write_id == 2
        assert stats.get("pb_coalesced", scope="core0") == 1

    def test_no_coalesce_across_epochs(self, pb):
        pb.enqueue(0, 1, epoch_ts=1)
        pb.enqueue(0, 2, epoch_ts=2)
        assert len(pb) == 2

    def test_no_coalesce_into_inflight_entry(self, engine, pb):
        pb.enqueue(0, 1, epoch_ts=1)
        engine.run()  # issues the flush
        assert pb.entries[0].state is PBEntryState.INFLIGHT
        pb.enqueue(0, 2, epoch_ts=1)
        assert len(pb) == 2

    def test_contains_line(self, pb):
        pb.enqueue(0, 1, 1)
        assert pb.contains_line(0)
        assert not pb.contains_line(64)


class TestIssue:
    def test_flush_issued_fifo(self, engine, pb):
        pb.enqueue(0, 1, 1)
        pb.enqueue(64, 2, 1)
        engine.run()
        assert [e.write_id for e in pb.sent] == [1, 2]

    def test_issue_paced_by_port(self, engine, pb):
        issue_times = []
        pb.send_flush = lambda e: issue_times.append(engine.now)
        for i in range(3):
            pb.enqueue(i * 64, i + 1, 1)
        engine.run()
        assert issue_times[1] - issue_times[0] >= 2
        assert issue_times[2] - issue_times[1] >= 2

    def test_inflight_cap(self, engine, stats):
        pb = PersistBuffer(
            engine, capacity=8, issue_cycles=1, stats=stats, scope="c", core=0,
            inflight_max=2,
        )
        pb.select_entry = select_fifo_any
        sent = []
        pb.send_flush = sent.append
        for i in range(6):
            pb.enqueue(i * 64, i + 1, 1)
        engine.run()
        assert len(sent) == 2  # stuck at the cap until ACKs arrive
        pb.handle_ack(sent[0])
        engine.run()
        assert len(sent) == 3

    def test_ack_removes_entry_and_wakes_space(self, engine, pb):
        for i in range(4):
            pb.enqueue(i * 64, i + 1, 1)
        engine.run()
        woken = []
        pb.space_waiter.wait(lambda: woken.append(True))
        pb.handle_ack(pb.sent[0])
        engine.run()
        assert len(pb) == 3
        assert woken == [True]

    def test_drain_waiter_fires_on_empty(self, engine, pb):
        pb.enqueue(0, 1, 1)
        engine.run()
        drained = []
        pb.drain_waiter.wait(lambda: drained.append(True))
        pb.handle_ack(pb.sent[0])
        engine.run()
        assert drained == [True]
        assert pb.empty

    def test_nack_holds_entry(self, engine, pb, stats):
        pb.enqueue(0, 1, 1)
        engine.run()
        entry = pb.sent[0]
        pb.handle_nack(entry)
        assert entry.state is PBEntryState.NACK_WAIT
        assert len(pb) == 1
        assert stats.get("pb_nacks", scope="core0") == 1


class TestPolicies:
    def test_fifo_any_skips_inflight(self, engine, pb):
        pb.enqueue(0, 1, 1)
        pb.enqueue(64, 2, 1)
        engine.run()
        assert select_fifo_any(pb) is None  # both in flight

    def test_conservative_only_safe_epochs(self, engine, stats):
        safe = {1}
        pb = PersistBuffer(engine, 8, 1, stats, "c", 0)
        pb.select_entry = make_conservative_policy(lambda ts: ts in safe)
        sent = []
        pb.send_flush = sent.append
        pb.enqueue(0, 1, epoch_ts=1)
        pb.enqueue(64, 2, epoch_ts=2)
        engine.run()
        # Only the safe epoch's write was issued; epoch 2 is blocked.
        assert [e.epoch_ts for e in sent] == [1]
        assert pb.select_entry(pb) is None

    def test_eager_takes_anything_queued(self, engine, stats):
        pb = PersistBuffer(engine, 8, 1, stats, "c", 0)
        pb.select_entry = make_eager_policy(lambda ts: False)
        sent = []
        pb.send_flush = sent.append
        pb.enqueue(0, 1, epoch_ts=5)  # unsafe epoch still issues eagerly
        engine.run()
        assert [e.epoch_ts for e in sent] == [5]

    def test_eager_retries_nack_only_when_safe(self, engine, stats):
        safe = set()
        pb = PersistBuffer(engine, 8, 1, stats, "c", 0)
        pb.select_entry = make_eager_policy(lambda ts: ts in safe)
        pb.send_flush = lambda e: None
        pb.enqueue(0, 1, epoch_ts=5)
        pb.entries[0].state = PBEntryState.NACK_WAIT
        assert pb.select_entry(pb) is None
        safe.add(5)
        assert pb.select_entry(pb) is not None

    def test_eager_conservative_fallback(self, engine, stats):
        safe = {1}
        pb = PersistBuffer(engine, 8, 1, stats, "c", 0)
        pb.select_entry = make_eager_policy(lambda ts: ts in safe)
        sent = []
        pb.send_flush = sent.append
        pb.conservative_until_ts = 3
        pb.enqueue(0, 1, epoch_ts=2)  # unsafe: must wait in fallback mode
        engine.run()
        assert sent == []
        pb.enqueue(64, 2, epoch_ts=1)  # safe: issues even in fallback
        engine.run()
        assert [e.epoch_ts for e in sent] == [1]

    def test_early_classification_sets_flag_and_stat(self, engine, stats):
        pb = PersistBuffer(engine, 8, 1, stats, "c0", 0)
        pb.select_entry = make_eager_policy(lambda ts: ts <= 1)
        pb.classify_early = lambda ts: ts > 1
        sent = []
        pb.send_flush = sent.append
        pb.enqueue(0, 1, epoch_ts=1)
        pb.enqueue(64, 2, epoch_ts=2)
        engine.run()
        assert [e.issued_early for e in sent] == [False, True]
        assert stats.get("totSpecWrites", scope="c0") == 1


class TestBlockedAccounting:
    def test_blocked_cycles_recorded(self, engine, stats):
        """A waiting entry whose epoch is unsafe counts as blocked time."""
        safe = set()
        pb = PersistBuffer(engine, 8, 1, stats, "c0", 0)
        pb.select_entry = make_conservative_policy(lambda ts: ts in safe)
        pb.send_flush = lambda e: None
        pb.enqueue(0, 1, epoch_ts=2)  # unsafe -> blocked from now on
        engine.schedule(100, lambda: (safe.add(2), pb.reassess()))
        engine.run()
        assert stats.get("cyclesBlocked", scope="c0") == 100

    def test_no_blocked_time_when_flushing(self, engine, stats):
        pb = PersistBuffer(engine, 8, 1, stats, "c0", 0)
        pb.select_entry = select_fifo_any
        pb.send_flush = lambda e: None
        pb.enqueue(0, 1, 1)
        engine.run()
        pb.finish(engine.now)
        assert stats.get("cyclesBlocked", scope="c0") == 0

    def test_finish_closes_open_interval(self, engine, stats):
        pb = PersistBuffer(engine, 8, 1, stats, "c0", 0)
        pb.select_entry = make_conservative_policy(lambda ts: False)
        pb.enqueue(0, 1, epoch_ts=1)
        engine.schedule(50, lambda: None)
        engine.run()
        pb.finish(engine.now)
        assert stats.get("cyclesBlocked", scope="c0") == 50


class TestOccupancyStat:
    def test_occupancy_histogram(self, engine, pb, stats):
        pb.enqueue(0, 1, 1)
        pb.enqueue(64, 2, 1)
        engine.schedule(100, lambda: None)
        engine.run()
        pb.finish(engine.now)
        assert pb.occupancy_stat().max_observed() == 2
