"""Tests for the Vorpal-style comparator model."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.crash import run_and_crash
from repro.core.machine import Machine
from repro.core.vorpal import VorpalCoordinator
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.verify import check_consistency
from repro.workloads import get_workload, run_workload

from tests.conftest import locked_pair, make_machine, simple_writer


class TestCoordinator:
    def test_epoch_tags_registered(self, engine, stats):
        coordinator = VorpalCoordinator(engine, 2, stats)
        coordinator.register_epoch(0, 1, (1, 0))
        assert coordinator.vc_of(0, 1) == (1, 0)

    def test_unknown_epoch_depends_on_nothing(self, engine, stats):
        coordinator = VorpalCoordinator(engine, 2, stats)
        assert coordinator.vc_of(1, 99) == (0, 0)

    def test_tag_cost_accounted(self, engine, stats):
        coordinator = VorpalCoordinator(engine, 4, stats)
        coordinator.register_epoch(0, 1, (1, 0, 0, 0))
        assert stats.total("vorpal_tag_bits") == 4 * 32


class TestVorpalRuns:
    def test_single_writer_completes(self):
        machine = make_machine(HardwareModel.VORPAL, num_cores=1)
        heap = PMAllocator()
        result = machine.run([simple_writer(heap)])
        assert result.runtime_cycles > 0
        assert result.stats.total("vorpal_broadcasts") > 0

    def test_cross_thread_workload_completes(self):
        machine = make_machine(HardwareModel.VORPAL, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=8))
        assert result.stats.total("interTEpochConflict") > 0
        assert all(path.is_drained() for path in machine.paths)

    @pytest.mark.parametrize("workload", ["cceh", "queue", "nstore"])
    def test_suite_workloads_run(self, workload):
        result = run_workload(
            get_workload(workload, ops_per_thread=15),
            MachineConfig(num_cores=4),
            RunConfig(hardware=HardwareModel.VORPAL),
        )
        assert result.runtime_cycles > 0

    def test_writes_never_marked_early(self):
        machine = make_machine(HardwareModel.VORPAL, num_cores=1)
        heap = PMAllocator()
        result = machine.run([simple_writer(heap)])
        assert result.stats.total("totSpecWrites") == 0
        assert result.stats.total("totalUndo") == 0

    def test_broadcast_period_paces_progress(self):
        """Slower broadcasts make ordering-bound work slower -- the
        paper's Section III criticism, measured."""
        runtimes = {}
        for period in (50, 800):
            config = MachineConfig(
                num_cores=2, vorpal_broadcast_cycles=period
            )
            machine = Machine(config, RunConfig(hardware=HardwareModel.VORPAL))
            heap = PMAllocator()
            workload = get_workload("bandwidth", ops_per_thread=60)
            result = machine.run(workload.programs(heap, 2))
            runtimes[period] = result.drain_cycles
        assert runtimes[800] > runtimes[50]

    def test_ordering_queues_drain(self):
        machine = make_machine(HardwareModel.VORPAL, num_cores=2)
        heap = PMAllocator()
        machine.run(locked_pair(heap, iters=6))
        assert machine.vorpal.pending_writes() == 0


class TestVorpalCrashConsistency:
    def test_crashes_recover_consistently(self):
        """Ordering queues are outside the persistence domain: a crash
        discards them, and what was released was ordering-safe."""
        for crash_cycle in range(100, 12_000, 211):
            heap = PMAllocator()
            state = run_and_crash(
                MachineConfig(num_cores=2),
                RunConfig(hardware=HardwareModel.VORPAL),
                locked_pair(heap, iters=10),
                crash_cycle,
            )
            report = check_consistency(state.log, state.media)
            assert report.consistent, (crash_cycle, report.summary())

    def test_adversarial_jam_scenario_stays_consistent(self):
        """The scenario that breaks ASAP_NO_UNDO must not break Vorpal:
        its delays are the point."""
        from tests.property.test_crash_consistency import adversarial_workload

        for crash_cycle in range(50, 4000, 53):
            heap = PMAllocator()
            state = run_and_crash(
                MachineConfig(num_cores=2),
                RunConfig(
                    hardware=HardwareModel.VORPAL,
                    persistency=PersistencyModel.EPOCH,
                ),
                adversarial_workload(heap),
                crash_cycle,
            )
            report = check_consistency(state.log, state.media)
            assert report.consistent, (crash_cycle, report.summary())
