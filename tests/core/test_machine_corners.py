"""Corner-case coverage for the machine: evictions, WBB, bloom filter,
ET overflow, back-pressure chains, multi-MC routing."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import (
    CacheConfig,
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)

from tests.conftest import make_machine


class TestEvictionMachinery:
    def _tiny_cache_machine(self, hardware=HardwareModel.ASAP):
        """Caches small enough that workloads actually evict."""
        config = MachineConfig(
            num_cores=1,
            l1=CacheConfig(1024, 2, 1.0),
            l2=CacheConfig(4096, 2, 10.0),
            llc=CacheConfig(16 * 1024, 4, 30.0),
        )
        return Machine(config, RunConfig(hardware=hardware))

    def test_wbb_holds_evictions_of_buffered_lines(self):
        # Private caches smaller than the persist buffer plus HOPS's slow
        # conservative draining: dirty lines fall out of the caches while
        # their writes are still queued -- the Section V-F situation the
        # write-back buffer exists for.
        config = MachineConfig(
            num_cores=1,
            pb_entries=32,
            l1=CacheConfig(512, 2, 1.0),
            l2=CacheConfig(1024, 2, 10.0),
            llc=CacheConfig(16 * 1024, 4, 30.0),
        )
        machine = Machine(config, RunConfig(hardware=HardwareModel.HOPS))
        heap = PMAllocator()
        region = heap.alloc_lines(512)

        def program():
            for i in range(200):
                yield Store(region + i * 64, 8)
                yield OFence()  # one epoch per line: draining is slow
            yield DFence()

        result = machine.run([program()])
        assert result.stats.total("wbb_holds") > 0
        assert result.stats.total("wbb_released") > 0

    def test_demand_misses_counted(self):
        machine = self._tiny_cache_machine()
        heap = PMAllocator()
        region = heap.alloc_lines(512)

        def program():
            for i in range(300):
                yield Load(region + (i * 7 % 512) * 64, 8)
            yield DFence()

        result = machine.run([program()])
        assert result.stats.total("pm_demand_reads") > 0

    def test_bloom_filter_guards_llc_evictions_of_nacked_lines(self):
        config = MachineConfig(
            num_cores=1,
            rt_entries=1,  # NACK storm
            l1=CacheConfig(1024, 2, 1.0),
            l2=CacheConfig(4096, 2, 10.0),
            llc=CacheConfig(8 * 1024, 2, 30.0),
        )
        machine = Machine(config, RunConfig(hardware=HardwareModel.ASAP))
        heap = PMAllocator()
        region = heap.alloc_lines(512)

        def program():
            for i in range(200):
                yield Store(region + i * 64, 64)
                if i % 2 == 1:
                    yield OFence()
            yield DFence()

        result = machine.run([program()])
        assert result.stats.total("flushes_nacked") > 0
        # the NACKed lines were visible to the eviction guard
        # (the delayed-eviction count may be zero if timing never lined
        # up, but the machinery must at least have been exercised)
        assert result.stats.total("llc_evictions_delayed") >= 0


class TestBackPressure:
    def test_pb_full_stalls_core(self):
        config = MachineConfig(num_cores=1, pb_entries=2)
        machine = Machine(config, RunConfig(hardware=HardwareModel.ASAP))
        heap = PMAllocator()
        region = heap.alloc_lines(64)

        def program():
            for i in range(40):
                yield Store(region + i * 64, 64)
            yield DFence()

        result = machine.run([program()])
        assert result.stats.total("cyclesStalled") > 0

    def test_et_full_stalls_ofence(self):
        config = MachineConfig(num_cores=1, et_entries=2)
        machine = Machine(config, RunConfig(hardware=HardwareModel.HOPS))
        heap = PMAllocator()
        region = heap.alloc_lines(64)

        def program():
            for i in range(30):
                yield Store(region + i * 64, 64)
                yield OFence()
            yield DFence()

        result = machine.run([program()])
        assert result.stats.total("et_full_stalls") > 0

    def test_wpq_full_backpressures_acks(self):
        """A tiny WPQ forces admission waits; everything still drains."""
        config = MachineConfig(num_cores=2, wpq_entries=1)
        machine = Machine(config, RunConfig(hardware=HardwareModel.ASAP))
        heap = PMAllocator()
        regions = [heap.alloc_lines(64) for _ in range(2)]

        def program(region):
            for i in range(40):
                yield Store(region + i * 64, 64)
            yield DFence()

        result = machine.run([program(r) for r in regions])
        assert result.stats.total("pm_writes") == 80


class TestMultiMC:
    def test_writes_route_by_interleaving(self):
        machine = make_machine(HardwareModel.ASAP, num_cores=1)
        heap = PMAllocator()
        base = heap.alloc(4096, align=256)

        def program():
            for i in range(16):
                yield Store(base + i * 256, 64)
            yield DFence()

        result = machine.run([program()])
        assert result.stats.get("pm_writes", scope="mc0") == 8
        assert result.stats.get("pm_writes", scope="mc1") == 8

    def test_single_mc_machine(self):
        config = MachineConfig(num_cores=2, num_mcs=1)
        machine = Machine(config, RunConfig(hardware=HardwareModel.ASAP))
        heap = PMAllocator()
        region = heap.alloc_lines(32)

        def program():
            for i in range(16):
                yield Store(region + i * 64, 64)
                yield OFence()
            yield DFence()

        result = machine.run([program(), iter([Compute(10)])])
        assert result.stats.get("pm_writes", scope="mc0") == 16

    def test_four_mc_machine(self):
        config = MachineConfig(num_cores=2, num_mcs=4)
        machine = Machine(config, RunConfig(hardware=HardwareModel.ASAP))
        heap = PMAllocator()
        base = heap.alloc(8192, align=256)

        def program():
            for i in range(32):
                yield Store(base + i * 256, 64)
            yield DFence()

        result = machine.run([program(), iter(())])
        for mc in range(4):
            assert result.stats.get("pm_writes", scope=f"mc{mc}") == 8


class TestEPLoadDependences:
    def test_load_of_foreign_uncommitted_line_orders_reader(self):
        """Read-after-write across threads under EP: the reader's later
        writes must not outlive the writer's epoch."""
        machine = make_machine(
            HardwareModel.ASAP, PersistencyModel.EPOCH, num_cores=2
        )
        heap = PMAllocator()
        data = heap.alloc_lines(1)
        flag = heap.alloc_lines(1)

        def writer():
            yield Store(data, 8)
            yield Compute(3000)
            yield DFence()

        def reader():
            yield Compute(50)
            yield Load(data, 8)
            yield Store(flag, 8)
            yield DFence()

        result = machine.run([writer(), reader()])
        assert result.log.num_cross_deps() >= 1
        sources = {src for src, _dst in result.log.dep_edges}
        assert any(core == 0 for core, _ts in sources)

    def test_second_read_hits_cache_no_duplicate_dep(self):
        machine = make_machine(
            HardwareModel.ASAP, PersistencyModel.EPOCH, num_cores=2
        )
        heap = PMAllocator()
        data = heap.alloc_lines(1)

        def writer():
            yield Store(data, 8)
            yield Compute(3000)
            yield DFence()

        def reader():
            yield Compute(50)
            yield Load(data, 8)
            yield Load(data, 8)  # L1 hit: no second coherence request
            yield Load(data, 8)
            yield DFence()

        result = machine.run([writer(), reader()])
        assert result.log.num_cross_deps() <= 1
