"""Unit tests for the epoch dependency DAG (Lemma 0.1 / Theorem 1)."""

import pytest

from repro.core.epoch import EpochLog
from repro.verify.dag import EpochDag, build_dag

from repro.core.api import PMAllocator
from repro.sim.config import HardwareModel, PersistencyModel
from tests.conftest import locked_pair, make_machine


def make_log(max_ts, dep_edges=()):
    log = EpochLog()
    for core, ts in max_ts.items():
        log.record_write(core * 1000 + ts, line=core * 64, core=core, epoch_ts=ts)
    for src, dst in dep_edges:
        log.record_dep(src, dst)
    return log


class TestConstruction:
    def test_intra_thread_edges(self):
        dag = build_dag(make_log({0: 3}))
        assert (0, 1) in dag.nodes
        assert dag.successors[(0, 1)] == [(0, 2)]
        assert dag.successors[(0, 2)] == [(0, 3)]

    def test_cross_edges(self):
        dag = build_dag(make_log({0: 2, 1: 2}, [((0, 1), (1, 2))]))
        assert (1, 2) in dag.successors[(0, 1)]


class TestAcyclicity:
    def test_chain_is_acyclic(self):
        dag = build_dag(make_log({0: 5, 1: 5}, [((0, 2), (1, 3))]))
        assert dag.is_acyclic()

    def test_forced_cycle_detected(self):
        # Hand-build a cyclic graph (the hardware can never produce one).
        dag = EpochDag(
            nodes={(0, 1), (1, 1)},
            successors={(0, 1): [(1, 1)], (1, 1): [(0, 1)]},
        )
        assert not dag.is_acyclic()
        with pytest.raises(ValueError):
            dag.topological_order()

    def test_cross_edges_with_epoch_splits_stay_acyclic(self):
        """The paper's Lemma 0.1: both sides open new epochs, so even
        mutual dependencies between two threads cannot form a cycle."""
        dag = build_dag(
            make_log(
                {0: 4, 1: 4},
                [((0, 1), (1, 2)), ((1, 2), (0, 3)), ((0, 3), (1, 4))],
            )
        )
        assert dag.is_acyclic()


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        dag = build_dag(make_log({0: 3, 1: 3}, [((0, 2), (1, 1))]))
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node, succs in dag.successors.items():
            for succ in succs:
                assert position[node] < position[succ]

    def test_order_covers_every_epoch(self):
        dag = build_dag(make_log({0: 4, 1: 2}))
        assert len(dag.topological_order()) == 6


class TestDescendants:
    def test_descendants_strict(self):
        dag = build_dag(make_log({0: 3}))
        desc = dag.descendants([(0, 1)])
        assert desc == {(0, 2), (0, 3)}

    def test_descendants_follow_cross_edges(self):
        dag = build_dag(make_log({0: 2, 1: 3}, [((0, 1), (1, 2))]))
        desc = dag.descendants([(0, 1)])
        assert (1, 2) in desc and (1, 3) in desc

    def test_descendants_of_sink_empty(self):
        dag = build_dag(make_log({0: 2}))
        assert dag.descendants([(0, 2)]) == set()


class TestOnRealRuns:
    """Machine-checked Lemma 0.1 on actual simulations."""

    @pytest.mark.parametrize("persistency", list(PersistencyModel))
    def test_real_run_produces_dag(self, persistency):
        machine = make_machine(HardwareModel.ASAP, persistency, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=8))
        dag = build_dag(result.log)
        assert dag.is_acyclic()
        assert dag.topological_order()  # Theorem 1's witness exists

    def test_hops_run_produces_dag(self):
        machine = make_machine(HardwareModel.HOPS, num_cores=2)
        heap = PMAllocator()
        result = machine.run(locked_pair(heap, iters=8))
        assert build_dag(result.log).is_acyclic()
