"""Unit tests for the recovery-consistency checker (Theorem 2)."""

from repro.core.epoch import EpochLog
from repro.verify.consistency import check_consistency


def log_with(writes, deps=()):
    """writes: list of (write_id, line, core, ts)."""
    log = EpochLog()
    for write_id, line, core, ts in writes:
        log.record_write(write_id, line, core, ts)
    for src, dst in deps:
        log.record_dep(src, dst)
    return log


class TestConsistentImages:
    def test_everything_durable(self):
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 2)])
        report = check_consistency(log, {0: 1, 64: 2})
        assert report.consistent
        assert report.damaged == set()

    def test_everything_lost(self):
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 2)])
        report = check_consistency(log, {})
        assert report.consistent  # losing a whole suffix is fine
        assert report.survivors == set()

    def test_prefix_survives(self):
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 2)])
        report = check_consistency(log, {0: 1})
        assert report.consistent
        assert (0, 2) in report.damaged

    def test_partial_epoch_is_legal(self):
        """Epoch persistency gives ordering, not atomicity: losing one
        write of an epoch while another survives is fine."""
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 1)])
        report = check_consistency(log, {0: 1})
        assert report.consistent

    def test_overwritten_writes_are_absorbed_not_lost(self):
        log = log_with([(1, 0, 0, 1), (2, 0, 0, 2)])
        # Only the newest value survives; write 1 was overwritten, which
        # does not damage epoch 1.
        report = check_consistency(log, {0: 2})
        assert report.consistent
        assert report.damaged == set()


class TestViolations:
    def test_lost_predecessor_with_surviving_successor(self):
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 2)])
        report = check_consistency(log, {64: 2})  # epoch 2 survived, 1 lost
        assert not report.consistent
        violation = report.violations[0]
        assert violation.damaged_epoch == (0, 1)
        assert violation.survivor_epoch == (0, 2)
        assert "lost write 1" in violation.describe()

    def test_cross_thread_violation(self):
        log = log_with(
            [(1, 0, 0, 1), (2, 64, 1, 2)],
            deps=[((0, 1), (1, 2))],
        )
        report = check_consistency(log, {64: 2})
        assert not report.consistent

    def test_cross_thread_without_edge_is_legal(self):
        """No ordering was promised between unrelated threads."""
        log = log_with([(1, 0, 0, 1), (2, 64, 1, 2)])
        report = check_consistency(log, {64: 2})
        assert report.consistent

    def test_transitive_violation(self):
        log = log_with(
            [(1, 0, 0, 1), (2, 64, 1, 2), (3, 128, 2, 3)],
            deps=[((0, 1), (1, 2)), ((1, 2), (2, 3))],
        )
        # epoch (0,1) lost, epoch (2,3) survived two hops downstream.
        report = check_consistency(log, {128: 3})
        assert not report.consistent

    def test_unknown_recovered_value_flagged(self):
        log = log_with([(1, 0, 0, 1)])
        report = check_consistency(log, {0: 999})
        assert not report.consistent
        assert report.unknown_values == [(0, 999)]

    def test_old_value_resurrection_is_a_violation(self):
        """Memory holding write 1 after write 2 (same thread, later epoch)
        was made durable means epoch 2 'survived' while epoch 3's write to
        the same line was lost -- the stale-value bug ASAP's delay records
        exist to prevent (Figure 5)."""
        log = log_with([(1, 0, 0, 1), (2, 0, 0, 2), (3, 64, 0, 3)])
        report = check_consistency(log, {0: 1, 64: 3})
        assert not report.consistent


class TestEdgeCases:
    def test_empty_log_and_media_is_consistent(self):
        report = check_consistency(EpochLog(), {})
        assert report.consistent
        assert report.damaged == set()
        assert report.survivors == set()

    def test_media_lines_outside_the_log_are_ignored(self):
        # recovery only adjudicates lines the log knows about; a line
        # never written during the run carries no ordering obligation.
        report = check_consistency(EpochLog(), {64: 9})
        assert report.consistent
        assert report.unknown_values == []

    def test_single_unflushed_store_is_consistent(self):
        # one write, nothing durable: the whole run is the lost suffix.
        log = log_with([(1, 0, 0, 1)])
        report = check_consistency(log, {})
        assert report.consistent
        assert (0, 1) in report.damaged
        assert report.survivors == set()

    def test_single_flushed_store_is_consistent(self):
        log = log_with([(1, 0, 0, 1)])
        report = check_consistency(log, {0: 1})
        assert report.consistent
        assert report.damaged == set()

    def test_same_epoch_same_line_older_value_is_a_legal_prefix(self):
        # epoch persistency orders epochs, not writes within one: the
        # older same-line value is a legal per-line persist prefix
        # (contrast test_old_value_resurrection_is_a_violation, where an
        # epoch boundary between the writes makes it a bug).
        log = log_with([(1, 0, 0, 1), (2, 0, 0, 1)])
        report = check_consistency(log, {0: 1})
        assert report.consistent


class TestReporting:
    def test_summary_mentions_counts(self):
        log = log_with([(1, 0, 0, 1), (2, 64, 0, 2)])
        good = check_consistency(log, {0: 1, 64: 2})
        assert "consistent" in good.summary()
        bad = check_consistency(log, {64: 2})
        assert "INCONSISTENT" in bad.summary()

    def test_multiple_survivors_reported(self):
        log = log_with(
            [(1, 0, 0, 1), (2, 64, 0, 2), (3, 128, 0, 3)],
        )
        report = check_consistency(log, {64: 2, 128: 3})  # epoch 1 lost
        assert len(report.violations) == 2
