"""Differential testing of the consistency checker against brute force.

The checker decides consistency by tainting descendants of damaged
epochs.  The brute-force oracle here re-derives the same verdict from
first principles: enumerate every ordered epoch pair (A precedes B via
any DAG path) and flag any pair where A lost a write while B owns a
surviving line value.  Hypothesis feeds both with random small logs and
crash images; the verdicts must agree exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.epoch import EpochLog
from repro.verify.consistency import check_consistency
from repro.verify.dag import build_dag


def brute_force_consistent(log: EpochLog, media) -> bool:
    dag = build_dag(log)
    # full reachability, computed independently per node
    reach = {
        node: dag.descendants([node]) for node in dag.nodes
    }
    # classify writes per line
    damaged, survivors = set(), set()
    for line, order in log.line_order.items():
        recovered = media.get(line, 0)
        if recovered == 0:
            cut = 0
        else:
            if recovered not in order:
                return False  # unknown value: inconsistent by definition
            cut = order.index(recovered) + 1
            survivors.add(log.epoch_of_write(recovered))
        for write_id in order[cut:]:
            damaged.add(log.epoch_of_write(write_id))
    for a in damaged:
        for b in survivors:
            if b in reach.get(a, set()):
                return False
    return True


@st.composite
def random_scenario(draw):
    """A small random epoch log plus a random crash image."""
    num_cores = draw(st.integers(1, 3))
    writes_per_core = draw(st.integers(1, 6))
    log = EpochLog()
    write_id = 0
    lines = [64 * i for i in range(4)]
    for core in range(num_cores):
        ts = 1
        for _ in range(writes_per_core):
            write_id += 1
            line = draw(st.sampled_from(lines))
            log.record_write(write_id, line, core, ts)
            if draw(st.booleans()):
                ts += 1
    # random cross deps (forward in write-id order keeps them plausible;
    # the DAG builder tolerates anything acyclic)
    for _ in range(draw(st.integers(0, 3))):
        src_core = draw(st.integers(0, num_cores - 1))
        dst_core = draw(st.integers(0, num_cores - 1))
        if src_core == dst_core:
            continue
        src_ts = draw(st.integers(1, max(1, log.max_ts.get(src_core, 1))))
        dst_ts = draw(st.integers(1, max(1, log.max_ts.get(dst_core, 1))))
        log.record_dep((src_core, src_ts), (dst_core, dst_ts))
    # random media: for each written line pick one of its writes or 0
    media = {}
    for line, order in log.line_order.items():
        choice = draw(st.integers(0, len(order)))
        if choice > 0:
            media[line] = order[choice - 1]
    return log, media


class TestCheckerAgainstBruteForce:
    @given(scenario=random_scenario())
    @settings(max_examples=300, deadline=None)
    def test_verdicts_agree(self, scenario):
        log, media = scenario
        dag = build_dag(log)
        if not dag.is_acyclic():
            return  # random deps occasionally make cycles; out of scope
        report = check_consistency(log, media)
        assert report.consistent == brute_force_consistent(log, media)

    def test_known_violation_agrees(self):
        log = EpochLog()
        log.record_write(1, 0, 0, 1)
        log.record_write(2, 64, 0, 2)
        media = {64: 2}  # epoch 2 survived, epoch 1 lost
        assert not brute_force_consistent(log, media)
        assert not check_consistency(log, media).consistent

    def test_known_good_agrees(self):
        log = EpochLog()
        log.record_write(1, 0, 0, 1)
        log.record_write(2, 64, 0, 2)
        media = {0: 1}
        assert brute_force_consistent(log, media)
        assert check_consistency(log, media).consistent
