"""Exhaustive small-scope model checking of the controller protocol.

The property tests sample crash instants; this module *enumerates* them.
For small scenarios -- a handful of writes to one cache line, spread over
epochs with a dependence DAG -- it explores **every interleaving** of

- write arrivals at the controller (any order: that is precisely the
  reorder freedom eager flushing creates), each tagged early/safe by the
  protocol's own rule (safe iff the epoch's predecessors have committed
  and the epoch's own earlier writes have arrived);
- epoch commits (eligible once the epoch is safe and fully arrived);

and, **at every reachable state**, simulates the power-fail sequence
(WPQ-equivalent memory + undo unwinding, delay discard) and checks the
recovered value against epoch persistency's rule: the value is legal iff
no write newer than it (per-line order) belongs to an epoch that strictly
precedes the value's epoch in the DAG... more precisely, iff no *lost*
epoch is a strict ancestor of the *surviving* one.

The real :class:`repro.core.recovery_table.RecoveryTable` is the system
under test -- the explorer drives it exactly as a controller would
(Table I), so every undo/delay/commit rule is covered for every legal
history of the scenario, including Figure 5's write collision and the
same-epoch re-flush rule.
"""

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import pytest

from repro.core.recovery_table import RecoveryTable
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

Epoch = str  # epoch label


@dataclass(frozen=True)
class Scenario:
    """Writes to one line, per-line order = list order."""

    name: str
    #: (write_id, epoch) in per-line (volatile/coherence) order.
    writes: Tuple[Tuple[int, Epoch], ...]
    #: strict-precedence edges between epochs (DAG).
    edges: Tuple[Tuple[Epoch, Epoch], ...]

    def epochs(self) -> List[Epoch]:
        seen: List[Epoch] = []
        for _w, epoch in self.writes:
            if epoch not in seen:
                seen.append(epoch)
        for src, dst in self.edges:
            for epoch in (src, dst):
                if epoch not in seen:
                    seen.append(epoch)
        return seen

    def ancestors(self) -> Dict[Epoch, Set[Epoch]]:
        result: Dict[Epoch, Set[Epoch]] = {e: set() for e in self.epochs()}
        changed = True
        while changed:
            changed = False
            for src, dst in self.edges:
                new = result[dst] | {src} | result.get(src, set())
                if new != result[dst]:
                    result[dst] = new
                    changed = True
        return result


class _State:
    """One explorer state: the real RT plus abstract memory/ACK state."""

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.rt = RecoveryTable(
            Engine(), capacity=8, stats=StatsRegistry(), scope="x"
        )
        self.memory = 0  # durable value (WPQ folded in)
        self.arrived: Set[int] = set()
        self.committed: Set[Epoch] = set()
        self.trace: List[str] = []

    # -- protocol-side helpers ------------------------------------------

    def epoch_of(self, write_id: int) -> Epoch:
        for w, epoch in self.scenario.writes:
            if w == write_id:
                return epoch
        raise KeyError(write_id)

    def safe(self, epoch: Epoch) -> bool:
        ancestors = self.scenario.ancestors()[epoch]
        return ancestors <= self.committed

    def fully_arrived(self, epoch: Epoch) -> bool:
        return all(
            w in self.arrived
            for w, e in self.scenario.writes
            if e == epoch
        )

    # -- actions ----------------------------------------------------------

    def available_actions(self) -> List[Tuple[str, object]]:
        actions: List[Tuple[str, object]] = []
        for w, epoch in self.scenario.writes:
            if w in self.arrived:
                continue
            # Same-address order within an epoch is preserved by the
            # persist buffer (see make_eager_policy), so a write may only
            # arrive after its same-epoch per-line predecessors.
            predecessors_arrived = all(
                w2 in self.arrived
                for w2, e2 in self.scenario.writes
                if e2 == epoch and w2 < w
            )
            if predecessors_arrived:
                actions.append(("arrive", w))
        for epoch in self.scenario.epochs():
            if (
                epoch not in self.committed
                and self.safe(epoch)
                and self.fully_arrived(epoch)
            ):
                actions.append(("commit", epoch))
        return actions

    def apply(self, action: Tuple[str, object]) -> None:
        kind, arg = action
        if kind == "arrive":
            self._arrive(arg)
        else:
            self._commit(arg)
        self.trace.append(f"{kind}({arg})")

    def _arrive(self, write_id: int) -> None:
        epoch = self.epoch_of(write_id)
        early = not self.safe(epoch)
        core, ts = 0, self._ts(epoch)
        line = 0
        # mirror the controller: a flush supersedes its own epoch's
        # earlier delayed value on the line
        self.rt.supersede_delay(line, core, ts)
        owner = self.rt.undo_owner(line)
        if owner == (core, ts):
            # same-epoch re-flush: update memory, leave the record alone
            self.memory = write_id
        elif early:
            if self.rt.has_undo(line):
                assert self.rt.add_delay(line, write_id, core, ts)
            else:
                assert self.rt.create_undo(line, self.memory, core, ts)
                self.memory = write_id
        else:
            if self.rt.has_undo(line):
                self.rt.update_undo(line, write_id)
            else:
                self.memory = write_id
        self.arrived.add(write_id)

    def _commit(self, epoch: Epoch) -> None:
        released = self.rt.process_commit(0, self._ts(epoch))
        for _line, write_id in released:
            self.memory = write_id
        self.committed.add(epoch)

    def _ts(self, epoch: Epoch) -> int:
        return self.scenario.epochs().index(epoch) + 1

    # -- the crash check ----------------------------------------------------

    def crash_value(self) -> int:
        value = self.memory
        for _line, safe_value in self.rt.undo_records():
            value = safe_value
        return value

    def crash_is_legal(self) -> bool:
        recovered = self.crash_value()
        order = [w for w, _e in self.scenario.writes]
        if recovered == 0:
            lost = order
            survivor: Optional[Epoch] = None
        else:
            cut = order.index(recovered) + 1
            lost = order[cut:]
            survivor = self.epoch_of(recovered)
        if survivor is None:
            return True
        ancestors = self.scenario.ancestors()[survivor]
        return not any(self.epoch_of(w) in ancestors for w in lost)

    def clone(self) -> "_State":
        import copy

        return copy.deepcopy(self)


def explore(scenario: Scenario) -> Tuple[int, int]:
    """DFS over every interleaving; crash-check every state.

    Returns (states explored, terminal states).  Raises AssertionError
    with the violating trace on any illegal crash state.
    """
    # Scenario validity: conflicting writes must be epoch-ordered (strong
    # persist atomicity) -- later per-line writes' epochs must descend
    # from (or equal) earlier ones.
    ancestors = scenario.ancestors()
    for (w_a, e_a), (w_b, e_b) in itertools.combinations(scenario.writes, 2):
        assert e_a == e_b or e_a in ancestors[e_b], (
            f"{scenario.name}: writes {w_a}/{w_b} conflict but epochs "
            f"{e_a}/{e_b} are unordered -- illegal under strong persist "
            "atomicity"
        )
    states = 0
    terminals = 0
    stack = [_State(scenario)]
    while stack:
        state = stack.pop()
        states += 1
        assert state.crash_is_legal(), (
            f"{scenario.name}: crash after {state.trace} recovers "
            f"{state.crash_value()} (memory={state.memory}, "
            f"undo={state.rt.undo_records()})"
        )
        actions = state.available_actions()
        if not actions:
            terminals += 1
            # a finished history is fully durable: newest value on media
            assert state.crash_value() == scenario.writes[-1][0], (
                f"{scenario.name}: terminal state lost data after "
                f"{state.trace}"
            )
            continue
        for action in actions:
            successor = state.clone()
            successor.apply(action)
            stack.append(successor)
    return states, terminals


SCENARIOS = [
    Scenario(
        name="figure5_write_collision",
        # A=1 (T1/E1), A=2 (T2/E2), A=3 (T3/E3); lock-chained epochs.
        writes=((1, "E1"), (2, "E2"), (3, "E3")),
        edges=(("E1", "E2"), ("E2", "E3")),
    ),
    Scenario(
        name="single_thread_chain",
        writes=((1, "A"), (2, "B"), (3, "C")),
        edges=(("A", "B"), ("B", "C")),
    ),
    Scenario(
        name="same_epoch_reflush",
        # two writes of one epoch to the line, then a successor epoch
        writes=((1, "A"), (2, "A"), (3, "B")),
        edges=(("A", "B"),),
    ),
    Scenario(
        name="delayed_then_direct_same_epoch",
        # the successor epoch writes the line twice: its first write can
        # be delayed behind A's undo record, its second can arrive after
        # A's commit freed the line -- the stale delayed value must not
        # resurrect at B's commit.
        writes=((1, "A"), (2, "B"), (3, "B")),
        edges=(("A", "B"),),
    ),
    # NOTE: there is deliberately no "unordered epochs, same line"
    # scenario: conflicting writes are always DAG-ordered (strong persist
    # atomicity) -- the machine enforces it across threads (coherence
    # dependences) and across strands (cross-strand conflict ordering),
    # and release persistency excludes the racy remainder by contract.
    # ``explore`` validates the constraint on every scenario.
    Scenario(
        name="cross_edge_only",
        # E2 ordered after E1 purely by a cross-thread edge
        writes=((1, "E1"), (2, "E2")),
        edges=(("E1", "E2"),),
    ),
    Scenario(
        name="diamond",
        # A -> {B, C} -> D: the line is written on the ordered spine
        # (A, B, D); C is a write-free epoch on the other branch whose
        # commit still gates D's safety.
        writes=((1, "A"), (2, "B"), (4, "D")),
        edges=(("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")),
    ),
    Scenario(
        name="four_deep_chain",
        writes=((1, "A"), (2, "B"), (3, "C"), (4, "D")),
        edges=(("A", "B"), ("B", "C"), ("C", "D")),
    ),
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_exhaustive_protocol_exploration(scenario):
    states, terminals = explore(scenario)
    # sanity: the exploration actually covered a meaningful space
    assert states > 10
    assert terminals >= 1


def test_state_space_sizes_are_exhaustive():
    """The explorer must visit at least every arrival permutation."""
    import math

    scenario = SCENARIOS[0]
    states, _ = explore(scenario)
    assert states >= math.factorial(len(scenario.writes))


def test_figure5_specific_interleaving():
    """Walk the paper's exact Figure 5 sequence through the explorer's
    state object and check each intermediate crash value."""
    scenario = SCENARIOS[0]
    state = _State(scenario)
    state.apply(("arrive", 3))  # A=3 arrives first (early): undo(A=0)
    assert state.crash_value() == 0
    state.apply(("arrive", 2))  # A=2 arrives early: delay record
    assert state.crash_value() == 0
    state.apply(("arrive", 1))  # A=1 (E1 safe): folded into the undo
    assert state.crash_value() == 1
    state.apply(("commit", "E1"))
    state.apply(("commit", "E2"))  # delay(A=2) folds into the undo
    assert state.crash_value() == 2
    state.apply(("commit", "E3"))  # undo dropped: A=3 durable
    assert state.crash_value() == 3
