"""Unit tests for the ``repro.bench`` perf harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchRecord,
    BenchResult,
    compare_records,
    machine_fingerprint,
    parse_max_regress,
    run_case,
)
from repro.bench.micro import (
    bench_epoch_table_lookup,
    bench_event_queue,
    bench_pb_drain,
    bench_wpq_insert_evict,
)
from repro.bench.suites import SUITES, BenchCase, suite_cases
from repro.cli import main


@pytest.mark.parametrize("bench,n", [
    (bench_event_queue, 2000),
    (bench_pb_drain, 500),
    (bench_wpq_insert_evict, 2000),
    (bench_epoch_table_lookup, 2000),
])
def test_micro_benches_run_and_are_deterministic(bench, n):
    ops1, events1 = bench(n)
    ops2, events2 = bench(n)
    assert ops1 == ops2 == n
    assert events1 == events2 > 0


def test_suite_registry_covers_all_names():
    for suite in SUITES:
        cases = suite_cases(suite)
        assert cases, suite
        names = [case.name for case in cases]
        assert len(names) == len(set(names)), f"duplicate names in {suite}"
    with pytest.raises(KeyError):
        suite_cases("nope")


def test_run_case_produces_throughput():
    case = BenchCase(name="micro/tiny", run=lambda: bench_event_queue(1000))
    result = run_case(case, reps=2)
    assert result.name == "micro/tiny"
    assert result.suite == "micro"
    assert result.ops == 1000
    assert result.wall_s > 0
    assert result.ops_per_sec > 0
    assert result.reps == 2


def _result(name, ops_per_sec, events=1):
    return BenchResult(name=name, suite=name.split("/", 1)[0], ops=100,
                       wall_s=100 / ops_per_sec, ops_per_sec=ops_per_sec,
                       events=events, peak_rss_kb=1, reps=1)


def _record(results):
    return BenchRecord(suite="test", results=results, created="2026-01-01",
                       git_sha="abc", machine=machine_fingerprint())


def test_record_round_trip(tmp_path):
    record = _record([_result("micro/a", 1000.0)])
    path = tmp_path / "BENCH_test.json"
    record.save(str(path))
    loaded = BenchRecord.load(str(path))
    assert loaded.suite == record.suite
    assert loaded.git_sha == "abc"
    assert loaded.results[0].name == "micro/a"
    assert loaded.results[0].ops_per_sec == 1000.0
    # the on-disk form is plain JSON with a schema field
    data = json.loads(path.read_text())
    assert data["schema"] == 1


def test_parse_max_regress():
    assert parse_max_regress("10%") == pytest.approx(0.10)
    assert parse_max_regress("0.25") == pytest.approx(0.25)
    assert parse_max_regress(" 5% ") == pytest.approx(0.05)
    with pytest.raises(ValueError):
        parse_max_regress("150%")
    with pytest.raises(ValueError):
        parse_max_regress("-1%")


def test_compare_gate_passes_within_budget():
    base = _record([_result("micro/a", 1000.0), _result("micro/b", 500.0)])
    new = _record([_result("micro/a", 950.0), _result("micro/b", 520.0)])
    comparison = compare_records(base, new, max_regress=0.10)
    assert comparison.ok
    assert not comparison.regressions
    assert comparison.geomean == pytest.approx(
        ((950 / 1000) * (520 / 500)) ** 0.5
    )


def test_compare_gate_fails_on_regression():
    base = _record([_result("micro/a", 1000.0)])
    new = _record([_result("micro/a", 800.0)])
    comparison = compare_records(base, new, max_regress=0.10)
    assert not comparison.ok
    assert [d.name for d in comparison.regressions] == ["micro/a"]
    assert "REGRESSION" in comparison.render()
    assert "FAIL" in comparison.render()


def test_compare_tracks_membership_and_events():
    base = _record([_result("micro/a", 1000.0, events=5),
                    _result("micro/gone", 10.0)])
    new = _record([_result("micro/a", 1000.0, events=6),
                   _result("micro/new", 10.0)])
    comparison = compare_records(base, new)
    assert comparison.only_base == ["micro/gone"]
    assert comparison.only_new == ["micro/new"]
    assert not comparison.deltas[0].events_match
    assert "events differ" in comparison.render()


def test_cli_compare_exit_codes(tmp_path, capsys):
    base = _record([_result("micro/a", 1000.0)])
    new_ok = _record([_result("micro/a", 990.0)])
    new_bad = _record([_result("micro/a", 500.0)])
    base_path = tmp_path / "base.json"
    ok_path = tmp_path / "ok.json"
    bad_path = tmp_path / "bad.json"
    base.save(str(base_path))
    new_ok.save(str(ok_path))
    new_bad.save(str(bad_path))

    assert main(["bench", "--compare", str(base_path), str(ok_path)]) == 0
    assert "PASS" in capsys.readouterr().out
    assert main(["bench", "--compare", str(base_path), str(bad_path),
                 "--max-regress", "10%"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_bench_runs_micro_suite(tmp_path, capsys, monkeypatch):
    # shrink the micro suite so the CLI path stays fast in tier-1
    import repro.bench.suites as suites_mod

    monkeypatch.setattr(
        suites_mod, "suite_cases",
        lambda suite: [BenchCase(name="micro/tiny",
                                 run=lambda: bench_event_queue(500))],
    )
    out = tmp_path / "BENCH_cli.json"
    assert main(["bench", "--suite", "micro", "--reps", "1",
                 "--out", str(out)]) == 0
    record = BenchRecord.load(str(out))
    assert record.results[0].name == "micro/tiny"
    assert record.git_sha
    assert record.machine["python"]
