"""Event-delivery-order guarantees of the tuple-heap engine.

The engine's contract: events fire in ``(time, schedule order)`` -- two
events at the same cycle run in the order they were scheduled, no matter
how they interleave with events at other cycles in the heap.  The
optimization that replaced rich comparable events with ``(time, seq,
event)`` tuples must preserve this exactly; these properties pin it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1,
                max_size=64))
@settings(max_examples=100, deadline=None)
def test_same_cycle_events_fire_in_schedule_order(delays):
    """Delivery order == stable sort of schedule order by firing time."""
    engine = Engine()
    fired = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, lambda index=index: fired.append(index))
    engine.run()
    # sorted() is stable: ties on time keep insertion (schedule) order,
    # which is exactly the engine's FIFO-within-a-cycle contract.
    expected = [
        index for index, _ in sorted(enumerate(delays), key=lambda p: p[1])
    ]
    assert fired == expected


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=4),
                          st.booleans()),
                min_size=1, max_size=32))
@settings(max_examples=100, deadline=None)
def test_nested_zero_delay_children_fifo(items):
    """Zero-delay children run after already-queued same-cycle events.

    Each scheduled event may itself schedule a child at delay 0; the
    child lands at the same cycle but with a later sequence number, so
    every parent at that cycle fires before any of their children --
    and children fire in their parents' order.
    """
    engine = Engine()
    fired = []

    def make_parent(index, spawn_child):
        def parent():
            fired.append(("p", index))
            if spawn_child:
                engine.schedule(0, lambda: fired.append(("c", index)))
        return parent

    for index, (delay, spawn_child) in enumerate(items):
        engine.schedule(delay, make_parent(index, spawn_child))
    engine.run()

    by_time = {}
    for index, (delay, _) in enumerate(items):
        by_time.setdefault(delay, []).append(index)
    expected = []
    for time in sorted(by_time):
        parents = by_time[time]
        expected.extend(("p", i) for i in parents)
        expected.extend(("c", i) for i in parents if items[i][1])
    assert fired == expected


def test_cancelled_event_skipped_without_disturbing_order():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda: fired.append("a"))
    handle = engine.schedule(5, lambda: fired.append("cancelled"))
    engine.schedule(5, lambda: fired.append("b"))
    handle.cancel()
    engine.run()
    assert fired == ["a", "b"]
    assert engine.events_executed == 2
