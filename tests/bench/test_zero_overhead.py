"""The obs zero-overhead-when-off contract, enforced.

Components hold an optional tracer and must guard every emission (and
every eager construction of emission arguments) behind a single
``tracer is not None`` check.  The strongest observable form of that
contract: an *untraced* run constructs zero :class:`repro.obs.events.Event`
objects.  A traced run of the same cell constructs plenty -- which also
proves the instrumentation in this test actually counts.
"""

from __future__ import annotations

import pytest

from repro.exp import RunSpec
from repro.obs import events as events_mod


@pytest.fixture
def event_counter(monkeypatch):
    """Count every ``Event`` construction for the duration of a test.

    Hooks ``__init__`` (which the dataclass defines in its class dict, so
    monkeypatch restores it exactly), not ``__new__``: ``Event`` inherits
    ``object.__new__``, and any write to ``Event.__new__`` irreversibly
    replaces the C-level ``tp_new`` slot with a Python dispatcher, after
    which ``object.__new__`` rejects the dataclass's constructor
    arguments for every later ``Event(...)`` in the process.
    """
    created = []
    original_init = events_mod.Event.__init__

    def counting_init(self, *args, **kwargs):
        created.append(1)
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(events_mod.Event, "__init__", counting_init)
    return created


@pytest.mark.parametrize("model", ["baseline", "asap_rp"])
def test_untraced_run_allocates_no_events(event_counter, model):
    spec = RunSpec("bandwidth", model, ops_per_thread=24, num_threads=2,
                   seed=7)
    spec.execute()
    assert len(event_counter) == 0, (
        f"untraced run allocated {len(event_counter)} obs Event objects; "
        "some component emits (or builds emit arguments) without a "
        "'tracer is not None' guard"
    )


def test_traced_run_does_allocate_events(event_counter):
    """Sanity check: the counting hook sees traced-run allocations."""
    spec = RunSpec("bandwidth", "asap_rp", ops_per_thread=24, num_threads=2,
                   seed=7, events=True)
    spec.execute()
    assert len(event_counter) > 0
