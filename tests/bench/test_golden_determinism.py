"""Byte-identity of the simulator's observable output.

The optimization passes over the simulator (engine, machine dispatch,
persist buffer, WPQ, caches) must be *pure* performance changes: the
stats file and the JSONL event stream of every pinned run must stay
byte-for-byte identical to the committed goldens.  A legitimate
semantic change regenerates the corpus with
``PYTHONPATH=src python scripts/gen_bench_golden.py`` -- and says so in
the PR.
"""

from __future__ import annotations

import io
import json
import pathlib

import pytest

from repro.analysis.statsfile import format_stats
from repro.exp import RunSpec
from repro.obs import JSONLSink
from repro.sim.config import MachineConfig
from repro.workloads.base import run_workload

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

RP_MODEL_NAMES = ("baseline", "hops_rp", "asap_rp", "eadr")
TRACED_CELLS = (
    ("bandwidth", 2, 24),
    ("queue", 2, 24),
)
FINGERPRINT_WORKLOADS = (
    "bandwidth", "fence_latency", "coalescing",
    "nstore", "queue", "cceh", "echo", "heap",
)
FINGERPRINT_OPS = 16
FINGERPRINT_THREADS = 4
SEED = 7


def _traced_cell(workload: str, model: str, threads: int, ops: int):
    spec = RunSpec(workload, model, ops_per_thread=ops,
                   num_threads=threads, seed=SEED,
                   machine=MachineConfig(num_cores=threads))
    buffer = io.StringIO()
    sink = JSONLSink(buffer)
    result = run_workload(
        spec.build_workload(), spec.machine, spec.run_config(),
        num_threads=threads, sinks=[sink],
    )
    sink.close()
    return format_stats(result.result), buffer.getvalue()


@pytest.mark.parametrize("workload,threads,ops", TRACED_CELLS)
@pytest.mark.parametrize("model", RP_MODEL_NAMES)
def test_stats_and_trace_byte_identical(workload, threads, ops, model):
    stats_path = GOLDEN_DIR / f"{workload}_{model}.stats.txt"
    events_path = GOLDEN_DIR / f"{workload}_{model}.events.jsonl"
    assert stats_path.exists(), (
        f"golden missing: {stats_path} "
        "(run scripts/gen_bench_golden.py and commit the corpus)"
    )
    stats_text, events_text = _traced_cell(workload, model, threads, ops)
    assert stats_text == stats_path.read_text(), (
        f"{workload}/{model}: stats.txt drifted from the golden -- either "
        "a perf change altered semantics (a bug) or an intentional change "
        "needs scripts/gen_bench_golden.py re-run"
    )
    assert events_text == events_path.read_text(), (
        f"{workload}/{model}: JSONL event stream drifted from the golden"
    )


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def test_grid_fingerprints_match_golden():
    golden = json.loads((GOLDEN_DIR / "grid_fingerprints.json").read_text())
    for workload in FINGERPRINT_WORKLOADS:
        for model in RP_MODEL_NAMES:
            spec = RunSpec(workload, model, ops_per_thread=FINGERPRINT_OPS,
                           num_threads=FINGERPRINT_THREADS, seed=SEED)
            got = [_jsonable(v) for v in spec.execute().fingerprint()]
            assert got == golden[f"{workload}/{model}"], (
                f"{workload}/{model}: result fingerprint drifted"
            )
