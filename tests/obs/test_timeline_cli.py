"""End-to-end test of ``repro timeline`` (the CI smoke path)."""

import json

from repro.cli import main


def test_timeline_writes_perfetto_loadable_trace(tmp_path, capsys):
    out = tmp_path / "timeline.json"
    events = tmp_path / "events.jsonl"
    rc = main([
        "timeline", "queue", "--model", "asap_rp",
        "--threads", "2", "--ops", "40",
        "--out", str(out), "--events", str(events),
    ])
    assert rc == 0

    doc = json.loads(out.read_text())
    body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert body, "trace must contain events"
    for entry in doc["traceEvents"]:
        assert {"ph", "ts", "pid", "tid"} <= set(entry)

    lines = events.read_text().splitlines()
    assert lines
    json.loads(lines[0])

    printed = capsys.readouterr().out
    assert str(out) in printed
    # the breakdown table renders with headers and a total row even for
    # stall-free runs
    assert "core:epoch" in printed
    assert "total" in printed


def test_timeline_default_model_and_no_jsonl(tmp_path, capsys):
    out = tmp_path / "t.json"
    rc = main(["timeline", "bandwidth", "--threads", "2", "--ops", "20",
               "--out", str(out)])
    assert rc == 0
    assert out.exists()
    assert "stall cycles" in capsys.readouterr().out
