"""Stall-cycle conservation: profiler attribution == registry counters.

The observability layer's core correctness claim is that it *attributes*
the stall cycles the simulator already counts, without inventing or
losing any.  Components emit ``STALL_END`` events at exactly the code
sites that increment the registry's stall counters, with the same
amounts, so for every model and any workload shape:

- cycles attributed to ``PB_FULL``   == ``cyclesStalled``
- cycles attributed to ``DFENCE``    == ``dfenceStalled``
- cycles attributed to ``SFENCE``    == ``sfenceStalled``
- cycles attributed to ``PB_BLOCKED``== ``cyclesBlocked``

and the per-epoch breakdown sums back to those totals.  Hypothesis
generates the workload shapes (store runs, fence placement, locked
sections creating cross-thread dependencies) over a deliberately tiny
machine (4-entry buffers) so back-pressure stalls actually occur.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    OFence,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.core.models import resolve_model
from repro.obs import REASON_COUNTERS, StallProfiler
from repro.sim.config import MachineConfig

MODELS = ["baseline", "hops_rp", "asap_rp", "eadr"]

#: tiny buffers force PB-full / blocked / fence stalls to actually occur.
TINY = dict(num_cores=2, pb_entries=4, wpq_entries=4)

LINE = 64


# -- workload-shape strategy -------------------------------------------------

#: one generated program segment: (kind, payload)
#:   ("stores", n)   n stores to the thread's private region
#:   ("ofence", 0) / ("dfence", 0) / ("compute", cycles)
#:   ("locked", n)   acquire; n stores to the shared region; release
segment = st.one_of(
    st.tuples(st.just("stores"), st.integers(1, 6)),
    st.tuples(st.just("ofence"), st.just(0)),
    st.tuples(st.just("dfence"), st.just(0)),
    st.tuples(st.just("compute"), st.integers(1, 40)),
    st.tuples(st.just("locked"), st.integers(1, 3)),
)

program_shape = st.lists(segment, min_size=1, max_size=10)
two_thread_shapes = st.tuples(program_shape, program_shape)


def build_program(shape, thread, lock_addr, shared_base, private_base):
    """Materialize one generated shape as an op generator."""
    def program():
        cursor = 0
        for kind, n in shape:
            if kind == "stores":
                for i in range(n):
                    yield Store(private_base + LINE * (cursor % 16), 8)
                    cursor += 1
            elif kind == "ofence":
                yield OFence()
            elif kind == "dfence":
                yield DFence()
            elif kind == "compute":
                yield Compute(n)
            elif kind == "locked":
                yield Acquire(lock_addr)
                for i in range(n):
                    yield Store(shared_base + LINE * (i % 4), 8)
                yield OFence()
                yield Release(lock_addr)
        yield DFence()

    return program()


def run_traced(model_name, shapes):
    config = MachineConfig(**TINY)
    run_config = resolve_model(model_name).run_config(seed=7)
    profiler = StallProfiler()
    machine = Machine(config, run_config, sinks=[profiler])
    lock_addr = 0x100000
    shared_base = 0x200000
    programs = [
        build_program(shape, t, lock_addr, shared_base,
                      0x400000 + t * 0x10000)
        for t, shape in enumerate(shapes)
    ]
    result = machine.run(programs)
    return profiler, result.stats


@pytest.mark.parametrize("model_name", MODELS)
@settings(max_examples=15, deadline=None)
@given(shapes=two_thread_shapes)
def test_attributed_cycles_match_registry_counters(model_name, shapes):
    profiler, stats = run_traced(model_name, shapes)
    for reason, counter in REASON_COUNTERS.items():
        assert profiler.total(reason) == stats.total(counter), (
            f"{model_name}: {reason.value} attribution diverged from "
            f"{counter}"
        )


@pytest.mark.parametrize("model_name", MODELS)
@settings(max_examples=10, deadline=None)
@given(shapes=two_thread_shapes)
def test_per_epoch_breakdown_sums_to_totals(model_name, shapes):
    profiler, stats = run_traced(model_name, shapes)
    # per-(core, epoch) attribution re-aggregates to the per-reason totals
    per_reason: dict = {}
    for cells in profiler.epoch_totals().values():
        for reason_value, cycles in cells.items():
            per_reason[reason_value] = per_reason.get(reason_value, 0) + cycles
    for reason, counter in REASON_COUNTERS.items():
        assert per_reason.get(reason.value, 0) == stats.total(counter)
    # and per-core attribution agrees with the machine-wide totals
    for reason in REASON_COUNTERS:
        cores_sum = sum(
            cycles for (_core, r), cycles in profiler.by_core.items()
            if r is reason
        )
        assert cores_sum == profiler.total(reason)


def test_stalls_actually_happen_under_the_tiny_config():
    """Guard against the property passing vacuously (0 == 0)."""
    shapes = ([("stores", 6), ("dfence", 0), ("stores", 6), ("dfence", 0)],
              [("locked", 3), ("stores", 6), ("dfence", 0)])
    stalled_somewhere = 0
    for model_name in MODELS:
        profiler, _stats = run_traced(model_name, shapes)
        stalled_somewhere += sum(
            profiler.total(reason) for reason in REASON_COUNTERS
        )
    assert stalled_somewhere > 0
