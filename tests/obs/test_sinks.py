"""Unit tests for the event model and the built-in sinks."""

import io
import json

from repro.obs import (
    Event,
    EventType,
    JSONLSink,
    RingBufferSink,
    StallProfiler,
    StallReason,
    Tracer,
)
from repro.sim.engine import Engine


def ev(cycle=0, type=EventType.OP_RETIRED, comp="core", **kw):
    fields = dict(core=None, mc=None, epoch=None, line=None,
                  reason=None, dur=None, kind=None, value=None)
    fields.update(kw)
    return Event(cycle=cycle, type=type, comp=comp, **fields)


class TestEvent:
    def test_to_dict_drops_none_fields(self):
        d = ev(cycle=5, core=1).to_dict()
        assert d == {"t": 5, "ev": "op_retired", "comp": "core", "core": 1}

    def test_to_dict_serializes_reason_enum_as_value(self):
        d = ev(type=EventType.STALL_END, reason=StallReason.PB_FULL,
               dur=12).to_dict()
        assert d["reason"] == "pb_full"
        assert d["dur"] == 12

    def test_events_are_slotted(self):
        assert not hasattr(ev(), "__dict__")


class TestTracer:
    def test_stamps_engine_cycle_and_fans_out(self):
        engine = Engine()
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer(engine, [a, b])
        engine.schedule(17, lambda: tracer.emit(
            EventType.PB_ENQUEUE, "pb", core=0, value=1))
        engine.run()
        assert a.total_seen == b.total_seen == 1
        assert a.events[0].cycle == 17
        assert a.events[0].type is EventType.PB_ENQUEUE


class TestRingBufferSink:
    def test_unbounded_keeps_everything(self):
        sink = RingBufferSink()
        for i in range(100):
            sink.handle(ev(cycle=i))
        assert len(sink) == sink.total_seen == 100

    def test_bounded_keeps_the_tail(self):
        sink = RingBufferSink(capacity=10)
        for i in range(100):
            sink.handle(ev(cycle=i))
        assert len(sink) == 10
        assert sink.total_seen == 100
        assert [e.cycle for e in sink.events] == list(range(90, 100))


class TestJSONLSink:
    def test_writes_one_sorted_json_object_per_line(self):
        buf = io.StringIO()
        sink = JSONLSink(buf)
        sink.handle(ev(cycle=3, core=1, epoch=2))
        sink.handle(ev(cycle=4, type=EventType.STALL_END,
                       reason=StallReason.DFENCE, dur=7))
        sink.close()
        lines = buf.getvalue().splitlines()
        assert sink.lines_written == len(lines) == 2
        for line in lines:
            d = json.loads(line)
            assert list(d) == sorted(d)

    def test_owns_and_closes_path_targets(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path)
        sink.handle(ev())
        sink.close()
        assert len(path.read_text().splitlines()) == 1


class TestStallProfiler:
    def test_attributes_stall_end_durations(self):
        prof = StallProfiler()
        prof.handle(ev(type=EventType.STALL_BEGIN, core=0, epoch=1,
                       reason=StallReason.PB_FULL))
        prof.handle(ev(type=EventType.STALL_END, core=0, epoch=1,
                       reason=StallReason.PB_FULL, dur=10))
        prof.handle(ev(type=EventType.STALL_END, core=1, epoch=2,
                       reason=StallReason.DFENCE, dur=4))
        assert prof.total(StallReason.PB_FULL) == 10
        assert prof.total(StallReason.DFENCE) == 4
        assert prof.total(StallReason.SFENCE) == 0
        assert prof.core_total(0, StallReason.PB_FULL) == 10
        assert prof.epoch_totals()[(0, 1)] == {"pb_full": 10}

    def test_counts_every_event_type(self):
        prof = StallProfiler()
        prof.handle(ev())
        prof.handle(ev())
        prof.handle(ev(type=EventType.PB_ACK))
        assert prof.counts[EventType.OP_RETIRED] == 2
        assert prof.counts[EventType.PB_ACK] == 1
        assert prof.events_seen == 3

    def test_summary_is_plain_json(self):
        prof = StallProfiler()
        prof.handle(ev(type=EventType.STALL_END, core=0, epoch=1,
                       reason=StallReason.PB_BLOCKED, dur=5, comp="pb"))
        summary = prof.summary()
        json.dumps(summary)  # must not raise
        assert summary["totals"] == {"pb_blocked": 5}
        assert summary["by_epoch"] == {"0:1": {"pb_blocked": 5}}
        assert summary["by_component"] == {"pb": {"pb_blocked": 5}}
