"""Golden tests pinning the two serialized trace formats.

The JSONL event schema and the Chrome-trace export are consumed outside
this repo (scripts, Perfetto), so their shape is contract: short stable
keys for JSONL, and the required ``ph``/``ts``/``pid``/``tid`` fields
with monotonic timestamps for the Chrome Trace Event Format.
"""

import io
import json

import pytest

from repro.obs import JSONLSink, RingBufferSink
from repro.obs.chrome import PID_CORES, PID_MCS, chrome_trace
from repro.sim.config import MachineConfig
from repro.workloads import get_workload
from repro.workloads.base import run_workload

from repro.core.models import resolve_model

#: every key the JSONL schema may emit; additions require a golden bump.
JSONL_KEYS = {"t", "ev", "comp", "core", "mc", "epoch", "line",
              "reason", "dur", "kind", "value"}
JSONL_REQUIRED = {"t", "ev", "comp"}

CHROME_PHASES = {"M", "X", "C", "i"}


@pytest.fixture(scope="module")
def traced_run():
    """One small traced ASAP run shared by every golden check."""
    ring = RingBufferSink()
    buf = io.StringIO()
    jsonl = JSONLSink(buf)
    run_workload(
        get_workload("queue", ops_per_thread=40, seed=7),
        MachineConfig(num_cores=2, pb_entries=4, wpq_entries=4),
        resolve_model("asap_rp").run_config(seed=7),
        num_threads=2,
        sinks=[ring, jsonl],
    )
    jsonl.close()
    return ring, buf.getvalue()


class TestJSONLSchema:
    def test_every_line_is_valid_json_with_known_keys(self, traced_run):
        _ring, text = traced_run
        lines = text.splitlines()
        assert lines, "a traced run must produce events"
        for line in lines:
            d = json.loads(line)
            assert JSONL_REQUIRED <= set(d) <= JSONL_KEYS
            assert isinstance(d["t"], int) and d["t"] >= 0
            assert isinstance(d["ev"], str)
            assert isinstance(d["comp"], str)

    def test_cycles_are_monotonic(self, traced_run):
        _ring, text = traced_run
        cycles = [json.loads(line)["t"] for line in text.splitlines()]
        assert cycles == sorted(cycles)

    def test_keys_are_sorted_for_byte_determinism(self, traced_run):
        _ring, text = traced_run
        for line in text.splitlines():
            d = json.loads(line)
            assert list(d) == sorted(d)

    def test_stall_ends_carry_reason_and_duration(self, traced_run):
        _ring, text = traced_run
        ends = [json.loads(line) for line in text.splitlines()
                if json.loads(line)["ev"] == "stall_end"]
        assert ends, "the tiny-buffer config must produce stalls"
        for d in ends:
            assert "reason" in d
            assert d.get("dur", 0) >= 0


class TestChromeTraceGolden:
    def test_required_fields_on_every_event(self, traced_run):
        ring, _text = traced_run
        doc = chrome_trace(ring.events)
        assert "traceEvents" in doc
        for entry in doc["traceEvents"]:
            assert entry["ph"] in CHROME_PHASES
            assert isinstance(entry["ts"], float)
            assert entry["ts"] >= 0.0
            assert isinstance(entry["pid"], int)
            assert isinstance(entry["tid"], int)
            if entry["ph"] == "X":
                assert entry["dur"] >= 0.0
                assert entry["name"].startswith("stall:")

    def test_timestamps_are_monotonic_within_the_body(self, traced_run):
        ring, _text = traced_run
        doc = chrome_trace(ring.events)
        body_ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert body_ts == sorted(body_ts)

    def test_metadata_names_cores_and_mcs(self, traced_run):
        ring, _text = traced_run
        doc = chrome_trace(ring.events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["pid"], e["name"], e["args"]["name"]) for e in meta}
        assert (PID_CORES, "process_name", "cores") in names
        assert (PID_MCS, "process_name", "memory controllers") in names
        assert (PID_CORES, "thread_name", "core0") in names

    def test_document_round_trips_through_json(self, traced_run):
        ring, _text = traced_run
        doc = chrome_trace(ring.events)
        again = json.loads(json.dumps(doc))
        assert again["displayTimeUnit"] == "ns"
        assert len(again["traceEvents"]) == len(doc["traceEvents"])

    def test_timestamps_convert_at_the_simulated_clock(self):
        from repro.obs.events import Event, EventType, StallReason

        end = Event(cycle=4000, type=EventType.STALL_END, comp="core",
                    core=0, mc=None, epoch=1, line=None,
                    reason=StallReason.DFENCE, dur=2000, kind=None,
                    value=None)
        doc = chrome_trace([end], freq_ghz=2.0)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # 2 GHz => 2000 cycles per microsecond.
        assert slices[0]["ts"] == pytest.approx(1.0)
        assert slices[0]["dur"] == pytest.approx(1.0)
