"""Tracing must be invisible to the simulation.

Two contracts, both load-bearing for the result cache:

1. **Zero perturbation**: a traced run and an untraced run of the same
   spec produce byte-identical gem5-style stats files (and identical
   result fingerprints).  Sinks only observe; they never schedule
   events or touch counters.
2. **Key stability**: ``RunSpec.key()`` for an *untraced* spec is
   computed from exactly the same fields as before tracing existed, so
   every previously cached result stays addressable.  Only traced specs
   add the ``events`` field.
"""

import pytest

from repro.analysis.statsfile import format_stats
from repro.exp import RunSpec
from repro.sim.config import MachineConfig

MODELS = ["baseline", "hops_rp", "asap_rp", "eadr"]

TINY = MachineConfig(num_cores=2, pb_entries=4, wpq_entries=4)


def spec(model, **kw):
    base = dict(machine=TINY, ops_per_thread=50, num_threads=2, seed=3)
    base.update(kw)
    return RunSpec("queue", model, **base)


@pytest.mark.parametrize("model", MODELS)
def test_traced_run_is_byte_identical_to_untraced(model):
    untraced = spec(model).execute()
    traced = spec(model, events=True).execute()
    assert format_stats(untraced.result) == format_stats(traced.result)
    assert untraced.fingerprint() == traced.fingerprint()


def test_traced_spec_attaches_obs_summary_untraced_does_not():
    assert spec("asap_rp").execute().obs is None
    obs = spec("asap_rp", events=True).execute().obs
    assert obs is not None
    assert "totals" in obs and "by_epoch" in obs
    assert obs["events_seen"] > 0


def test_untraced_describe_has_the_pre_tracing_field_set():
    d = spec("asap_rp").describe()
    assert set(d) == {
        "schema", "workload", "hardware", "persistency", "machine",
        "run_config", "ops_per_thread", "num_threads", "seed",
    }


def test_untraced_key_ignores_the_events_field_default():
    a = spec("asap_rp")
    b = spec("asap_rp", events=False)
    assert a.key() == b.key()


def test_traced_spec_gets_its_own_cache_key():
    assert spec("asap_rp").key() != spec("asap_rp", events=True).key()


def test_traced_results_cache_and_replay(tmp_path):
    from repro.exp import ExperimentPlan, ResultCache, run_plan

    cache = ResultCache(tmp_path)
    s = spec("asap_rp", events=True)
    first = run_plan(ExperimentPlan([s]), cache=cache)
    second = run_plan(ExperimentPlan([s]), cache=cache)
    assert first.results[0].fingerprint() == second.results[0].fingerprint()
