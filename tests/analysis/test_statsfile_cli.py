"""Tests for the gem5-style stats writer and the CLI."""

import pytest

from repro.analysis.statsfile import (
    TABLE_VI_DESCRIPTIONS,
    format_stats,
    write_stats,
)
from repro.cli import main
from repro.core.api import PMAllocator
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.workloads import get_workload, run_workload


@pytest.fixture(scope="module")
def run_result():
    workload = get_workload("cceh", ops_per_thread=10)
    return run_workload(
        workload, MachineConfig(num_cores=2),
        RunConfig(hardware=HardwareModel.ASAP),
    ).result


class TestStatsFile:
    def test_contains_every_table_vi_stat(self, run_result):
        text = format_stats(run_result)
        for name, description in TABLE_VI_DESCRIPTIONS.items():
            assert name in text
            assert description in text

    def test_gem5_style_delimiters(self, run_result):
        text = format_stats(run_result)
        assert text.startswith("---------- Begin Simulation Statistics")
        assert "End Simulation Statistics" in text

    def test_values_parse_back(self, run_result):
        text = format_stats(run_result)
        for line in text.splitlines():
            if line.startswith("simTicks"):
                value = int(line.split()[1])
                assert value == run_result.runtime_cycles

    def test_write_stats(self, run_result, tmp_path):
        path = write_stats(run_result, tmp_path / "stats.txt")
        assert path.exists()
        assert "totSpecWrites" in path.read_text()


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cceh" in out and "asap_rp" in out

    def test_run_prints_stats(self, capsys):
        assert main(["run", "p_clht", "--ops", "8", "--threads", "2"]) == 0
        out = capsys.readouterr().out
        assert "totSpecWrites" in out

    def test_run_writes_stats_file(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.txt"
        code = main([
            "run", "p_clht", "--ops", "8", "--threads", "2",
            "--stats", str(stats_path),
        ])
        assert code == 0
        assert stats_path.exists()

    def test_compare(self, capsys):
        code = main([
            "compare", "--workloads", "p_clht",
            "--models", "baseline", "asap_rp",
            "--ops", "15", "--threads", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "geomean" in out and "asap_rp" in out

    def test_crash_consistent(self, capsys):
        code = main([
            "crash", "p_clht", "--at", "2000", "--ops", "10",
            "--threads", "2",
        ])
        assert code == 0
        assert "consistent" in capsys.readouterr().out

    def test_unknown_workload_errors(self):
        with pytest.raises(KeyError):
            main(["run", "not_a_workload"])

    def test_vorpal_model_available(self, capsys):
        code = main([
            "run", "p_clht", "--model", "vorpal", "--ops", "8",
            "--threads", "2",
        ])
        assert code == 0
        assert "simTicks" in capsys.readouterr().out

    def test_crash_flags_no_undo_violation(self, capsys):
        """The crash subcommand exits non-zero on an inconsistent image
        when one actually occurs; on a consistent one it exits zero --
        exercise both the exit-code paths with the sound model."""
        code = main([
            "crash", "queue", "--model", "asap_rp", "--at", "400",
            "--ops", "10", "--threads", "2",
        ])
        assert code == 0
