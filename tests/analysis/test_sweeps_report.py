"""Unit tests for the sweep driver and text reporting."""

import pytest

from repro.analysis.report import format_speedup, render_series, render_table
from repro.analysis.sweeps import (
    ModelSpec,
    RP_MODELS,
    STANDARD_MODELS,
    sweep,
)
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel
from repro.workloads.microbench import FenceLatencyMicrobench


class TestModelSpecs:
    def test_standard_models_cover_figure8(self):
        names = [m.name for m in STANDARD_MODELS]
        assert names == [
            "baseline", "hops_ep", "hops_rp", "asap_ep", "asap_rp", "eadr",
        ]

    def test_rp_models(self):
        assert [m.name for m in RP_MODELS] == ["baseline", "hops", "asap", "eadr"]
        assert all(m.persistency is PersistencyModel.RELEASE for m in RP_MODELS)

    def test_run_config_construction(self):
        spec = ModelSpec("x", HardwareModel.ASAP, PersistencyModel.EPOCH)
        rc = spec.run_config(seed=5)
        assert rc.hardware is HardwareModel.ASAP
        assert rc.seed == 5


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        models = [
            ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
            ModelSpec("asap", HardwareModel.ASAP, PersistencyModel.RELEASE),
        ]
        return sweep(
            [FenceLatencyMicrobench], models,
            MachineConfig(num_cores=2), ops_per_thread=20,
        )

    def test_runtime_accessible(self, result):
        assert result.runtime("fence_latency", "baseline") > 0

    def test_speedup_normalization(self, result):
        speedup = result.speedup("fence_latency", "asap")
        assert speedup == pytest.approx(
            result.runtime("fence_latency", "baseline")
            / result.runtime("fence_latency", "asap")
        )
        assert result.speedup("fence_latency", "baseline") == 1.0

    def test_geomean(self, result):
        assert result.geomean_speedup("asap") == result.speedups("asap")[0]

    def test_stat_access(self, result):
        assert result.stat("fence_latency", "asap", "entriesInserted") > 0


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_render_table_handles_wide_cells(self):
        text = render_table(["x"], [["wider-than-header"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("wider-than-header")

    def test_render_series(self):
        text = render_series("asap", [1, 2, 4], [1.0, 1.5, 2.25], unit="x")
        assert text == "asap: 1=1.00x, 2=1.50x, 4=2.25x"

    def test_format_speedup(self):
        assert format_speedup(2.288) == "2.29x"
