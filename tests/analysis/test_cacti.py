"""Unit tests for the hardware-cost model (Table V / Section VII-D)."""

import pytest

from repro.analysis.cacti import (
    DrainingCost,
    HardwareCost,
    draining_comparison,
    table_v,
)


class TestTableV:
    def test_reference_rows_match_paper(self):
        rows = {c.name: c for c in table_v()}
        pb = rows["Persist Buffer"]
        assert pb.area_mm2 == pytest.approx(0.093)
        assert pb.access_latency_ns == pytest.approx(0.402)
        assert pb.write_energy_pj == pytest.approx(30.0)
        assert pb.read_energy_pj == pytest.approx(28.876)

        et = rows["Epoch Table"]
        assert et.area_mm2 == pytest.approx(0.006)
        assert et.access_latency_ns == pytest.approx(0.185)

        rt = rows["Recovery Table"]
        assert rt.area_mm2 == pytest.approx(0.097)
        assert rt.write_energy_pj == pytest.approx(31.5)

        l1 = rows["32KB L1 cache"]
        assert l1.area_mm2 == pytest.approx(0.759)
        assert l1.access_latency_ns == pytest.approx(1.403)

    def test_structures_far_cheaper_than_l1(self):
        rows = {c.name: c for c in table_v()}
        l1 = rows["32KB L1 cache"]
        for name in ("Persist Buffer", "Epoch Table", "Recovery Table"):
            assert rows[name].area_mm2 < l1.area_mm2 / 5
            assert rows[name].write_energy_pj < l1.write_energy_pj / 10

    def test_scaling_monotonic(self):
        small = table_v(rt_entries=16)[2]
        big = table_v(rt_entries=64)[2]
        assert small.area_mm2 < big.area_mm2
        assert small.access_latency_ns < big.access_latency_ns
        assert small.write_energy_pj < big.write_energy_pj

    def test_rows_renderable(self):
        for cost in table_v():
            row = cost.row()
            assert len(row) == 6
            assert all(isinstance(cell, str) for cell in row)


class TestDrainingComparison:
    def test_paper_magnitudes(self):
        costs = {c.design: c for c in draining_comparison()}
        # "about 42MB of data has to be flushed" (eADR, 32 cores, 50% dirty)
        assert costs["eADR"].bytes_to_flush == pytest.approx(42 * 1024 * 1024, rel=0.05)
        # "BBB reduces the amount ... to about 64KB"
        assert costs["BBB"].bytes_to_flush == 64 * 1024
        # "ASAP requires less than 4KB" -- our worst case (every RT entry
        # a live undo record on both MCs) is exactly 4 KB; any real crash
        # flushes less because delay records are discarded.
        assert costs["ASAP"].bytes_to_flush <= 4 * 1024

    def test_ordering(self):
        eadr, bbb, asap = draining_comparison()
        assert eadr.bytes_to_flush > bbb.bytes_to_flush > asap.bytes_to_flush

    def test_energy_proportional(self):
        eadr, bbb, asap = draining_comparison()
        assert eadr.energy_uj > 1000 * asap.energy_uj

    def test_rows_format_units(self):
        eadr, bbb, asap = draining_comparison()
        assert "MB" in eadr.row()[1]
        assert "KB" in bbb.row()[1]
        assert "KB" in asap.row()[1]
