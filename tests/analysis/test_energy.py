"""Tests for the operational-energy model."""

import pytest

from repro.analysis.energy import EnergyBreakdown, energy_per_op, estimate_energy
from repro.sim.config import HardwareModel, MachineConfig, PersistencyModel, RunConfig
from repro.workloads import get_workload, run_workload


def run(hardware, workload="dash_eh", ops=25):
    return run_workload(
        get_workload(workload, ops_per_thread=ops),
        MachineConfig(num_cores=2),
        RunConfig(hardware=hardware, persistency=PersistencyModel.RELEASE),
    ).result


class TestEstimates:
    def test_breakdown_positive_for_buffered_designs(self):
        breakdown = estimate_energy(run(HardwareModel.ASAP))
        assert breakdown.pb_pj > 0
        assert breakdown.et_pj > 0
        assert breakdown.rt_pj > 0
        assert breakdown.total_pj == pytest.approx(
            breakdown.pb_pj + breakdown.et_pj + breakdown.rt_pj
        )

    def test_eadr_spends_nothing(self):
        breakdown = estimate_energy(run(HardwareModel.EADR))
        assert breakdown.total_pj == 0

    def test_hops_has_no_rt_energy(self):
        breakdown = estimate_energy(run(HardwareModel.HOPS))
        assert breakdown.rt_pj == 0
        assert breakdown.pb_pj > 0

    def test_asap_rt_energy_tracks_speculation(self):
        """More early flushes => more recovery-table energy."""
        calm = estimate_energy(run(HardwareModel.ASAP, workload="nstore"))
        busy = estimate_energy(run(HardwareModel.ASAP, workload="queue"))
        assert busy.rt_pj > calm.rt_pj

    def test_energy_per_op_scale(self):
        """Sanity: per-op persistence energy is small -- far below an L1
        access-pair per op would be (Table V's comparison point)."""
        per_op = energy_per_op(run(HardwareModel.ASAP))
        assert 0 < per_op < 2000  # pJ

    def test_as_dict(self):
        d = estimate_energy(run(HardwareModel.ASAP)).as_dict()
        assert set(d) == {"pb_pj", "et_pj", "rt_pj", "total_pj"}
