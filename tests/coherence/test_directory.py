"""Unit tests for the coherence directory."""

from repro.coherence.directory import Directory, OwnerInfo


class TestOwnership:
    def test_unwritten_line_has_no_owner(self, stats):
        directory = Directory(stats)
        assert directory.owner_of(0) is None

    def test_record_write_sets_owner(self, stats):
        directory = Directory(stats)
        directory.record_write(0, core=1, epoch_ts=5)
        assert directory.owner_of(0) == OwnerInfo(core=1, epoch_ts=5)

    def test_rewriting_updates_epoch(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        directory.record_write(0, 1, 9)
        assert directory.owner_of(0).epoch_ts == 9


class TestConflicts:
    def test_own_line_is_not_a_conflict(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        assert directory.conflicting_access(0, core=1) is None

    def test_foreign_line_is_a_conflict(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        owner = directory.conflicting_access(0, core=2)
        assert owner == OwnerInfo(core=1, epoch_ts=5)

    def test_unowned_line_is_not_a_conflict(self, stats):
        directory = Directory(stats)
        assert directory.conflicting_access(0, core=2) is None


class TestInvalidation:
    def test_write_invalidates_previous_owner(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        to_invalidate = directory.record_write(0, 2, 3)
        assert to_invalidate == [1]

    def test_write_invalidates_sharers(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        directory.record_read(0, 2)
        directory.record_read(0, 3)
        to_invalidate = directory.record_write(0, 2, 7)
        assert to_invalidate == [1, 3]  # not the writer itself

    def test_sharers_cleared_after_write(self, stats):
        directory = Directory(stats)
        directory.record_read(0, 2)
        directory.record_write(0, 1, 5)
        assert directory.record_write(0, 1, 6) == []

    def test_forget(self, stats):
        directory = Directory(stats)
        directory.record_write(0, 1, 5)
        directory.record_read(0, 2)
        directory.forget(0)
        assert directory.owner_of(0) is None
        assert directory.record_write(0, 3, 1) == []
