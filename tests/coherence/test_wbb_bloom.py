"""Unit tests for the write-back buffer and the counting Bloom filter."""

import pytest

from repro.coherence.bloom import CountingBloomFilter
from repro.coherence.wbb import WriteBackBuffer


class TestWriteBackBuffer:
    def test_hold_and_release(self, stats):
        wbb = WriteBackBuffer(4, stats, scope="core0")
        assert wbb.hold(0x100, pb_seq=5)
        assert wbb.holds(0x100)
        released = wbb.release_upto(5)
        assert released == [0x100]
        assert not wbb.holds(0x100)

    def test_release_respects_sequence(self, stats):
        wbb = WriteBackBuffer(4, stats, scope="core0")
        wbb.hold(0x100, pb_seq=5)
        wbb.hold(0x200, pb_seq=9)
        assert wbb.release_upto(6) == [0x100]
        assert wbb.holds(0x200)

    def test_full_buffer_rejects(self, stats):
        wbb = WriteBackBuffer(2, stats, scope="core0")
        assert wbb.hold(0, 1)
        assert wbb.hold(64, 2)
        assert not wbb.hold(128, 3)
        assert stats.get("wbb_full_stalls", scope="core0") == 1

    def test_release_makes_space(self, stats):
        wbb = WriteBackBuffer(1, stats, scope="core0")
        wbb.hold(0, 1)
        wbb.release_upto(1)
        assert wbb.hold(64, 2)


class TestCountingBloomFilter:
    def test_add_and_contains(self):
        bloom = CountingBloomFilter(256, 2)
        bloom.add(0x1000)
        assert 0x1000 in bloom

    def test_absent_line_usually_not_contained(self):
        bloom = CountingBloomFilter(1024, 2)
        bloom.add(0x1000)
        false_positives = sum(1 for i in range(200) if (0x9000 + i * 64) in bloom)
        assert false_positives <= 2  # sparse filter, essentially none

    def test_discard_removes(self):
        bloom = CountingBloomFilter(256, 2)
        bloom.add(0x1000)
        bloom.discard(0x1000)
        assert 0x1000 not in bloom

    def test_counting_supports_shared_buckets(self):
        """The reason the filter counts: removing one element must not
        erase another that shares its buckets."""
        bloom = CountingBloomFilter(4, 1)  # tiny filter: guaranteed overlap
        lines = [i * 64 for i in range(16)]
        for line in lines:
            bloom.add(line)
        bloom.discard(lines[0])
        # All remaining lines must still be present.
        assert all(line in bloom for line in lines[1:])

    def test_discard_of_absent_is_safe(self):
        bloom = CountingBloomFilter(256, 2)
        bloom.discard(0x1000)  # never added
        assert len(bloom) == 0

    def test_population_tracking(self):
        bloom = CountingBloomFilter(256, 2)
        bloom.add(0)
        bloom.add(64)
        assert len(bloom) == 2
        bloom.discard(0)
        assert len(bloom) == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 2)
        with pytest.raises(ValueError):
            CountingBloomFilter(16, 0)
