"""Unit tests for the cache models."""

import pytest

from repro.sim.config import CacheConfig
from repro.sim.engine import ns_to_cycles
from repro.coherence.cache import Cache, CacheHierarchy


def small_cache(stats, size=1024, ways=2, latency=1.0, scope="t"):
    return Cache(CacheConfig(size, ways, latency), stats, scope)


class TestCache:
    def test_miss_then_hit(self, stats):
        cache = small_cache(stats)
        assert not cache.lookup(0)
        cache.fill(0)
        assert cache.lookup(0)

    def test_lru_eviction_within_set(self, stats):
        cache = small_cache(stats, size=256, ways=2)  # 2 sets x 2 ways
        num_sets = cache.num_sets
        stride = num_sets * 64  # same set
        cache.fill(0)
        cache.fill(stride)
        victim = cache.fill(2 * stride)
        assert victim == (0, False)
        assert 0 not in cache

    def test_lookup_refreshes_lru(self, stats):
        cache = small_cache(stats, size=256, ways=2)
        stride = cache.num_sets * 64
        cache.fill(0)
        cache.fill(stride)
        cache.lookup(0)  # refresh
        victim = cache.fill(2 * stride)
        assert victim == (stride, False)

    def test_dirty_bit_travels_with_eviction(self, stats):
        cache = small_cache(stats, size=256, ways=2)
        stride = cache.num_sets * 64
        cache.fill(0, dirty=True)
        cache.fill(stride)
        victim = cache.fill(2 * stride)
        assert victim == (0, True)

    def test_mark_dirty(self, stats):
        cache = small_cache(stats)
        cache.fill(0)
        cache.mark_dirty(0)
        cache.fill(0)  # refill keeps dirty
        # evict everything in set 0 to observe the dirty bit
        stride = cache.num_sets * 64
        cache.fill(stride)
        victim = cache.fill(2 * stride)
        assert victim[1] is True

    def test_invalidate(self, stats):
        cache = small_cache(stats)
        cache.fill(0)
        assert cache.invalidate(0)
        assert 0 not in cache
        assert not cache.invalidate(0)

    def test_hit_miss_stats(self, stats):
        cache = small_cache(stats, scope="c0")
        cache.lookup(0)
        cache.fill(0)
        cache.lookup(0)
        assert stats.get("cache_misses", scope="c0") == 1
        assert stats.get("cache_hits", scope="c0") == 1


@pytest.fixture
def hierarchy(stats):
    l1 = small_cache(stats, size=512, ways=2, latency=1.0, scope="l1")
    l2 = small_cache(stats, size=2048, ways=2, latency=10.0, scope="l2")
    llc = small_cache(stats, size=8192, ways=4, latency=30.0, scope="llc")
    return CacheHierarchy(l1, l2, llc, memory_latency=lambda line: 350)


class TestHierarchy:
    def test_cold_miss_costs_full_path(self, hierarchy):
        latency, level = hierarchy.access_ex(0, is_write=False)
        assert level == "mem"
        assert latency == (
            ns_to_cycles(1.0) + ns_to_cycles(10.0) + ns_to_cycles(30.0) + 350
        )

    def test_l1_hit_after_fill(self, hierarchy):
        hierarchy.access(0, is_write=False)
        latency, level = hierarchy.access_ex(0, is_write=False)
        assert level == "l1"
        assert latency == ns_to_cycles(1.0)

    def test_invalidate_forces_reload(self, hierarchy):
        hierarchy.access(0, is_write=False)
        hierarchy.invalidate(0)
        _, level = hierarchy.access_ex(0, is_write=False)
        assert level in ("llc", "mem")  # still in the shared LLC

    def test_llc_hit_path(self, hierarchy):
        hierarchy.access(0, is_write=False)
        hierarchy.invalidate(0)
        latency, level = hierarchy.access_ex(0, is_write=False)
        assert level == "llc"
        assert latency == ns_to_cycles(1.0) + ns_to_cycles(10.0) + ns_to_cycles(30.0)

    def test_write_marks_dirty_in_l1(self, hierarchy):
        hierarchy.access(0, is_write=True)
        _, level = hierarchy.access_ex(0, is_write=False)
        assert level == "l1"

    def test_private_eviction_callback(self, stats):
        evicted = []
        l1 = small_cache(stats, size=128, ways=1, scope="l1")  # 2 lines
        l2 = small_cache(stats, size=256, ways=1, scope="l2")  # 4 lines
        llc = small_cache(stats, size=8192, ways=4, scope="llc")
        hierarchy = CacheHierarchy(
            l1, l2, llc,
            memory_latency=lambda line: 100,
            on_private_eviction=lambda line, dirty: evicted.append(line),
        )
        # Touch many same-set lines to force L2 evictions.
        for i in range(8):
            hierarchy.access(i * 256, is_write=True)
        assert evicted  # someone fell out of the private levels

    def test_llc_eviction_callback(self, stats):
        dropped = []
        l1 = small_cache(stats, size=128, ways=1, scope="l1")
        l2 = small_cache(stats, size=256, ways=1, scope="l2")
        llc = small_cache(stats, size=256, ways=1, scope="llc")  # tiny LLC
        hierarchy = CacheHierarchy(
            l1, l2, llc,
            memory_latency=lambda line: 100,
            on_llc_eviction=lambda line, dirty: dropped.append(line),
        )
        for i in range(12):
            hierarchy.access(i * 256, is_write=False)
        assert dropped
