"""Unit and property tests for the MESI directory protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.mesi import LineState, MESIDirectory
from repro.sim.stats import StatsRegistry


@pytest.fixture
def mesi(stats):
    return MESIDirectory(num_cores=4, stats=stats)


LINE = 0x1000


class TestReads:
    def test_first_read_takes_exclusive(self, mesi):
        transition = mesi.read(0, LINE)
        assert transition.new_state is LineState.EXCLUSIVE
        assert not transition.cache_to_cache
        assert mesi.state_of(0, LINE) is LineState.EXCLUSIVE

    def test_second_reader_shares_and_downgrades(self, mesi):
        mesi.read(0, LINE)
        transition = mesi.read(1, LINE)
        assert transition.new_state is LineState.SHARED
        assert transition.downgraded == [0]
        assert transition.cache_to_cache
        assert mesi.state_of(0, LINE) is LineState.SHARED

    def test_read_hit_is_silent(self, mesi):
        mesi.read(0, LINE)
        transition = mesi.read(0, LINE)
        assert transition.new_state is LineState.EXCLUSIVE
        assert not transition.downgraded
        assert transition.source is None

    def test_read_of_modified_line_downgrades_writer(self, mesi):
        mesi.write(0, LINE, epoch_ts=3)
        transition = mesi.read(1, LINE)
        assert transition.cache_to_cache
        assert mesi.state_of(0, LINE) is LineState.SHARED
        assert transition.source is not None
        assert transition.source.core == 0
        assert transition.source.epoch_ts == 3

    def test_read_after_own_write_carries_no_source(self, mesi):
        mesi.write(0, LINE, epoch_ts=3)
        transition = mesi.read(0, LINE)
        assert transition.source is None


class TestWrites:
    def test_first_write_takes_modified(self, mesi):
        transition = mesi.write(0, LINE, epoch_ts=1)
        assert transition.new_state is LineState.MODIFIED
        assert transition.invalidated == []

    def test_write_invalidates_sharers(self, mesi):
        mesi.read(0, LINE)
        mesi.read(1, LINE)
        mesi.read(2, LINE)
        transition = mesi.write(3, LINE, epoch_ts=1)
        assert transition.invalidated == [0, 1, 2]
        for core in (0, 1, 2):
            assert mesi.state_of(core, LINE) is LineState.INVALID

    def test_write_steals_modified_line(self, mesi):
        mesi.write(0, LINE, epoch_ts=5)
        transition = mesi.write(1, LINE, epoch_ts=2)
        assert transition.invalidated == [0]
        assert transition.cache_to_cache
        assert transition.source.core == 0
        assert transition.source.epoch_ts == 5

    def test_upgrade_from_shared_is_not_a_transfer(self, mesi):
        mesi.read(0, LINE)
        mesi.read(1, LINE)
        transition = mesi.write(0, LINE, epoch_ts=1)
        assert transition.invalidated == [1]
        assert not transition.cache_to_cache  # data already local

    def test_write_hit_in_modified_is_silent(self, mesi):
        mesi.write(0, LINE, epoch_ts=1)
        transition = mesi.write(0, LINE, epoch_ts=2)
        assert transition.invalidated == []
        assert transition.source is None  # own write


class TestEvictions:
    def test_evicted_copy_refetches(self, mesi):
        mesi.read(0, LINE)
        mesi.evict(0, LINE)
        assert mesi.state_of(0, LINE) is LineState.INVALID
        transition = mesi.read(0, LINE)
        assert transition.new_state is LineState.EXCLUSIVE

    def test_last_writer_survives_eviction(self, mesi):
        """Dependence info outlives the cached copy: the directory must
        still name the last writer after its line fell out of the cache."""
        mesi.write(0, LINE, epoch_ts=7)
        mesi.evict(0, LINE)
        transition = mesi.read(1, LINE)
        assert transition.source is not None
        assert transition.source.epoch_ts == 7


class TestDirectoryCompatibility:
    def test_owner_of(self, mesi):
        assert mesi.owner_of(LINE) is None
        mesi.write(2, LINE, epoch_ts=9)
        owner = mesi.owner_of(LINE)
        assert (owner.core, owner.epoch_ts) == (2, 9)

    def test_conflicting_access(self, mesi):
        mesi.write(2, LINE, epoch_ts=9)
        assert mesi.conflicting_access(LINE, core=2) is None
        assert mesi.conflicting_access(LINE, core=0).core == 2

    def test_update_writer_epoch(self, mesi):
        mesi.write(1, LINE, epoch_ts=4)
        mesi.update_writer_epoch(LINE, 1, 6)
        assert mesi.owner_of(LINE).epoch_ts == 6
        # a different core's update is ignored (stale)
        mesi.update_writer_epoch(LINE, 0, 99)
        assert mesi.owner_of(LINE).epoch_ts == 6

    def test_sharers_of(self, mesi):
        mesi.read(0, LINE)
        mesi.read(1, LINE)
        assert mesi.sharers_of(LINE) == {0, 1}


class TestSWMRProperty:
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(0, 3),  # core
                st.integers(0, 3),  # line index
                st.sampled_from(["r", "w", "e"]),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_random_access_streams_maintain_swmr(self, accesses):
        """The single-writer / multiple-reader invariant holds under any
        interleaving of reads, writes, and evictions."""
        mesi = MESIDirectory(num_cores=4, stats=StatsRegistry())
        for core, line_index, kind in accesses:
            line = 0x1000 + line_index * 64
            if kind == "r":
                mesi.read(core, line)
            elif kind == "w":
                mesi.write(core, line, epoch_ts=1)
            else:
                mesi.evict(core, line)
            mesi.check_swmr(line)  # explicit re-check

    @given(
        accesses=st.lists(
            st.tuples(st.integers(0, 3), st.sampled_from(["r", "w"])),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_last_writer_is_the_most_recent_write(self, accesses):
        mesi = MESIDirectory(num_cores=4, stats=StatsRegistry())
        last_writer = None
        for step, (core, kind) in enumerate(accesses):
            if kind == "w":
                mesi.write(core, LINE, epoch_ts=step + 1)
                last_writer = (core, step + 1)
            else:
                mesi.read(core, LINE)
        owner = mesi.owner_of(LINE)
        if last_writer is None:
            assert owner is None
        else:
            assert (owner.core, owner.epoch_ts) == last_writer
