"""Axiomatic allowed-set semantics on the named corpus shapes."""

from repro.axiom import (
    allowed_states,
    annotate_epochs,
    enumerate_executions,
    execution_allows,
    is_state_allowed,
    parse_state,
)
from repro.litmus.corpus import NAMED_BUILDERS


def _allowed(name):
    return set(allowed_states(NAMED_BUILDERS[name]()).formatted())


class TestFlushFamily:
    def test_flush_none_allows_every_subset(self):
        assert _allowed("flush_none") == {
            "x=init y=init",
            "x=init y=t0s2",
            "x=t0s1 y=init",
            "x=t0s1 y=t0s2",
        }

    def test_flush_ofence_orders_y_after_x(self):
        assert _allowed("flush_ofence") == {
            "x=init y=init",
            "x=t0s1 y=init",
            "x=t0s1 y=t0s2",
        }

    def test_flush_dfence_matches_ofence_states(self):
        # durability changes timing, not the crash-state set.
        assert _allowed("flush_dfence") == {
            "x=init y=init",
            "x=t0s1 y=init",
            "x=t0s1 y=t0s2",
        }

    def test_same_line_prefixes(self):
        assert _allowed("flush_same_line") == {
            "x=init", "x=t0s1", "x=t0s2",
        }


class TestEpochFamily:
    def test_strand_cut_unorders_pre_strand_store(self):
        # z implies y (post-strand fence); x is free either way.
        assert _allowed("epoch_strand") == {
            "x=init y=init z=init",
            "x=init y=t0s2 z=init",
            "x=init y=t0s2 z=t0s3",
            "x=t0s1 y=init z=init",
            "x=t0s1 y=t0s2 z=init",
            "x=t0s1 y=t0s2 z=t0s3",
        }

    def test_spa_orders_cross_strand_same_line_conflict(self):
        # the second x (and its epoch-mate y) persist after the first x:
        # seeing y=t0s3 with x still init is the one forbidden shape.
        allowed = _allowed("epoch_spa")
        assert "x=init y=t0s3" not in allowed
        assert allowed == {
            "x=init y=init",
            "x=t0s1 y=init",
            "x=t0s1 y=t0s3",
            "x=t0s2 y=init",
            "x=t0s2 y=t0s3",
        }


class TestMpFamily:
    def test_mp_fenced_ack_implies_publication(self):
        # in the writer-first lock order, ack implies data and flag; the
        # union also admits the reader-first order (ack alone).
        allowed = _allowed("mp_fenced")
        assert "ack=t1s1 data=t0s1 flag=t0s2" in allowed
        assert "ack=t1s1 data=init flag=t0s2" not in allowed
        assert "ack=init data=init flag=t0s2" not in allowed

    def test_mp_strand_breaks_the_implication(self):
        # the strand decouples data from the release: flag/ack may
        # persist while data never does.
        allowed = _allowed("mp_strand")
        assert "ack=t1s1 data=init flag=t0s2" in allowed


class TestMembershipApi:
    def test_is_state_allowed_agrees_with_enumeration(self):
        test = NAMED_BUILDERS["flush_ofence"]()
        assert is_state_allowed(test, parse_state("x=t0s1 y=init"))
        assert not is_state_allowed(test, parse_state("x=init y=t0s2"))

    def test_execution_restriction_tightens_membership(self):
        # mp_fenced: under the writer-first lock order specifically,
        # ack=t1s1 with nothing published is forbidden -- the union
        # admits it only via the reader-first order.
        test = NAMED_BUILDERS["mp_fenced"]()
        epochs = annotate_epochs(test)
        executions = enumerate_executions(test).executions
        state = parse_state("ack=t1s1 data=init flag=init")
        assert is_state_allowed(test, state)  # union: reader-first order

        def writer_first(execution):
            (release, acquire), = execution.sync_pairs
            return release[0] == 0 and acquire[0] == 1

        restricted = [e for e in executions if writer_first(e)]
        assert restricted
        assert all(
            not execution_allows(test, epochs, e, state) for e in restricted
        )
