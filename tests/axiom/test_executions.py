"""Candidate-execution enumeration."""

from repro.axiom import (
    LitmusHeap,
    enumerate_executions,
    make_test,
    writes_of,
)
from repro.core.api import Acquire, OFence, Release, Store


def _single_thread_two_lines():
    heap = LitmusHeap()
    x, y = heap.loc("x"), heap.loc("y")
    return make_test(
        "t", "flush", [[Store(x, 8), OFence(), Store(y, 8)]], heap,
    )


def _mp_locked():
    heap = LitmusHeap()
    lock = heap.lock("L")
    x = heap.loc("x")
    return make_test(
        "t", "mp",
        [
            [Acquire(lock), Store(x, 8), Release(lock)],
            [Acquire(lock), Store(x, 8), Release(lock)],
        ],
        heap,
    )


class TestEnumeration:
    def test_single_thread_has_one_execution(self):
        exec_set = enumerate_executions(_single_thread_two_lines())
        assert len(exec_set.executions) == 1
        assert not exec_set.truncated
        execution = exec_set.executions[0]
        # one write per line, so each coherence order is a singleton
        assert all(
            len(order) == 1 for order in execution.coherence_map().values()
        )
        assert execution.sync_pairs == ()

    def test_witness_covers_every_write(self):
        test = _single_thread_two_lines()
        execution = enumerate_executions(test).executions[0]
        assert len(execution.witness) == len(writes_of(test))

    def test_locked_conflict_yields_both_orders(self):
        exec_set = enumerate_executions(_mp_locked())
        assert len(exec_set.executions) == 2
        line = next(iter(exec_set.executions[0].coherence_map()))
        orders = {
            tuple(w.label for w in execution.coherence_map()[line])
            for execution in exec_set.executions
        }
        assert orders == {("t0s1", "t1s1"), ("t1s1", "t0s1")}

    def test_sync_pairs_follow_lock_order(self):
        for execution in enumerate_executions(_mp_locked()).executions:
            # exactly one cross-thread release->acquire handoff
            assert len(execution.sync_pairs) == 1
            release, acquire = execution.sync_pairs[0]
            assert release[0] != acquire[0]

    def test_truncation_flag(self):
        heap = LitmusHeap()
        lock = heap.lock("L")
        x = heap.loc("x")
        cs = [Acquire(lock), Store(x, 8), Release(lock)]
        test = make_test("t", "mp", [cs * 3, cs * 3], heap, max_ops=12)
        exec_set = enumerate_executions(test, max_executions=2)
        assert exec_set.truncated
        assert len(exec_set.executions) == 2
