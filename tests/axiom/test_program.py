"""Litmus program construction and validation."""

import pytest

from repro.axiom import (
    INIT,
    LitmusHeap,
    format_state,
    make_test,
    parse_state,
)
from repro.core.api import Acquire, OFence, Release, Store


def _heap_xy():
    heap = LitmusHeap()
    return heap, heap.loc("x"), heap.loc("y")


class TestMakeTest:
    def test_auto_labels_are_per_thread_ordinals(self):
        heap, x, y = _heap_xy()
        test = make_test(
            "t", "flush",
            [[Store(x, 8), Store(y, 8)], [OFence()]],
            heap,
        )
        labels = [op.payload for op in test.threads[0]]
        assert labels == ["t0s1", "t0s2"]

    def test_explicit_labels_survive(self):
        heap, x, _ = _heap_xy()
        test = make_test(
            "t", "flush", [[Store(x, 8, "mine")]], heap,
        )
        assert test.threads[0][0].payload == "mine"

    def test_duplicate_label_rejected(self):
        heap, x, y = _heap_xy()
        with pytest.raises(ValueError, match="duplicate"):
            make_test(
                "t", "flush",
                [[Store(x, 8, "dup"), Store(y, 8, "dup")]],
                heap,
            )

    def test_init_label_reserved(self):
        heap, x, _ = _heap_xy()
        with pytest.raises(ValueError, match="duplicate/reserved"):
            make_test("t", "flush", [[Store(x, 8, INIT)]], heap)

    def test_store_to_unnamed_address_rejected(self):
        heap, x, _ = _heap_xy()
        with pytest.raises(ValueError, match="unnamed"):
            make_test("t", "flush", [[Store(x + 0x4000, 8)]], heap)

    def test_op_budget_enforced(self):
        heap, x, _ = _heap_xy()
        ops = [Store(x, 8)] + [OFence()] * 20
        with pytest.raises(ValueError, match="budget"):
            make_test("t", "flush", [ops], heap)
        # a caller-raised budget admits the same program
        make_test("t2", "flush", [ops], heap, max_ops=32)

    def test_too_many_threads_rejected(self):
        heap, x, _ = _heap_xy()
        with pytest.raises(ValueError, match="threads"):
            make_test("t", "flush", [[OFence()]] * 5, heap)

    def test_release_of_unheld_lock_rejected(self):
        heap = LitmusHeap()
        lock = heap.lock("L")
        heap.loc("x")
        with pytest.raises(ValueError, match="unheld"):
            make_test("t", "mp", [[Release(lock)]], heap)

    def test_thread_must_not_end_holding_a_lock(self):
        heap = LitmusHeap()
        lock = heap.lock("L")
        heap.loc("x")
        with pytest.raises(ValueError, match="ends holding"):
            make_test("t", "mp", [[Acquire(lock)]], heap)

    def test_race_contract_rejects_unlocked_sharing(self):
        heap = LitmusHeap()
        x = heap.loc("x")
        with pytest.raises(ValueError, match="race contract"):
            make_test(
                "t", "mp", [[Store(x, 8)], [Store(x, 8)]], heap,
            )

    def test_race_contract_accepts_common_lock(self):
        heap = LitmusHeap()
        lock = heap.lock("L")
        x = heap.loc("x")
        test = make_test(
            "t", "mp",
            [
                [Acquire(lock), Store(x, 8), Release(lock)],
                [Acquire(lock), Store(x, 8), Release(lock)],
            ],
            heap,
        )
        assert len(test.stores()) == 2


class TestStateFormat:
    def test_round_trip(self):
        state = (("x", "t0s1"), ("y", INIT))
        assert parse_state(format_state(state)) == state

    def test_initial_state_is_all_init(self):
        heap, x, y = _heap_xy()
        test = make_test("t", "flush", [[Store(x, 8)]], heap)
        assert test.initial_state() == (("x", INIT), ("y", INIT))
