"""Fast unit coverage of the sampling pipeline's pieces."""

from __future__ import annotations

import pytest

from repro.sample import (
    FEATURE_NAMES,
    SampleConfig,
    cluster_intervals,
    fingerprint_intervals,
    run_sampled,
)
from repro.sample.pipeline import _merge_segments

pytestmark = pytest.mark.sampled


def test_fingerprint_shape_and_determinism():
    a = fingerprint_intervals("queue", 50, ops_per_thread=400)
    b = fingerprint_intervals("queue", 50, ops_per_thread=400)
    assert a.vectors == b.vectors
    assert a.thread_ops == b.thread_ops
    assert all(len(v) == len(FEATURE_NAMES) for v in a.vectors)
    assert a.num_intervals >= 4


def test_fingerprint_novelty_decays():
    """First-touch density is highest at the start of the run."""
    iv = fingerprint_intervals("ctree", 75, ops_per_thread=1000)
    novelty = FEATURE_NAMES.index("novelty")
    first = iv.vectors[0][novelty]
    steady = sum(v[novelty] for v in iv.vectors[-5:]) / 5
    assert first > steady


def test_cluster_intervals_deterministic_and_complete():
    iv = fingerprint_intervals("cceh", 75, ops_per_thread=1200)
    plan_a = cluster_intervals(iv.vectors, 6)
    plan_b = cluster_intervals(iv.vectors, 6)
    assert plan_a.labels == plan_b.labels
    assert plan_a.representatives == plan_b.representatives
    assert sum(plan_a.counts) == iv.num_intervals
    for cluster, rep in enumerate(plan_a.representatives):
        assert plan_a.labels[rep] == cluster


def test_cluster_k_clamped():
    plan = cluster_intervals([[0.0], [1.0], [2.0]], 10)
    assert plan.num_phases <= 3


def test_merge_segments():
    assert _merge_segments([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]
    assert _merge_segments([(5, 8), (0, 2)]) == [(0, 2), (5, 8)]


def test_sample_config_validation():
    with pytest.raises(ValueError):
        SampleConfig(interval_ops=0)
    with pytest.raises(ValueError):
        SampleConfig(clusters=0)
    with pytest.raises(ValueError):
        SampleConfig(tail_intervals=0)


def test_run_sampled_small_cell():
    """End-to-end sampled run: estimates exist and are positive where
    the full machine must have done work."""
    report = run_sampled(
        "queue", "asap_rp", ops_per_thread=800,
        config=SampleConfig(interval_ops=50),
    )
    assert report.ops_simulated < report.ops_total
    assert report.estimates["cycles"].value > 0
    assert report.estimates["cache_hits"].value > 0
    assert 0 <= report.estimates["cycles"].margin <= 1
    doc = report.to_dict()
    assert doc["workload"] == "queue"
    assert doc["ops_ratio"] == report.ops_ratio


def test_run_sampled_deterministic():
    cfg = SampleConfig(interval_ops=50)
    a = run_sampled("queue", "asap_rp", ops_per_thread=600, config=cfg)
    b = run_sampled("queue", "asap_rp", ops_per_thread=600, config=cfg)
    assert a.to_dict() == b.to_dict()
