"""Sampled-accuracy golden gate (the blocking CI job).

Recomputes every gate cell -- sampled run AND full run -- and checks:

1. the headline acceptance bounds hold: per-cell geomean relative error
   <= 5% and op-reduction ratio >= 10x;
2. the rounded per-metric errors match ``golden/sample_errors.json``
   byte-for-byte, so *any* accuracy drift (improvement or regression)
   surfaces as a reviewable golden diff.

Regenerate the golden with ``PYTHONPATH=src python
scripts/gen_sample_golden.py`` only when a PR intentionally changes
simulator timing, workload streams, or the sampling method.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.sample import SampleConfig, validate_sampled

pytestmark = pytest.mark.sampled

GOLDEN = pathlib.Path(__file__).parent / "golden" / "sample_errors.json"

MAX_GEOMEAN_ERROR = 0.05
MIN_OPS_RATIO = 10.0


def _golden():
    return json.loads(GOLDEN.read_text())


def _cells():
    doc = _golden()
    return [
        (name, cell, doc["ops_per_thread"], doc["seed"])
        for name, cell in sorted(doc["cells"].items())
    ]


@pytest.mark.parametrize(
    "name,cell,ops,seed", _cells(), ids=[c[0] for c in _cells()]
)
def test_gate_cell(name, cell, ops, seed):
    workload, model = name.split("/")
    report = validate_sampled(
        workload, model, ops_per_thread=ops, seed=seed,
        config=SampleConfig(**cell["config"]),
    )
    # headline acceptance bounds -- these hold regardless of the golden,
    # so regenerating the golden cannot legalize a regression.
    assert report.geomean_error <= MAX_GEOMEAN_ERROR, (
        f"{name}: geomean error {report.geomean_error:.4f} exceeds "
        f"{MAX_GEOMEAN_ERROR:.0%}"
    )
    assert report.ops_ratio >= MIN_OPS_RATIO, (
        f"{name}: op-reduction {report.ops_ratio:.1f}x below "
        f"{MIN_OPS_RATIO:.0f}x"
    )
    # exact drift detection against the pinned golden.
    assert {k: round(v, 6) for k, v in sorted(report.errors.items())} \
        == cell["errors"]
    assert round(report.geomean_error, 6) == cell["geomean_error"]
    assert round(report.ops_ratio, 3) == cell["ops_ratio"]
    assert report.num_intervals == cell["num_intervals"]
    assert list(report.representatives) == cell["representatives"]


def test_golden_covers_acceptance_matrix():
    """The gate set spans multiple workloads AND multiple designs."""
    doc = _golden()
    workloads = {name.split("/")[0] for name in doc["cells"]}
    models = {name.split("/")[1] for name in doc["cells"]}
    assert len(workloads) >= 4
    assert len(models) >= 3
