"""Atomicity across crashes: recovery replay + property tests.

The tx layer's contract: after *any* crash, running :func:`repro.tx.recover`
leaves the variables in a state equal to replaying exactly the committed
transactions in serialization order.  This must hold for both durability
modes on every sound hardware model; the ORDERED mode must break on the
``ASAP_NO_UNDO`` ablation (its correctness is borrowed from the
hardware's ordering guarantee).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.tx import DurabilityMode, check_atomicity, recover
from repro.tx.scenarios import adversarial_workload, bank_workload


def crash_and_check(hardware, mode, crash_cycle, seed=1, persistency=None):
    from repro.sim.config import PersistencyModel

    heap = PMAllocator()
    programs, managers, pvars = bank_workload(heap, mode, seed=seed)
    run_config = RunConfig(
        hardware=hardware,
        persistency=persistency or PersistencyModel.RELEASE,
    )
    state = run_and_crash(
        MachineConfig(num_cores=2), run_config, programs, crash_cycle,
    )
    recovery = recover(state, managers, pvars)
    return check_atomicity(recovery, managers, initial={})


SOUND_MODELS = [
    HardwareModel.BASELINE,
    HardwareModel.HOPS,
    HardwareModel.ASAP,
    HardwareModel.EADR,
]


class TestBankAtomicity:
    @pytest.mark.parametrize("hardware", SOUND_MODELS, ids=lambda h: h.value)
    @pytest.mark.parametrize("mode", list(DurabilityMode), ids=lambda m: m.value)
    @given(
        crash_cycle=st.integers(min_value=50, max_value=25_000),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_crash_recovers_atomically(
        self, hardware, mode, crash_cycle, seed
    ):
        report = crash_and_check(hardware, mode, crash_cycle, seed)
        assert report.atomic, report.summary()

    def test_complete_run_commits_everything(self):
        report = crash_and_check(HardwareModel.ASAP, DurabilityMode.DFENCE,
                                 crash_cycle=10**8)
        assert report.atomic
        assert len(report.committed) == 24  # 2 threads x 12 txs

    def test_atomic_under_epoch_persistency_too(self):
        """The tx layer's guarantees are persistency-model independent;
        EP's extra data-conflict dependences must not break anything."""
        from repro.sim.config import PersistencyModel

        for crash_cycle in (700, 2500, 9000):
            for mode in DurabilityMode:
                report = crash_and_check(
                    HardwareModel.ASAP, mode, crash_cycle,
                    persistency=PersistencyModel.EPOCH,
                )
                assert report.atomic, report.summary()

    def test_atomic_on_vorpal(self):
        for crash_cycle in (700, 2500, 9000):
            for mode in DurabilityMode:
                report = crash_and_check(
                    HardwareModel.VORPAL, mode, crash_cycle
                )
                assert report.atomic, report.summary()

    def test_money_is_conserved_after_any_crash(self):
        """The classic invariant: transfers never create or destroy money."""
        for crash_cycle in range(500, 12_000, 1_500):
            heap = PMAllocator()
            programs, managers, pvars = bank_workload(
                heap, DurabilityMode.ORDERED, seed=3
            )
            state = run_and_crash(
                MachineConfig(num_cores=2),
                RunConfig(hardware=HardwareModel.ASAP),
                programs, crash_cycle,
            )
            recovery = recover(state, managers, pvars)
            report = check_atomicity(recovery, managers, initial={})
            assert report.atomic
            balances = [
                recovery.values[v.name] for v in pvars
                if recovery.values.get(v.name) is not None
            ]
            # accounts start (implicitly) at 100; transfers preserve the sum
            touched = len(balances)
            assert sum(balances) == 100 * touched


class TestOrderedModeNeedsOrderingHardware:
    CRASHES = list(range(50, 6000, 53))

    def _violations(self, hardware, mode):
        bad = 0
        for crash_cycle in self.CRASHES:
            heap = PMAllocator()
            programs, managers, pvars = adversarial_workload(heap, mode)
            state = run_and_crash(
                MachineConfig(num_cores=2), RunConfig(hardware=hardware),
                programs, crash_cycle,
            )
            recovery = recover(state, managers, pvars)
            if not check_atomicity(recovery, managers, initial={}).atomic:
                bad += 1
        return bad

    def test_ordered_mode_breaks_without_undo_records(self):
        """The headline failure injection: ordered commits are only as good
        as the hardware's persist ordering."""
        assert self._violations(
            HardwareModel.ASAP_NO_UNDO, DurabilityMode.ORDERED
        ) > 0

    def test_dfence_mode_safe_even_without_undo_records(self):
        assert self._violations(
            HardwareModel.ASAP_NO_UNDO, DurabilityMode.DFENCE
        ) == 0

    def test_ordered_mode_safe_on_real_asap(self):
        assert self._violations(HardwareModel.ASAP, DurabilityMode.ORDERED) == 0

    def test_ordered_mode_safe_on_hops(self):
        assert self._violations(HardwareModel.HOPS, DurabilityMode.ORDERED) == 0


class TestRecoveryMechanics:
    def test_recovery_reports_undone_transactions(self):
        heap = PMAllocator()
        programs, managers, pvars = bank_workload(
            heap, DurabilityMode.DFENCE, seed=5
        )
        state = run_and_crash(
            MachineConfig(num_cores=2), RunConfig(hardware=HardwareModel.ASAP),
            programs, 2_000,
        )
        recovery = recover(state, managers, pvars)
        # committed_seq present for both threads
        assert set(recovery.committed_seq) == {0, 1}
        # every undone record belongs to an uncommitted transaction
        for payload in recovery.undone:
            assert payload.tx_seq > recovery.committed_seq[payload.thread]

    def test_pristine_crash_recovers_to_initial(self):
        heap = PMAllocator()
        programs, managers, pvars = bank_workload(
            heap, DurabilityMode.DFENCE
        )
        state = run_and_crash(
            MachineConfig(num_cores=2), RunConfig(hardware=HardwareModel.ASAP),
            programs, 1,
        )
        recovery = recover(state, managers, pvars)
        assert recovery.committed_seq == {0: 0, 1: 0}
        report = check_atomicity(recovery, managers, initial={})
        assert report.atomic
        assert report.committed == []
