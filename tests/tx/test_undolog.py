"""Unit tests for the software transaction layer."""

import pytest

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine
from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.tx import DurabilityMode, PVar, TransactionManager
from repro.tx.undolog import CommitPayload, DataPayload, UndoPayload


@pytest.fixture
def setup():
    heap = PMAllocator()
    shared = {}
    manager = TransactionManager(heap, thread=0, shared_state=shared)
    var_a = PVar("a", heap.alloc_lines(1))
    var_b = PVar("b", heap.alloc_lines(1))
    return heap, shared, manager, var_a, var_b


class TestTransactionShape:
    def test_op_sequence(self, setup):
        _heap, _shared, manager, a, b = setup
        ops = list(manager.transaction([(a, 1), (b, 2)]))
        kinds = [type(op).__name__ for op in ops]
        # 2 undo stores, fence, 2 data stores, fence, commit store, dfence
        assert kinds == [
            "Store", "Store", "OFence", "Store", "Store", "OFence",
            "Store", "DFence",
        ]

    def test_ordered_mode_ends_with_ofence(self, setup):
        heap, shared, _m, a, _b = setup
        manager = TransactionManager(
            heap, 1, shared, mode=DurabilityMode.ORDERED
        )
        ops = list(manager.transaction([(a, 1)]))
        assert type(ops[-1]).__name__ == "OFence"

    def test_payloads_carry_tx_metadata(self, setup):
        _h, _s, manager, a, _b = setup
        ops = list(manager.transaction([(a, 42)]))
        undo = ops[0].payload
        assert isinstance(undo, UndoPayload)
        assert undo.var == "a" and undo.old_value is None
        data = ops[2].payload
        assert isinstance(data, DataPayload)
        assert data.value == 42
        commit = ops[4].payload
        assert isinstance(commit, CommitPayload)
        assert commit.tx_seq == 1

    def test_old_values_recorded(self, setup):
        _h, shared, manager, a, _b = setup
        list(manager.transaction([(a, 1)]))
        ops = list(manager.transaction([(a, 2)]))
        assert ops[0].payload.old_value == 1

    def test_empty_transaction_is_noop(self, setup):
        _h, _s, manager, _a, _b = setup
        assert list(manager.transaction([])) == []
        assert manager.records == []

    def test_records_registered_eagerly(self, setup):
        """The record must exist by the first yielded op (the commit store
        can persist while the generator is still suspended)."""
        _h, _s, manager, a, _b = setup
        gen = manager.transaction([(a, 1)])
        next(gen)  # first op requested
        assert len(manager.records) == 1
        assert manager.records[0].writes == [("a", None, 1)]

    def test_log_slots_rotate(self, setup):
        _h, _s, manager, a, b = setup
        first = list(manager.transaction([(a, 1)]))[0].addr
        second = list(manager.transaction([(b, 2)]))[0].addr
        assert first != second

    def test_serial_numbers_globally_ordered(self, setup):
        heap, shared, manager, a, b = setup
        other = TransactionManager(heap, 1, shared)
        list(manager.transaction([(a, 1)]))
        list(other.transaction([(b, 2)]))
        list(manager.transaction([(a, 3)]))
        serials = [
            r.serial for r in sorted(
                manager.records + other.records, key=lambda r: r.serial
            )
        ]
        assert serials == sorted(serials)
        assert len(set(serials)) == 3


class TestEndToEnd:
    def test_transactions_run_on_machine(self):
        heap = PMAllocator()
        shared = {}
        manager = TransactionManager(heap, 0, shared)
        a = PVar("a", heap.alloc_lines(1))
        lock = heap.alloc_lock()

        def program():
            for i in range(5):
                yield Acquire(lock)
                yield from manager.transaction([(a, i)])
                yield Release(lock)
                yield Compute(50)

        machine = Machine(
            MachineConfig(num_cores=1), RunConfig(hardware=HardwareModel.ASAP)
        )
        result = machine.run([program()])
        assert shared["a"] == 4
        assert len(manager.records) == 5
        assert result.runtime_cycles > 0
