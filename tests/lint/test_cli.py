"""The ``repro lint`` CLI: formats, output files, and gate exit codes."""

import json

import pytest

from repro.cli import main


class TestLintCli:
    def test_single_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "nstore"]) == 0
        out = capsys.readouterr().out
        assert "nstore: ok" in out

    def test_buggy_fixture_fails_gate(self, capsys):
        assert main(["lint", "buggy_demo"]) == 1
        captured = capsys.readouterr()
        assert "PL001" in captured.out
        assert "--fail-on" in captured.err

    def test_fail_on_error_ignores_warnings(self):
        # only the PL002 warning + PL003/PL005 notes remain
        assert main([
            "lint", "buggy_demo",
            "--detectors", "unpersisted-tail", "redundant-fence",
            "--fail-on", "error",
        ]) == 0

    def test_all_is_the_zero_findings_gate(self, capsys):
        assert main(["lint", "--all", "--fail-on", "note"]) == 0
        out = capsys.readouterr().out
        assert "total: 0 finding(s)" in out

    def test_sarif_output_file(self, tmp_path, capsys):
        path = tmp_path / "lint.sarif"
        assert main([
            "lint", "buggy_demo", "--format", "sarif",
            "--out", str(path),
        ]) == 1  # gate still applies when writing to a file
        doc = json.loads(path.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]
        assert f"wrote {path}" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", "nstore", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["reports"][0]["workload"] == "nstore"

    def test_no_suppress_fails_suppressed_workload(self, capsys):
        assert main(["lint", "heap"]) == 0
        assert main(["lint", "heap", "--no-suppress"]) == 1
        assert "PL001" in capsys.readouterr().out

    def test_verbose_shows_suppressions(self, capsys):
        assert main(["lint", "heap", "--verbose"]) == 0
        assert "[suppressed]" in capsys.readouterr().out

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["lint", "no_such_workload"]) == 2
        assert "no_such_workload" in capsys.readouterr().err

    def test_missing_workload_and_all_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_detector_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["lint", "nstore", "--detectors", "bogus"])
