"""Per-detector tests: one true positive and one true negative each.

True positives come from the ``buggy_demo`` fixture
(:class:`repro.workloads.buggy.BuggyDemo`), which seeds exactly one bug
per detector; true negatives come from stock workloads that are clean
for that detector by construction.
"""

import pytest

from repro.core.api import (
    CAS,
    Acquire,
    DFence,
    NewStrand,
    OFence,
    Release,
    Store,
)
from repro.lint import (
    DETECTORS,
    LintConfig,
    LintError,
    Severity,
    lint_trace,
    lint_workload,
)


@pytest.fixture(scope="module")
def buggy_report():
    return lint_workload("buggy_demo", LintConfig(threads=4))


def _hits(report, detector):
    return report.by_detector(detector)


class TestUnfencedRelease:
    def test_true_positive(self, buggy_report):
        hits = _hits(buggy_report, "unfenced-release")
        assert hits, "buggy_demo must trip PL001"
        assert all(h.severity is Severity.ERROR for h in hits)
        assert hits[0].thread == 0

    def test_true_negative_echo(self):
        # echo fences inside every critical section before releasing.
        report = lint_workload("echo", LintConfig(threads=4))
        assert not _hits(report, "unfenced-release")

    def test_fence_before_release_is_clean(self):
        lock = 0x1000_0000
        ops = [Acquire(lock), Store(0x40, 8), OFence(), Release(lock),
               DFence()]
        report = lint_trace("t", [ops])
        assert not _hits(report, "unfenced-release")

    def test_store_outside_section_not_published(self):
        # the store precedes the acquire, so the release publishes nothing
        lock = 0x1000_0000
        ops = [Store(0x40, 8), Acquire(lock), Release(lock), DFence()]
        report = lint_trace("t", [ops])
        assert not _hits(report, "unfenced-release")


class TestUnpersistedTail:
    def test_true_positive(self, buggy_report):
        hits = _hits(buggy_report, "unpersisted-tail")
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING
        # the tail store sits on the post-NewStrand strand
        assert hits[0].strand == 1

    def test_true_negative_vacation(self):
        # vacation drains its final transaction with a trailing DFence.
        report = lint_workload("vacation", LintConfig(threads=4))
        assert not _hits(report, "unpersisted-tail")

    def test_trailing_dfence_is_clean(self):
        report = lint_trace("t", [[Store(0x40, 8), DFence()]])
        assert not _hits(report, "unpersisted-tail")


class TestRedundantFence:
    def test_true_positive_both_kinds(self, buggy_report):
        hits = _hits(buggy_report, "redundant-fence")
        messages = " ".join(h.message for h in hits)
        assert "OFence" in messages and "DFence" in messages

    def test_true_negative_nstore(self):
        report = lint_workload("nstore", LintConfig(threads=4))
        assert not _hits(report, "redundant-fence")

    def test_dfence_after_ofence_with_no_new_store_is_flagged(self):
        # the ofence already ordered the store; the dfence still has a
        # non-empty durability-pending set, so only a *second* dfence
        # would be redundant.
        ops = [Store(0x40, 8), OFence(), DFence()]
        report = lint_trace("t", [ops])
        assert not _hits(report, "redundant-fence")
        ops = [Store(0x40, 8), OFence(), DFence(), DFence()]
        report = lint_trace("t", [ops])
        assert len(_hits(report, "redundant-fence")) == 1


class TestPersistRace:
    def test_true_positive(self, buggy_report):
        hits = _hits(buggy_report, "persist-race")
        assert len(hits) == 1
        assert hits[0].severity is Severity.ERROR

    def test_true_negative_p_clht(self):
        # per-bucket locks plus 16B in-bucket writes: all accesses to a
        # line share that bucket's lock.
        report = lint_workload("p_clht", LintConfig(threads=4))
        assert not _hits(report, "persist-race")

    def test_common_lock_serializes(self):
        lock = 0x1000_0000
        thread = [Acquire(lock), Store(0x40, 16), OFence(), Release(lock),
                  DFence()]
        report = lint_trace("t", [list(thread), list(thread)])
        assert not _hits(report, "persist-race")

    def test_atomic_publishes_exempt(self):
        # two unlocked single-word stores to one line: the lock-free
        # publish idiom, not a race.
        thread = [Store(0x40, 8), OFence(), DFence()]
        report = lint_trace("t", [list(thread), list(thread)])
        assert not _hits(report, "persist-race")

    def test_wide_unlocked_store_races(self):
        thread = [Store(0x40, 16), OFence(), DFence()]
        report = lint_trace("t", [list(thread), list(thread)])
        assert len(_hits(report, "persist-race")) == 1


class TestEpochShape:
    def test_true_positive_both_kinds(self, buggy_report):
        hits = _hits(buggy_report, "epoch-shape")
        messages = " ".join(h.message for h in hits)
        assert "consecutive epochs" in messages  # self-dependency chain
        assert "cache lines" in messages         # oversized epoch

    def test_true_negative_fence_latency(self):
        # one line per epoch, round-robin over 64 lines: no chains, no
        # oversized epochs.
        report = lint_workload("fence_latency", LintConfig(threads=4))
        assert not _hits(report, "epoch-shape")

    def test_short_run_below_threshold_is_clean(self):
        config = LintConfig()
        ops = []
        for _ in range(config.self_dep_min_run - 1):
            ops += [Store(0x40, 8), OFence()]
        ops += [DFence()]
        report = lint_trace("t", [ops], config)
        assert not _hits(report, "epoch-shape")


class TestCasPublish:
    def test_true_positive(self, buggy_report):
        hits = _hits(buggy_report, "cas-publish")
        assert hits, "buggy_demo must trip PL006"
        assert all(h.rule_id == "PL006" for h in hits)
        assert all(h.severity is Severity.ERROR for h in hits)

    def test_unflushed_payload_before_cas(self):
        ops = [Store(0x40, 8), CAS(0x80, 8), DFence()]
        report = lint_trace("t", [ops])
        hits = _hits(report, "cas-publish")
        assert len(hits) == 1
        assert hits[0].rule_id == "PL006"

    def test_fence_before_cas_is_clean(self):
        # the payload store is persist-ordered before the publish.
        for fence in (OFence(), DFence()):
            ops = [Store(0x40, 8), fence, CAS(0x80, 8), DFence()]
            report = lint_trace("t", [ops])
            assert not _hits(report, "cas-publish")

    def test_cas_on_payload_line_is_not_a_publish(self):
        # CAS overwriting the same line it "publishes" is a same-line
        # update, not a pointer publish: per-line persist order already
        # protects it.
        ops = [Store(0x40, 8), CAS(0x40, 8), DFence()]
        report = lint_trace("t", [ops])
        assert not _hits(report, "cas-publish")

    def test_strand_cut_resets_tracking(self):
        # cross-strand ordering is PL004/SPA territory, not PL006's.
        ops = [Store(0x40, 8), NewStrand(), CAS(0x80, 8), DFence()]
        report = lint_trace("t", [ops])
        assert not _hits(report, "cas-publish")

    def test_chained_cas_carries_forward(self):
        # an unfenced CAS joins the pending set: a second CAS publishes it.
        ops = [Store(0x40, 8), OFence(), CAS(0x80, 8), CAS(0xC0, 8),
               DFence()]
        report = lint_trace("t", [ops])
        hits = _hits(report, "cas-publish")
        assert len(hits) == 1

    def test_true_negative_stock_workloads(self):
        # no stock workload publishes via CAS at all.
        for name in ("echo", "queue"):
            report = lint_workload(name, LintConfig(threads=4))
            assert not _hits(report, "cas-publish")


class TestUnusedSuppression:
    def test_stale_suppression_flagged(self):
        from repro.lint import expand_workload, lint_stream
        from repro.workloads.registry import get_workload

        workload = get_workload("echo")
        config = LintConfig(threads=4)
        stream = expand_workload(workload, config)
        report = lint_stream(
            stream, config, {"cas-publish": "stale (docs/lint.md)"}
        )
        hits = report.by_detector("unused-suppression")
        assert len(hits) == 1
        assert hits[0].rule_id == "PL000"
        assert hits[0].severity is Severity.NOTE
        assert "cas-publish" in hits[0].message

    def test_matching_suppression_not_flagged(self):
        from repro.lint import expand_workload, lint_stream
        from repro.workloads.registry import get_workload

        workload = get_workload("buggy_demo")
        config = LintConfig(threads=4)
        stream = expand_workload(workload, config)
        report = lint_stream(
            stream, config, {"cas-publish": "known (docs/lint.md)"}
        )
        assert not report.by_detector("unused-suppression")
        assert [f.detector for f, _ in report.suppressed] == ["cas-publish"]

    def test_suppression_for_disabled_detector_not_judged(self):
        from repro.lint import expand_workload, lint_stream
        from repro.workloads.registry import get_workload

        workload = get_workload("echo")
        config = LintConfig(threads=4, detectors=["unfenced-release"])
        stream = expand_workload(workload, config)
        report = lint_stream(
            stream, config, {"cas-publish": "not judged this pass"}
        )
        assert not report.by_detector("unused-suppression")


class TestDetectorSelection:
    def test_only_requested_detectors_run(self):
        config = LintConfig(threads=4, detectors=["unpersisted-tail"])
        report = lint_workload("buggy_demo", config)
        assert {f.detector for f in report.findings} == {"unpersisted-tail"}

    def test_unknown_detector_rejected(self):
        with pytest.raises(LintError, match="unknown detector"):
            lint_workload("buggy_demo", LintConfig(detectors=["nope"]))

    def test_registry_has_all_six(self):
        assert set(DETECTORS) == {
            "unfenced-release",
            "unpersisted-tail",
            "redundant-fence",
            "persist-race",
            "epoch-shape",
            "cas-publish",
        }
