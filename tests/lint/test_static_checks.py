"""Run ruff / mypy --strict over ``src/repro/lint`` when available.

CI installs both tools and runs them as a dedicated job (see
``.github/workflows/ci.yml``); this test gives the same signal locally
for environments that have them, and skips cleanly where they are not
installed (the simulation toolchain does not depend on either).
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed")
def test_ruff_clean_on_typed_packages():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src/repro/lint",
         "src/repro/workloads", "src/repro/sim", "src/repro/bench",
         "src/repro/axiom", "src/repro/litmus", "src/repro/report",
         "src/repro/exp", "src/repro/fabric",
         "tests/lint", "tests/bench", "tests/axiom", "tests/litmus",
         "tests/report", "tests/exp", "tests/fabric"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed")
@pytest.mark.parametrize(
    "package", ["src/repro/lint", "src/repro/sim", "src/repro/bench",
                "src/repro/axiom", "src/repro/litmus", "src/repro/report",
                "src/repro/exp", "src/repro/fabric"]
)
def test_mypy_strict_on_typed_packages(package):
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", package],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
