"""Renderers: SARIF 2.1.0 shape, JSON document, and text output."""

import json

import pytest

from repro.lint import (
    LintConfig,
    RULES,
    lint_all,
    lint_workload,
    render_text,
    to_json,
    to_sarif,
)
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME, dumps


@pytest.fixture(scope="module")
def buggy_reports():
    report = lint_workload("buggy_demo", LintConfig(threads=4))
    return [report]


class TestSarif:
    def test_document_shape(self, buggy_reports):
        doc = to_sarif(buggy_reports)
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION
        assert len(doc["runs"]) == 1
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert {r["id"] for r in driver["rules"]} == {
            rule.id for rule in RULES.values()
        }

    def test_results_reference_registered_rules(self, buggy_reports):
        doc = to_sarif(buggy_reports)
        rule_ids = {
            r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        results = doc["runs"][0]["results"]
        assert results, "buggy_demo must yield SARIF results"
        for result in results:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1
            assert result["properties"]["workload"] == "buggy_demo"

    def test_sources_map_to_repo_relative_uris(self):
        reports, sources = lint_all(
            ["buggy_demo"], LintConfig(threads=4)
        )
        doc = to_sarif(reports, sources)
        uri = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == "src/repro/workloads/buggy.py"

    def test_document_is_json_serializable(self, buggy_reports):
        text = dumps(to_sarif(buggy_reports))
        assert json.loads(text)["version"] == SARIF_VERSION

    def test_clean_suite_produces_valid_empty_run(self):
        reports, sources = lint_all(["nstore"], LintConfig(threads=2))
        doc = to_sarif(reports, sources)
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]


class TestJson:
    def test_totals_and_report_keys(self, buggy_reports):
        doc = to_json(buggy_reports)
        assert doc["tool"] == TOOL_NAME
        assert doc["total_findings"] == len(buggy_reports[0].findings)
        entry = doc["reports"][0]
        assert entry["workload"] == "buggy_demo"
        for finding in entry["findings"]:
            assert {"rule", "detector", "severity", "message"} <= set(
                finding
            )

    def test_suppressed_carry_reasons(self):
        report = lint_workload("heap", LintConfig(threads=4))
        doc = to_json([report])
        assert doc["total_suppressed"] == len(report.suppressed)
        assert all(
            s["suppressed_reason"]
            for s in doc["reports"][0]["suppressed"]
        )


class TestText:
    def test_findings_rendered_with_severity_and_hint(self, buggy_reports):
        text = render_text(buggy_reports)
        assert "buggy_demo:" in text
        assert "[ERROR] PL001 unfenced-release" in text
        assert "hint:" in text
        assert text.strip().endswith("1 workload(s) linted")

    def test_verbose_shows_suppression_reasons(self):
        report = lint_workload("heap", LintConfig(threads=4))
        quiet = render_text([report])
        loud = render_text([report], verbose=True)
        assert "reason:" not in quiet
        assert "reason:" in loud and "[suppressed]" in loud
