"""The stock suite is lint-clean: the CI gate's zero-findings baseline.

Every finding in a registered workload is either a real bug (fixed) or
carries a documented suppression on the workload class -- so the gate
must see zero unsuppressed findings at the *strictest* threshold, and
every suppression must be real (re-surfacing under ``no_suppress``) and
documented (non-empty reason naming docs/lint.md).
"""

import pytest

from repro.lint import (
    DETECTORS,
    LintConfig,
    Severity,
    lint_all,
    lint_workload,
    stock_workload_names,
)
from repro.workloads.registry import FIXTURES, MICROBENCHES, SUITE


@pytest.fixture(scope="module")
def gate_reports():
    reports, sources = lint_all(config=LintConfig(threads=4))
    return reports, sources


class TestZeroFindingsBaseline:
    def test_gate_set_is_suite_plus_microbenches(self):
        expected = [c.name for c in SUITE] + [c.name for c in MICROBENCHES]
        assert stock_workload_names() == expected

    def test_fixtures_excluded_from_gate(self):
        names = set(stock_workload_names())
        for cls in FIXTURES:
            assert cls.name not in names

    def test_zero_findings_at_strictest_threshold(self, gate_reports):
        reports, _ = gate_reports
        dirty = {
            r.workload: [f.to_dict() for f in r.findings]
            for r in reports
            if not r.ok(Severity.NOTE)
        }
        assert not dirty, f"stock suite must be lint-clean: {dirty}"

    def test_every_stock_workload_linted(self, gate_reports):
        reports, _ = gate_reports
        assert [r.workload for r in reports] == stock_workload_names()
        assert all(r.ops_scanned > 0 for r in reports)

    def test_sources_resolved_for_sarif(self, gate_reports):
        _, sources = gate_reports
        for name, (path, line) in sources.items():
            assert path and path.endswith(".py"), name
            assert line and line > 0, name


class TestSuppressions:
    def test_suppressed_findings_keep_reasons(self, gate_reports):
        reports, _ = gate_reports
        suppressing = [r for r in reports if r.suppressed]
        assert suppressing, "ATLAS workloads must record suppressions"
        for report in suppressing:
            for finding, reason in report.suppressed:
                assert "docs/lint.md" in reason, (
                    f"{report.workload}: suppression reasons must point "
                    f"at the documentation"
                )
                assert finding.detector in DETECTORS

    def test_no_suppress_resurfaces_findings(self):
        kept = lint_workload("heap", LintConfig(threads=4))
        raw = lint_workload(
            "heap", LintConfig(threads=4, no_suppress=True)
        )
        assert not kept.findings and kept.suppressed
        assert len(raw.findings) == len(kept.suppressed)
        assert not raw.suppressed

    def test_declared_suppressions_name_real_detectors(self):
        for cls in SUITE + MICROBENCHES + FIXTURES:
            for detector, reason in cls.lint_suppressions.items():
                assert detector in DETECTORS, (
                    f"{cls.name} suppresses unknown detector {detector!r}"
                )
                assert reason.strip(), f"{cls.name}: empty reason"

    def test_suppression_only_hides_matching_detector(self):
        # heap suppresses only unfenced-release; a different detector's
        # findings (none expected, but the mechanism matters) would pass
        # through.  Verify via the fixture: suppressing one detector on
        # it leaves the other four findings intact.
        from repro.lint import expand_workload, lint_stream
        from repro.workloads.registry import get_workload

        workload = get_workload("buggy_demo")
        config = LintConfig(threads=4)
        stream = expand_workload(workload, config)
        report = lint_stream(
            stream, config, {"unfenced-release": "testing (docs/lint.md)"}
        )
        assert {f.detector for f in report.findings} == {
            "unpersisted-tail",
            "redundant-fence",
            "persist-race",
            "epoch-shape",
            "cas-publish",
        }
        assert [f.detector for f, _ in report.suppressed] == [
            "unfenced-release"
        ]
