"""Stream expansion and annotation: the static context detectors rely on."""

import pytest

from repro.core.api import (
    Acquire,
    DFence,
    NewStrand,
    OFence,
    Release,
    Store,
)
from repro.lint import LintConfig, LintError, expand_workload
from repro.lint.stream import store_lines, stream_from_ops
from repro.workloads.base import LINE, Workload
from repro.workloads.registry import get_workload


class TestStoreLines:
    def test_single_line(self):
        assert store_lines(Store(0, 8)) == [0]
        assert store_lines(Store(LINE - 8, 8)) == [0]

    def test_line_crossing(self):
        assert store_lines(Store(LINE - 8, 16)) == [0, 1]
        assert store_lines(Store(0, 256)) == [0, 1, 2, 3]

    def test_zero_size_still_touches_its_line(self):
        assert store_lines(Store(LINE, 0)) == [1]


class TestAnnotation:
    def _stream(self, ops):
        return stream_from_ops("t", [ops]).threads[0]

    def test_epoch_ts_starts_at_one_and_fences_bump(self):
        ops = [Store(0, 8), OFence(), Store(0, 8), DFence(), Store(0, 8)]
        ts = [a.epoch_ts for a in self._stream(ops).ops]
        assert ts == [1, 1, 2, 2, 3]

    def test_newstrand_bumps_strand_and_epoch(self):
        ops = [Store(0, 8), NewStrand(), Store(0, 8)]
        annotated = self._stream(ops).ops
        assert [a.strand for a in annotated] == [0, 0, 1]
        assert annotated[-1].epoch_ts == 2

    def test_lockset_covers_release_but_not_after(self):
        lock = 0x1000_0000
        ops = [Acquire(lock), Store(0, 8), Release(lock), Store(0, 8)]
        annotated = self._stream(ops).ops
        assert annotated[1].locks_held == frozenset({lock})
        # the release op itself still holds the lock...
        assert annotated[2].locks_held == frozenset({lock})
        # ...but the next op does not.
        assert annotated[3].locks_held == frozenset()

    def test_nested_locks(self):
        a, b = 0x1000_0000, 0x1000_0001
        ops = [Acquire(a), Acquire(b), Store(0, 8), Release(b), Store(0, 8)]
        annotated = self._stream(ops).ops
        assert annotated[2].locks_held == frozenset({a, b})
        assert annotated[4].locks_held == frozenset({a})


class TestExpansion:
    def test_expansion_matches_thread_count(self):
        stream = expand_workload(
            get_workload("cceh"), LintConfig(threads=3)
        )
        assert len(stream.threads) == 3
        assert stream.num_ops() > 0

    def test_expansion_is_deterministic(self):
        config = LintConfig(threads=2)
        a = expand_workload(get_workload("queue", seed=3), config)
        b = expand_workload(get_workload("queue", seed=3), config)
        ops_a = [(x.index, repr(x.op)) for t in a.threads for x in t.ops]
        ops_b = [(x.index, repr(x.op)) for t in b.threads for x in t.ops]
        assert ops_a == ops_b

    def test_runaway_generator_guarded(self):
        class Runaway(Workload):
            name = "runaway"

            def programs(self, heap, num_threads):
                def forever():
                    while True:
                        yield Store(0, 8)

                return [forever() for _ in range(num_threads)]

        with pytest.raises(LintError, match="exceeded"):
            expand_workload(
                Runaway(), LintConfig(threads=1, max_ops_per_thread=100)
            )

    def test_broken_programs_reported(self):
        class Broken(Workload):
            name = "broken"

            def programs(self, heap, num_threads):
                raise RuntimeError("boom")

        with pytest.raises(LintError, match="failed to build"):
            expand_workload(Broken(), LintConfig(threads=1))

    def test_source_location_captured(self):
        stream = expand_workload(get_workload("nstore"), LintConfig())
        assert stream.source_file.endswith("whisper.py")
        assert stream.source_line > 0
