"""Built-in event sinks.

A sink receives every :class:`~repro.obs.events.Event` the tracer emits.
Sinks must be passive: they may record, count, and serialize, but they
must never call back into simulator components or the engine -- the
determinism guarantee (traced and untraced runs produce byte-identical
statistics) depends on it.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.events import Event, EventType, StallReason


class EventSink:
    """Interface every sink implements."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/finalize; called once at the end of a traced run."""


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory (all of them if None).

    The unbounded form doubles as the capture buffer for timeline export;
    the bounded form is the "flight recorder" used when only the tail of
    a long run matters.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.total_seen = 0

    def handle(self, event: Event) -> None:
        self._events.append(event)
        self.total_seen += 1

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JSONLSink(EventSink):
    """Write each event as one JSON object per line.

    Accepts a path (opened and owned by the sink) or any text file
    object (borrowed; not closed).  Keys are emitted sorted so the
    output is byte-deterministic for a deterministic simulation.
    """

    def __init__(self, target: Union[str, os.PathLike, io.TextIOBase]) -> None:
        if isinstance(target, (str, os.PathLike)):
            self.path: Optional[pathlib.Path] = pathlib.Path(target)
            self._fh = self.path.open("w", encoding="utf-8")
            self._owns = True
        else:
            self.path = None
            self._fh = target
            self._owns = False
        self.lines_written = 0

    def handle(self, event: Event) -> None:
        json.dump(event.to_dict(), self._fh, sort_keys=True,
                  separators=(",", ":"))
        self._fh.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class StallProfiler(EventSink):
    """Roll stall cycles up per reason / core / epoch / component.

    Attribution happens on ``STALL_END`` events, whose ``dur`` carries
    the interval length in cycles.  Because components emit those events
    at exactly the code sites that increment the registry's stall
    counters (with the same amounts), the per-reason totals here are
    conserved against the registry -- ``total(PB_FULL) ==
    stats.total("cyclesStalled")`` and so on per
    :data:`~repro.obs.events.REASON_COUNTERS`.  The property suite
    enforces this for every model.
    """

    def __init__(self) -> None:
        #: reason -> total attributed cycles.
        self.by_reason: Dict[StallReason, int] = {}
        #: (core, reason) -> cycles.
        self.by_core: Dict[Tuple[Optional[int], StallReason], int] = {}
        #: (core, epoch, reason) -> cycles.
        self.by_epoch: Dict[
            Tuple[Optional[int], Optional[int], StallReason], int
        ] = {}
        #: (component, reason) -> cycles.
        self.by_component: Dict[Tuple[str, StallReason], int] = {}
        #: event type -> occurrence count (every event, not just stalls).
        self.counts: Dict[EventType, int] = {}
        self.events_seen = 0

    def handle(self, event: Event) -> None:
        self.events_seen += 1
        self.counts[event.type] = self.counts.get(event.type, 0) + 1
        if event.type is not EventType.STALL_END:
            return
        dur = event.dur or 0
        reason = event.reason
        assert reason is not None, "STALL_END must carry a reason"
        self.by_reason[reason] = self.by_reason.get(reason, 0) + dur
        core_key = (event.core, reason)
        self.by_core[core_key] = self.by_core.get(core_key, 0) + dur
        epoch_key = (event.core, event.epoch, reason)
        self.by_epoch[epoch_key] = self.by_epoch.get(epoch_key, 0) + dur
        comp_key = (event.comp, reason)
        self.by_component[comp_key] = self.by_component.get(comp_key, 0) + dur

    # -- queries ------------------------------------------------------------

    def total(self, reason: StallReason) -> int:
        """Total cycles attributed to ``reason`` across the machine."""
        return self.by_reason.get(reason, 0)

    def core_total(self, core: int, reason: StallReason) -> int:
        return self.by_core.get((core, reason), 0)

    def epoch_totals(self) -> Dict[Tuple[int, int], Dict[str, int]]:
        """(core, epoch) -> {reason value: cycles}, for the breakdown."""
        out: Dict[Tuple[int, int], Dict[str, int]] = {}
        for (core, epoch, reason), cycles in self.by_epoch.items():
            key = (core if core is not None else -1,
                   epoch if epoch is not None else -1)
            out.setdefault(key, {})[reason.value] = (
                out.get(key, {}).get(reason.value, 0) + cycles
            )
        return out

    def summary(self) -> Dict[str, object]:
        """Plain-JSON (and picklable) rollup; what a traced
        :class:`~repro.exp.spec.RunSpec` attaches to its result."""
        return {
            "totals": {
                reason.value: cycles
                for reason, cycles in sorted(
                    self.by_reason.items(), key=lambda kv: kv[0].value
                )
            },
            "by_core": {
                f"{core}": {
                    reason.value: cycles
                    for (c, reason), cycles in sorted(
                        self.by_core.items(),
                        key=lambda kv: (str(kv[0][0]), kv[0][1].value),
                    )
                    if c == core
                }
                for core in sorted(
                    {c for (c, _r) in self.by_core}, key=lambda c: (c is None, c)
                )
            },
            "by_epoch": {
                f"{core}:{epoch}": {
                    reason.value: cycles
                    for (c, e, reason), cycles in sorted(
                        self.by_epoch.items(),
                        key=lambda kv: (
                            str(kv[0][0]), str(kv[0][1]), kv[0][2].value
                        ),
                    )
                    if c == core and e == epoch
                }
                for (core, epoch) in sorted(
                    {(c, e) for (c, e, _r) in self.by_epoch},
                    key=lambda ce: (str(ce[0]), str(ce[1])),
                )
            },
            "by_component": {
                comp: {
                    reason.value: cycles
                    for (cm, reason), cycles in sorted(
                        self.by_component.items(),
                        key=lambda kv: (kv[0][0], kv[0][1].value),
                    )
                    if cm == comp
                }
                for comp in sorted({cm for (cm, _r) in self.by_component})
            },
            "event_counts": {
                etype.value: n
                for etype, n in sorted(
                    self.counts.items(), key=lambda kv: kv[0].value
                )
            },
            "events_seen": self.events_seen,
        }


__all__ = ["EventSink", "JSONLSink", "RingBufferSink", "StallProfiler"]
