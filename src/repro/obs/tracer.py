"""The Tracer: the one object components emit events through.

A :class:`Tracer` binds the simulation engine (for timestamps) to a list
of sinks.  Components hold an *optional* tracer -- ``None`` by default --
and guard every emission with a single ``is not None`` check; that check
is the entire cost of the observability layer when tracing is off (the
zero-overhead-when-off contract, see DESIGN.md).

The tracer itself never schedules engine events, never touches the
statistics registry, and never mutates component state: it is a pure
observer, which is what makes the tracing on/off determinism guarantee
(byte-identical stats files) hold by construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.obs.events import Event, EventType, StallReason
from repro.obs.sinks import EventSink
from repro.sim.engine import Engine


class Tracer:
    """Stamps events with the current cycle and fans them out to sinks."""

    __slots__ = ("engine", "sinks")

    def __init__(self, engine: Engine, sinks: Iterable[EventSink]) -> None:
        self.engine = engine
        self.sinks: List[EventSink] = list(sinks)

    def emit(
        self,
        type: EventType,
        comp: str,
        *,
        core: Optional[int] = None,
        mc: Optional[int] = None,
        epoch: Optional[int] = None,
        line: Optional[int] = None,
        reason: Optional[StallReason] = None,
        dur: Optional[int] = None,
        kind: Optional[str] = None,
        value: Optional[int] = None,
    ) -> None:
        """Deliver one event, stamped at ``engine.now``, to every sink."""
        event = Event(
            cycle=self.engine.now,
            type=type,
            comp=comp,
            core=core,
            mc=mc,
            epoch=epoch,
            line=line,
            reason=reason,
            dur=dur,
            kind=kind,
            value=value,
        )
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink (flush files, finalize summaries)."""
        for sink in self.sinks:
            sink.close()


__all__ = ["Tracer"]
