"""Typed simulator events and the stall-reason taxonomy.

An :class:`Event` is one observation: something a hardware component did
at one cycle.  Events are plain frozen-ish data (a slotted dataclass of
ints, strings, and enums) so sinks can serialize them cheaply and the
whole stream stays deterministic and picklable.

The JSONL schema (:meth:`Event.to_dict`) is deliberately small and
stable -- short keys, optional fields dropped -- because trace files for
real workloads run to millions of lines.  The golden tests in
``tests/obs`` pin it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class EventType(enum.Enum):
    """Every kind of observation a component may emit."""

    #: a core fetched its next op (the preceding op retired).
    OP_RETIRED = "op_retired"
    #: a store entered the persist buffer (``value`` = new occupancy).
    PB_ENQUEUE = "pb_enqueue"
    #: a store coalesced into an existing same-line same-epoch entry.
    PB_COALESCE = "pb_coalesce"
    #: the PB issued a safe flush to a controller.
    PB_FLUSH = "pb_flush"
    #: the PB issued an *early* (speculative) flush (ASAP's early bit).
    PB_SPEC_FLUSH = "pb_spec_flush"
    #: a flush was ACKed; the entry left the buffer (``value`` = occupancy).
    PB_ACK = "pb_ack"
    #: a flush was NACKed (recovery table full); entry held for retry.
    PB_NACK = "pb_nack"
    #: a stall interval opened (``reason`` says why).
    STALL_BEGIN = "stall_begin"
    #: a stall interval closed (``dur`` = cycles lost, same ``reason``).
    STALL_END = "stall_end"
    #: a core entered a dfence.
    DFENCE_BEGIN = "dfence_begin"
    #: the dfence's ordering requirement was met; the core resumes.
    DFENCE_END = "dfence_end"
    #: a cross-thread (or cross-strand) persist dependency was recorded.
    DEP_ESTABLISHED = "dep_established"
    #: a dependency was resolved (CDR received / poll succeeded).
    DEP_RESOLVED = "dep_resolved"
    #: an epoch committed and retired from the epoch table.
    EPOCH_COMMIT = "epoch_commit"
    #: a flush packet reached a memory controller (``kind``: early/safe).
    MC_FLUSH = "mc_flush"
    #: a commit message was processed at a memory controller.
    MC_COMMIT = "mc_commit"
    #: a WPQ entry drained to the media (``value`` = remaining entries).
    WPQ_DRAIN = "wpq_drain"
    #: an undo record was created in a recovery table.
    UNDO_CREATE = "undo_create"
    #: a delay record was created in a recovery table.
    DELAY_CREATE = "delay_create"
    #: a private-cache eviction was held in the write-back buffer.
    WBB_HOLD = "wbb_hold"
    #: held lines were released by the PB's head advancing (``value`` = n).
    WBB_RELEASE = "wbb_release"
    #: a crash-sweep campaign adjudicated one crash point (``kind`` =
    #: "ok"/"violation", ``value`` = number of violations; emitted by
    #: :mod:`repro.crashtest`, not by the simulator).
    CRASH_POINT = "crash_point"
    #: the fabric scheduler moved one task (``kind`` = "submit"/"done"/
    #: "error", ``value`` = tasks still pending; emitted by
    #: :mod:`repro.fabric`, not by the simulator).
    FABRIC_TASK = "fabric_task"
    #: the fabric stole a dead/expired lease (``value`` = retry count).
    FABRIC_LEASE = "fabric_lease"
    #: fabric worker-pool lifecycle (``kind`` = "spawn"/"death"/
    #: "respawn"/"chaos-kill").
    FABRIC_WORKER = "fabric_worker"


class StallReason(enum.Enum):
    """Why cycles were lost; the attribution key of the profiler.

    Each reason with a cycle-denominated registry counter is *conserved*
    against it (see :data:`REASON_COUNTERS`); ``ET_FULL`` intervals are
    traced for the timeline but have no cycle counter in the registry
    (only the ``et_full_stalls`` occurrence count exists).
    """

    #: the core stalled on a full persist buffer.
    PB_FULL = "pb_full"
    #: the core stalled at a dfence (durability fence).
    DFENCE = "dfence"
    #: the core stalled at an sfence drain (baseline's ofence/release).
    SFENCE = "sfence"
    #: the PB held waiting entries but ordering forbade flushing any.
    PB_BLOCKED = "pb_blocked"
    #: a fence waited for epoch-table space (Section VI-A).
    ET_FULL = "et_full"


#: StallReason -> the registry counter its attributed cycles must sum to.
REASON_COUNTERS: Dict[StallReason, str] = {
    StallReason.PB_FULL: "cyclesStalled",
    StallReason.DFENCE: "dfenceStalled",
    StallReason.SFENCE: "sfenceStalled",
    StallReason.PB_BLOCKED: "cyclesBlocked",
}


@dataclass
class Event:
    """One observation at one simulated cycle.

    Only ``cycle``, ``type`` and ``comp`` are always present; the rest
    are optional and dropped from the serialized form when ``None``.
    """

    __slots__ = (
        "cycle", "type", "comp", "core", "mc", "epoch", "line",
        "reason", "dur", "kind", "value",
    )

    #: simulated time (CPU cycles) at which the event fired.
    cycle: int
    type: EventType
    #: emitting component ("core", "pb", "et", "mc", "rt", "wpq", "wbb").
    comp: str
    #: core index, for per-core / per-thread attribution.
    core: Optional[int]
    #: memory-controller index, for controller-side events.
    mc: Optional[int]
    #: epoch timestamp the event belongs to (per-core numbering).
    epoch: Optional[int]
    #: cache-line address, for data-movement events.
    line: Optional[int]
    #: stall taxonomy entry, for STALL_BEGIN / STALL_END.
    reason: Optional[StallReason]
    #: duration in cycles (STALL_END carries the interval length).
    dur: Optional[int]
    #: free-form discriminator ("early"/"safe", op class name, ...).
    kind: Optional[str]
    #: small integer payload (occupancy levels, release counts, ...).
    value: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        """The stable JSONL form: short keys, ``None`` fields dropped."""
        out: Dict[str, object] = {
            "t": self.cycle,
            "ev": self.type.value,
            "comp": self.comp,
        }
        if self.core is not None:
            out["core"] = self.core
        if self.mc is not None:
            out["mc"] = self.mc
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.line is not None:
            out["line"] = self.line
        if self.reason is not None:
            out["reason"] = self.reason.value
        if self.dur is not None:
            out["dur"] = self.dur
        if self.kind is not None:
            out["kind"] = self.kind
        if self.value is not None:
            out["value"] = self.value
        return out


__all__ = ["Event", "EventType", "REASON_COUNTERS", "StallReason"]
