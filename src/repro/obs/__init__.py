"""`repro.obs` -- structured event tracing for the simulator.

The paper's evaluation is an exercise in *cycle attribution*: Figure 3
splits execution into persist-buffer stalls, dfence stalls, and blocked
flushes; Figures 11 and 12 need to know which epoch and which component
was responsible.  The aggregate counters in :mod:`repro.sim.stats` can
answer "how many cycles were lost" but not "where" -- this package adds
the missing layer.

Components emit typed :class:`~repro.obs.events.Event` objects through a
:class:`~repro.obs.tracer.Tracer` into pluggable
:class:`~repro.obs.sinks.EventSink` implementations:

- :class:`~repro.obs.sinks.JSONLSink` -- one JSON object per line, the
  stable on-disk schema (golden-tested);
- :class:`~repro.obs.sinks.RingBufferSink` -- bounded (or unbounded)
  in-memory capture for programmatic inspection and timeline export;
- :class:`~repro.obs.sinks.StallProfiler` -- rolls stall cycles up per
  reason / per core / per epoch / per component.  Its per-reason totals
  are *conserved*: they sum exactly to the registry's ``cyclesStalled``,
  ``dfenceStalled``, ``sfenceStalled`` and ``cyclesBlocked`` counters
  (a hypothesis property test locks this down).

**Zero-overhead-when-off contract**: a machine built without sinks has
``tracer is None`` everywhere, every emission site is guarded by a
single ``is not None`` check, and tracing never touches the statistics
registry or schedules engine events -- so a traced run produces
byte-identical stats to an untraced one (see DESIGN.md).

Timeline export (:func:`~repro.obs.chrome.chrome_trace`) converts a
captured event stream into Chrome Trace Event Format, viewable in
``chrome://tracing`` or https://ui.perfetto.dev; the CLI surfaces it as
``repro timeline <workload> --model <model>``.
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.events import (
    Event,
    EventType,
    REASON_COUNTERS,
    StallReason,
)
from repro.obs.sinks import (
    EventSink,
    JSONLSink,
    RingBufferSink,
    StallProfiler,
)
from repro.obs.tracer import Tracer

__all__ = [
    "Event",
    "EventSink",
    "EventType",
    "JSONLSink",
    "REASON_COUNTERS",
    "RingBufferSink",
    "StallProfiler",
    "StallReason",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
]
