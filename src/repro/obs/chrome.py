"""Chrome Trace Event Format export.

Converts a captured event stream into the JSON the Chrome tracing UI
(``chrome://tracing``) and Perfetto (https://ui.perfetto.dev) load
directly: a ``{"traceEvents": [...]}`` object whose entries carry the
required ``ph`` (phase), ``ts`` (microsecond timestamp), ``pid`` and
``tid`` fields.

Mapping:

- ``STALL_END`` intervals become complete slices (``ph: "X"``) named
  ``stall:<reason>`` spanning the stalled cycles;
- persist-buffer / WPQ occupancy samples become counter tracks
  (``ph: "C"``) so buffer pressure is visible as an area chart;
- everything else becomes an instant event (``ph: "i"``);
- process/thread naming metadata (``ph: "M"``) labels cores as threads
  of the "cores" process and controllers as threads of the "memory
  controllers" process.

Timestamps convert cycles to microseconds at the simulated clock
(2 GHz => 2000 cycles per us) and the output is sorted by ``ts``, so
timestamps are monotonic -- both golden-tested.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.obs.events import Event, EventType
from repro.sim.engine import CPU_FREQ_GHZ

#: process ids for the three lanes of the trace.
PID_CORES = 0
PID_MCS = 1
PID_SYSTEM = 2

#: event types rendered as counter tracks (buffer occupancy levels).
_COUNTER_EVENTS = {
    EventType.PB_ENQUEUE,
    EventType.PB_ACK,
    EventType.WPQ_DRAIN,
}


def _ts_us(cycle: int, freq_ghz: float) -> float:
    """Simulated cycle -> trace timestamp in microseconds."""
    return cycle / (freq_ghz * 1000.0)


def _pid_tid(event: Event) -> tuple:
    if event.core is not None:
        return PID_CORES, event.core
    if event.mc is not None:
        return PID_MCS, event.mc
    return PID_SYSTEM, 0


def _args(event: Event) -> Dict[str, object]:
    args: Dict[str, object] = {"comp": event.comp}
    if event.epoch is not None:
        args["epoch"] = event.epoch
    if event.line is not None:
        args["line"] = event.line
    if event.kind is not None:
        args["kind"] = event.kind
    if event.value is not None:
        args["value"] = event.value
    return args


def chrome_trace(
    events: Iterable[Event], freq_ghz: float = CPU_FREQ_GHZ
) -> Dict[str, object]:
    """Build the Chrome-trace JSON object for an event stream."""
    trace: List[Dict[str, object]] = []
    seen_pids: Dict[int, set] = {}

    for event in events:
        pid, tid = _pid_tid(event)
        seen_pids.setdefault(pid, set()).add(tid)
        if event.type is EventType.STALL_BEGIN:
            # The matching STALL_END renders the whole interval.
            continue
        if event.type is EventType.STALL_END:
            dur = event.dur or 0
            trace.append({
                "name": f"stall:{event.reason.value}",
                "cat": "stall",
                "ph": "X",
                "ts": _ts_us(event.cycle - dur, freq_ghz),
                "dur": _ts_us(dur, freq_ghz) if dur else 0.0,
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })
        elif event.type in _COUNTER_EVENTS and event.value is not None:
            name = (
                f"pb{event.core} occupancy"
                if event.core is not None
                else f"wpq{event.mc} occupancy"
            )
            trace.append({
                "name": name,
                "cat": "occupancy",
                "ph": "C",
                "ts": _ts_us(event.cycle, freq_ghz),
                "pid": pid,
                "tid": tid,
                "args": {"occupancy": event.value},
            })
        else:
            trace.append({
                "name": event.type.value,
                "cat": event.comp,
                "ph": "i",
                "s": "t",
                "ts": _ts_us(event.cycle, freq_ghz),
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })

    trace.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))

    meta: List[Dict[str, object]] = []
    process_names = {
        PID_CORES: "cores",
        PID_MCS: "memory controllers",
        PID_SYSTEM: "system",
    }
    for pid in sorted(seen_pids):
        meta.append({
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": 0,
            "args": {"name": process_names.get(pid, f"pid{pid}")},
        })
        prefix = {PID_CORES: "core", PID_MCS: "mc"}.get(pid, "lane")
        for tid in sorted(seen_pids[pid]):
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{prefix}{tid}"},
            })

    return {
        "traceEvents": meta + trace,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.obs", "cpu_freq_ghz": freq_ghz},
    }


def write_chrome_trace(
    events: Iterable[Event],
    path: Union[str, pathlib.Path],
    freq_ghz: float = CPU_FREQ_GHZ,
) -> pathlib.Path:
    """Write the Chrome-trace JSON for ``events``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(events, freq_ghz), indent=1))
    return path


__all__ = ["chrome_trace", "write_chrome_trace", "PID_CORES", "PID_MCS",
           "PID_SYSTEM"]
