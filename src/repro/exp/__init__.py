"""`repro.exp` -- the experiment-execution subsystem.

Everything that runs a *grid* of simulations (the CLI's ``compare``,
every figure benchmark, ``scripts/reproduce_results.py``) goes through
this package:

- :class:`RunSpec` (:mod:`repro.exp.spec`) -- one fully-specified cell:
  workload, model, machine, knobs, seed.  Content-hashable and
  picklable.
- :class:`ExperimentPlan` / :func:`run_plan` (:mod:`repro.exp.plan`) --
  expand a grid into cells and execute them through a pluggable
  executor, consulting the cache first.
- :class:`SerialExecutor` / :class:`ParallelExecutor`
  (:mod:`repro.exp.executors`) -- in-process or ``--jobs N`` process
  fan-out; identical results either way.
- :class:`ResultCache` (:mod:`repro.exp.cache`) -- content-addressed
  on-disk store; re-running a suite skips already-computed cells.
- :func:`run_grid` -- the one-call driver returning a
  :class:`SweepResult` with the figures' normalization helpers.
"""

from repro.exp.cache import ResultCache, SupportsKey
from repro.exp.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WorkerDiedError,
    make_executor,
)
from repro.exp.plan import (
    ExperimentPlan,
    PlanResult,
    SweepResult,
    run_grid,
    run_plan,
)
from repro.exp.spec import RunSpec, execute_spec

__all__ = [
    "Executor",
    "ExperimentPlan",
    "ParallelExecutor",
    "PlanResult",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "SupportsKey",
    "SweepResult",
    "WorkerDiedError",
    "execute_spec",
    "make_executor",
    "run_grid",
    "run_plan",
]
