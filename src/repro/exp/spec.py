"""Fully-specified experiment cells.

A :class:`RunSpec` pins down everything that determines one simulation
run: the workload (by canonical registry name), the evaluated design
(a :class:`~repro.core.models.ModelSpec`), the machine, the per-run
knobs, and the seed.  Two properties make the whole `repro.exp`
subsystem work:

1. **Content addressability** -- :meth:`RunSpec.key` hashes every field
   that can influence the result, so an on-disk cache entry is valid iff
   its key matches (see :mod:`repro.exp.cache`).
2. **Process portability** -- a spec is a frozen dataclass of plain
   values (names, enums, frozen configs), so it pickles cleanly into a
   ``ProcessPoolExecutor`` worker and back.

``RunSpec`` is *the* one way to build a run: it accepts a workload name
or class and a model name or spec, and it threads ``seed`` /
``ops_per_thread`` / ``num_threads`` uniformly into both the workload
RNG and the simulator's :class:`~repro.sim.config.RunConfig` (the old
``sweep()`` path seeded only the workload).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Type, Union

from repro.core.models import ModelSpec, resolve_model
from repro.sim.config import MachineConfig, RunConfig
from repro.workloads.base import Workload, WorkloadResult, run_workload
from repro.workloads.registry import get_workload

#: Bump whenever the simulator's semantics change in a way that
#: invalidates previously cached results (it participates in the key).
SPEC_SCHEMA_VERSION = 1


def _resolve_workload_name(workload: Union[str, Type[Workload]]) -> str:
    """Normalize a workload class or name to its canonical registry name."""
    if isinstance(workload, str):
        get_workload(workload)  # raises KeyError with the available names
        return workload
    if isinstance(workload, type) and issubclass(workload, Workload):
        name = workload.name
        registered = type(get_workload(name))
        if registered is not workload:
            raise ValueError(
                f"workload class {workload.__name__} is not the registered "
                f"implementation of {name!r}; register it in "
                "repro.workloads.registry before building a RunSpec"
            )
        return name
    raise TypeError(f"workload must be a name or Workload class: {workload!r}")


def _jsonable(value: Any) -> Any:
    """Reduce a config value to deterministic JSON-serializable form."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot key a RunSpec containing {value!r}")


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified cell of an experiment grid."""

    workload: str
    model: ModelSpec
    machine: MachineConfig = dataclasses.field(default_factory=MachineConfig)
    ops_per_thread: Optional[int] = None
    num_threads: Optional[int] = None
    seed: int = 7
    #: run with structured event tracing and attach a stall-attribution
    #: summary to the result (see :mod:`repro.obs`).  Participates in the
    #: cache key only when True, so every pre-existing untraced key is
    #: unchanged.
    events: bool = False

    def __init__(
        self,
        workload: Union[str, Type[Workload]],
        model: Union[str, ModelSpec],
        machine: Optional[MachineConfig] = None,
        ops_per_thread: Optional[int] = None,
        num_threads: Optional[int] = None,
        seed: int = 7,
        events: bool = False,
    ) -> None:
        object.__setattr__(self, "workload", _resolve_workload_name(workload))
        object.__setattr__(self, "model", resolve_model(model))
        object.__setattr__(self, "machine", machine or MachineConfig())
        object.__setattr__(self, "ops_per_thread", ops_per_thread)
        object.__setattr__(self, "num_threads", num_threads)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "events", bool(events))

    # -- construction helpers ---------------------------------------------

    def build_workload(self) -> Workload:
        return get_workload(
            self.workload, ops_per_thread=self.ops_per_thread, seed=self.seed
        )

    def run_config(self) -> RunConfig:
        # seed flows into the simulator too, so workload RNG and
        # simulator RNG always agree (the historical sweep() bug).
        return self.model.run_config(seed=self.seed)

    # -- identity -----------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Deterministic, JSON-serializable identity of this spec.

        The model's display name is deliberately excluded: ``hops`` and
        ``hops_rp`` are the same design and must share a cache entry.
        """
        d: Dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "workload": self.workload,
            "hardware": self.model.hardware.value,
            "persistency": self.model.persistency.value,
            "machine": _jsonable(self.machine),
            "run_config": _jsonable(self.run_config()),
            "ops_per_thread": self.ops_per_thread,
            "num_threads": self.num_threads,
            "seed": self.seed,
        }
        # Added conditionally so every untraced spec keeps the key it had
        # before tracing existed (cached results stay valid).
        if self.events:
            d["events"] = True
        return d

    def key(self) -> str:
        """Content hash identifying the result this spec produces."""
        payload = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        return f"{self.workload}/{self.model.name}@seed{self.seed}"

    # -- execution ----------------------------------------------------------

    def execute(self) -> WorkloadResult:
        """Run this cell to completion in the current process.

        When :attr:`events` is set, the run is traced through a
        :class:`repro.obs.StallProfiler` and the profiler's summary is
        attached as ``result.obs`` (a plain dict, so the result still
        pickles and caches).
        """
        if not self.events:
            return run_workload(
                self.build_workload(),
                self.machine,
                self.run_config(),
                num_threads=self.num_threads,
            )
        from repro.obs import StallProfiler

        profiler = StallProfiler()
        result = run_workload(
            self.build_workload(),
            self.machine,
            self.run_config(),
            num_threads=self.num_threads,
            sinks=[profiler],
        )
        result.obs = profiler.summary()
        return result


def execute_spec(spec: RunSpec) -> WorkloadResult:
    """Module-level trampoline so executors can ship specs to workers."""
    return spec.execute()


__all__ = ["RunSpec", "SPEC_SCHEMA_VERSION", "execute_spec"]
