"""Pluggable execution backends for experiment plans.

An executor maps a pure function over a list of items and returns the
results *in input order*.  Implementations:

- :class:`SerialExecutor` -- runs in-process, one item at a time.  Zero
  overhead; the default, and the reference semantics.
- :class:`ParallelExecutor` -- fans items out over a
  ``concurrent.futures.ProcessPoolExecutor`` with ``jobs`` workers.
  Simulation cells are CPU-bound pure Python, so processes (not threads)
  are the only way to use more than one core.
- :class:`repro.fabric.executor.FabricExecutor` -- the fault-tolerant
  distributed fabric; same :class:`Executor` protocol, survives worker
  death (where :class:`ParallelExecutor` raises
  :class:`WorkerDiedError`).

Because every cell is deterministic given its :class:`~repro.exp.spec.
RunSpec`, the executors are interchangeable: same plan, same results,
different wall-clock (see ``tests/exp/test_determinism.py``).
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Protocol, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class Executor(Protocol):
    """What plan/campaign/litmus drivers require of an execution backend."""

    jobs: int

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        ...


class WorkerDiedError(RuntimeError):
    """A pool worker died (SIGKILL, OOM) before returning its results.

    The process-pool backend cannot tell which items finished, so the
    whole ``map`` is lost.  Re-run, or use the fabric executor
    (``--fabric``), which retries the affected cells automatically.
    """


class SerialExecutor:
    """Run every item in the calling process, in order."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan items out across ``jobs`` worker processes.

    ``fn`` and every item must be picklable (RunSpec and WorkloadResult
    are, by design).  Results come back in input order regardless of
    completion order, so parallel runs are drop-in replacements for
    serial ones.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs or os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        # A pool wider than the work list just burns fork latency.
        workers = min(self.jobs, len(items))
        if workers == 1:
            return [fn(item) for item in items]
        # Chunk to amortize per-task IPC, but keep at least ~4 chunks per
        # worker in flight so uneven cell runtimes still balance.
        chunksize = max(1, len(items) // (workers * 4))
        with concurrent.futures.ProcessPoolExecutor(workers) as pool:
            try:
                return list(pool.map(fn, items, chunksize=chunksize))
            except BrokenProcessPool as exc:
                raise WorkerDiedError(
                    f"a worker process died while mapping {len(items)} "
                    f"items over {workers} workers; partial results were "
                    f"discarded (use the fabric executor for automatic "
                    f"retry)"
                ) from exc

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def make_executor(jobs: Optional[int] = None) -> Executor:
    """``jobs`` semantics shared by the CLI and the drivers:

    ``None``/``0``/``1`` -> serial; ``N > 1`` -> N worker processes.
    """
    if jobs is None or jobs in (0, 1):
        return SerialExecutor()
    return ParallelExecutor(jobs)


__all__ = [
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "WorkerDiedError",
    "make_executor",
]
