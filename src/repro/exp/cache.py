"""Deterministic on-disk result cache.

Results are stored content-addressed: the filename is the
:meth:`~repro.exp.spec.RunSpec.key` SHA-256 of the spec, so a cache
entry can never be served for a spec it does not exactly match (any
change to the machine config, model, workload, knobs, or seed changes
the key).  Each entry is the pickled :class:`~repro.workloads.base.
WorkloadResult` plus a human-readable ``.json`` sidecar describing the
spec that produced it.

Writes are atomic (tmp file + ``os.replace``), so concurrent workers
and concurrent *processes* may share one cache directory: the worst
case is two processes computing the same cell and one harmlessly
overwriting the other's identical entry.

Because every simulation is deterministic given its spec, a cache hit
is indistinguishable from a fresh run -- same ``runtime_cycles``, same
stats, same epoch log.  The determinism suite asserts this.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import tempfile
from typing import Any, Dict, Optional, Protocol, Union


class SupportsKey(Protocol):
    """Any content-hashable spec the cache can store results under.

    :class:`~repro.exp.spec.RunSpec`, :class:`~repro.crashtest.campaign.
    CrashPointSpec` and :class:`~repro.litmus.spec.LitmusSpec` all
    satisfy this, which is what lets one cache directory act as the
    fabric's shared store across every task kind.
    """

    def key(self) -> str: ...

    def describe(self) -> Dict[str, Any]: ...

    def label(self) -> str: ...


class ResultCache:
    """Content-addressed store of completed experiment cells."""

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- paths --------------------------------------------------------------

    def _result_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def _meta_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def __contains__(self, spec: SupportsKey) -> bool:
        return self._result_path(spec.key()).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))

    # -- access -------------------------------------------------------------

    def get(self, spec: SupportsKey) -> Optional[Any]:
        """Return the cached result for ``spec``, or None on a miss.

        A corrupt/truncated entry (e.g. a killed writer on a filesystem
        without atomic replace) is treated as a miss and removed.
        """
        path = self._result_path(spec.key())
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # pickle.load raises opcode-dependent exceptions on garbage
            # bytes (ValueError, UnpicklingError, EOFError, ...); any
            # unreadable entry degrades to a miss and is evicted.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: SupportsKey, result: Any) -> None:
        key = spec.key()
        self._atomic_write(
            self._result_path(key), pickle.dumps(result, protocol=4)
        )
        meta = dict(spec.describe(), label=spec.label())
        self._atomic_write(
            self._meta_path(key),
            json.dumps(meta, sort_keys=True, indent=2).encode("utf-8"),
        )

    def _atomic_write(self, path: pathlib.Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Drop every entry; returns the number of results removed."""
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
        return removed


__all__ = ["ResultCache", "SupportsKey"]
