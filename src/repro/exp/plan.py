"""Experiment plans: build a grid of cells, execute, aggregate.

The lifecycle every driver (CLI ``compare``, the figure benchmarks,
``scripts/reproduce_results.py``) now shares:

1. :meth:`ExperimentPlan.grid` expands workloads x models (x seeds) into
   fully-specified :class:`~repro.exp.spec.RunSpec` cells.
2. :func:`run_plan` executes the cells through a pluggable executor
   (serial or process fan-out), consulting an optional
   :class:`~repro.exp.cache.ResultCache` first.  Cells are independent,
   so wall clock under ``jobs=N`` approaches the slowest cell, not the
   sum.
3. :class:`SweepResult` aggregates (workload, model) cells with the
   normalization helpers the figures are written against (speedups,
   geomeans, stat extraction).

``analysis.sweeps.sweep()`` survives as a thin shim over steps 1-3.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

from repro.core.models import ModelSpec, resolve_model
from repro.exp.cache import ResultCache
from repro.exp.executors import Executor, make_executor
from repro.exp.spec import RunSpec, execute_spec
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload, WorkloadResult

WorkloadRef = Union[str, Type[Workload]]
ModelRef = Union[str, ModelSpec]
CacheRef = Union[ResultCache, str, "os.PathLike[str]"]


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered list of fully-specified cells."""

    specs: Tuple[RunSpec, ...]

    def __init__(self, specs: Sequence[RunSpec]) -> None:
        object.__setattr__(self, "specs", tuple(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    @classmethod
    def grid(
        cls,
        workloads: Sequence[WorkloadRef],
        models: Sequence[ModelRef],
        machine: Optional[MachineConfig] = None,
        ops_per_thread: Optional[int] = None,
        num_threads: Optional[int] = None,
        seeds: Sequence[int] = (7,),
    ) -> "ExperimentPlan":
        """Expand workloads x models x seeds, workload-major (the order
        every figure presents its bars in)."""
        machine = machine or MachineConfig()
        specs = [
            RunSpec(
                workload,
                model,
                machine=machine,
                ops_per_thread=ops_per_thread,
                num_threads=num_threads,
                seed=seed,
            )
            for workload in workloads
            for model in models
            for seed in seeds
        ]
        return cls(specs)


@dataclass
class PlanResult:
    """Results of a plan run, in plan order, plus execution accounting."""

    plan: ExperimentPlan
    results: List[WorkloadResult]
    cache_hits: int = 0
    cache_misses: int = 0

    def __iter__(self) -> Iterator[Tuple[RunSpec, WorkloadResult]]:
        return iter(zip(self.plan.specs, self.results))

    def __len__(self) -> int:
        return len(self.results)


def run_plan(
    plan: ExperimentPlan,
    jobs: Optional[int] = None,
    cache: Optional[CacheRef] = None,
    executor: Optional[Executor] = None,
) -> PlanResult:
    """Execute every cell of ``plan``; return results in plan order.

    Cached cells are served without touching the executor; only misses
    are fanned out.  ``executor`` overrides ``jobs`` when given.
    """
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    executor = executor or make_executor(jobs)

    results: List[Optional[WorkloadResult]] = [None] * len(plan)
    pending: List[Tuple[int, RunSpec]] = []
    hits = 0
    if cache is not None:
        for index, spec in enumerate(plan.specs):
            found = cache.get(spec)
            if found is not None:
                results[index] = found
                hits += 1
            else:
                pending.append((index, spec))
    else:
        pending = list(enumerate(plan.specs))

    if pending:
        fresh = executor.map(execute_spec, [spec for _, spec in pending])
        for (index, spec), result in zip(pending, fresh):
            results[index] = result
            if cache is not None:
                cache.put(spec, result)

    return PlanResult(
        plan=plan,
        results=results,  # type: ignore[arg-type]  # every slot is filled
        cache_hits=hits,
        cache_misses=len(pending),
    )


# ---------------------------------------------------------------------------
# grid aggregation (the figures' view of a plan)
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Results of one workload x model sweep."""

    workloads: List[str]
    models: List[str]
    #: (workload, model) -> full run result.
    runs: Dict[Tuple[str, str], WorkloadResult] = field(default_factory=dict)

    def runtime(self, workload: str, model: str) -> int:
        return self.runs[(workload, model)].runtime_cycles

    def speedup(self, workload: str, model: str, over: str = "baseline") -> float:
        return self.runtime(workload, over) / self.runtime(workload, model)

    def speedups(self, model: str, over: str = "baseline") -> List[float]:
        return [self.speedup(w, model, over) for w in self.workloads]

    def geomean_speedup(self, model: str, over: str = "baseline") -> float:
        values = self.speedups(model, over)
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    def stat(self, workload: str, model: str, name: str) -> int:
        return self.runs[(workload, model)].stats.total(name)


def run_grid(
    workloads: Sequence[WorkloadRef],
    models: Sequence[ModelRef],
    machine: Optional[MachineConfig] = None,
    ops_per_thread: Optional[int] = None,
    num_threads: Optional[int] = None,
    seed: int = 7,
    jobs: Optional[int] = None,
    cache: Optional[CacheRef] = None,
    executor: Optional[Executor] = None,
) -> SweepResult:
    """Run every workload under every model; the standard figure driver.

    The returned :class:`SweepResult` keys runs by the *display* names
    of the workloads and models given, so callers that label designs
    ``hops``/``asap`` keep their labels while sharing cache entries with
    ``hops_rp``/``asap_rp`` runs.
    """
    plan = ExperimentPlan.grid(
        workloads,
        models,
        machine=machine,
        ops_per_thread=ops_per_thread,
        num_threads=num_threads,
        seeds=(seed,),
    )
    outcome = run_plan(plan, jobs=jobs, cache=cache, executor=executor)
    model_specs = [resolve_model(m) for m in models]
    result = SweepResult(
        workloads=[
            w if isinstance(w, str) else w.name for w in workloads
        ],
        models=[m.name for m in model_specs],
    )
    for spec, run in outcome:
        result.runs[(spec.workload, spec.model.name)] = run
    return result


__all__ = [
    "ExperimentPlan",
    "PlanResult",
    "SweepResult",
    "run_grid",
    "run_plan",
]
