"""The paper's contribution: speculative persistence hardware models.

This package implements ASAP itself (persist buffers, epoch tables,
recovery tables with undo/delay records, eager flushing, commit/CDR
protocol) plus the designs it is evaluated against: the Intel
clwb+sfence baseline, HOPS with conservative flushing and global-TS
polling, and the eADR/BBB ideal.

Entry point: :class:`repro.core.machine.Machine` assembles a full system
and runs workload thread programs written against :mod:`repro.core.api`.
"""

from repro.core.api import (
    CAS,
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    Op,
    PMAllocator,
    Release,
    Store,
)
from repro.core.machine import Machine, RunResult
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
    TABLE_II_CONFIG,
)

__all__ = [
    "Acquire",
    "CAS",
    "Compute",
    "DFence",
    "HardwareModel",
    "Load",
    "Machine",
    "MachineConfig",
    "OFence",
    "Op",
    "PMAllocator",
    "PersistencyModel",
    "Release",
    "RunConfig",
    "RunResult",
    "Store",
    "TABLE_II_CONFIG",
]
