"""Crash injection and post-crash memory reconstruction.

Section V-E: on a power failure, the memory controllers drain their WPQs,
write the undo-record values on top (unwinding speculative updates), and
discard delay records.  :func:`crash_machine` models exactly that sequence
against a machine stopped at an arbitrary cycle and returns the surviving
memory image, which the checker in :mod:`repro.verify.consistency`
validates against the run's epoch log.

This is the reproduction's machine-checked version of the paper's
Theorem 2 ("when the system recovers from a crash, memory is in a
consistent state"): instead of a paper proof, the property tests crash
every model at randomized instants and assert the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.sim.config import HardwareModel, MachineConfig, RunConfig
from repro.core.api import Program
from repro.core.epoch import EpochLog
from repro.core.machine import Machine


@dataclass
class CrashState:
    """What survived the crash."""

    #: cycle at which power was lost.
    crash_cycle: int
    #: line -> surviving write id (0 / absent = pristine).
    media: Dict[int, int]
    log: EpochLog
    run_config: RunConfig

    def surviving_value(self, line: int) -> int:
        return self.media.get(line, 0)

    def surviving_payload(self, line: int, default: object = None) -> object:
        """Logical payload of the write that survived on ``line``."""
        write_id = self.surviving_value(line)
        if write_id == 0:
            return default
        return self.log.payloads.get(write_id, default)


def crash_machine(machine: Machine) -> CrashState:
    """Apply the power-fail sequence to a stopped machine."""
    hardware = machine.run_config.hardware
    if hardware is HardwareModel.EADR:
        # eADR flushes the entire cache hierarchy: every write that ever
        # executed is durable.
        media = machine.log.newest_write_per_line()
    else:
        media = {}
        for mc in machine.mcs:
            media.update(mc.crash_drain())
    return CrashState(
        crash_cycle=machine.engine.now,
        media=media,
        log=machine.log,
        run_config=machine.run_config,
    )


def run_and_crash(
    config: MachineConfig,
    run_config: RunConfig,
    programs: Iterable[Program],
    crash_cycle: int,
) -> CrashState:
    """Build a machine, run it, and lose power at ``crash_cycle``.

    If the workload finishes (and the system drains) before the crash
    cycle, the returned state is simply the final memory image.
    """
    machine = Machine(config, run_config)
    machine.run_until(programs, crash_cycle)
    return crash_machine(machine)


__all__ = ["CrashState", "crash_machine", "run_and_crash"]
