"""The simulated machine: cores, caches, persistence paths, controllers.

:class:`Machine` assembles a full system for one hardware model and one
persistency model, runs a set of thread programs (generators of
:mod:`repro.core.api` ops), and produces a :class:`RunResult` with the
execution time, the statistics registry, and the semantic
:class:`~repro.core.epoch.EpochLog` that the crash-consistency checker
consumes.

The machine is also where the two persistency models differ
(Section IV-A):

- **epoch persistency**: every private-cache miss that hits a line whose
  last writer is another core with an uncommitted epoch establishes a
  cross-thread dependency (strong persist atomicity), and lock transfers
  do too;
- **release persistency**: only lock transfers (acquire synchronizing
  with a release) establish dependencies.

Dependence establishment follows Section IV-E: the *source* thread closed
its epoch at the release (or is closed by the coherence request), the
*dependent* thread opens a new epoch carrying the dependency, and the
pair is recorded in the epoch log as a DAG edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.obs.events import EventType
from repro.obs.tracer import Tracer
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.sim.engine import Engine, ns_to_cycles
from repro.sim.stats import StatsRegistry
from repro.mem.controller import (
    CommitMessage,
    FlushPacket,
    FlushResponse,
    MemoryController,
    ResponseKind,
)
from repro.mem.interleave import AddressMap
from repro.coherence.bloom import CountingBloomFilter
from repro.coherence.cache import Cache, CacheHierarchy
from repro.coherence.directory import OwnerInfo
from repro.coherence.mesi import MESIDirectory
from repro.coherence.wbb import WriteBackBuffer
from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    Op,
    Program,
    Release,
    Store,
)
from repro.core.epoch import EpochId, EpochLog
from repro.core.epoch_table import GlobalTSRegister
from repro.core.models import (
    ASAPNoUndoPath,
    ASAPPath,
    BaselinePath,
    EADRPath,
    HOPSPath,
    PersistencePath,
    Transport,
    VorpalPath,
)
from repro.core.recovery_table import RecoveryTable
from repro.core.vorpal import VorpalCoordinator

class _PauseSentinel:
    """Singleton a program may yield instead of an op to park its core.

    The sampling pipeline's skip-wrappers yield it at measurement-window
    boundaries: the wrapper knows exactly where a window ends (it tracks
    lock depth and fast-forward position op by op), so letting it signal
    the barrier is race-free where a precomputed executed-op target is
    not -- the wrapper's dynamic lock deferral can legally shift window
    edges after the target was computed.  A pause does not count as a
    retired op.  :meth:`Machine.continue_to_pause` resumes the core
    after the op that preceded the sentinel."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "PAUSE"


PAUSE = _PauseSentinel()


class _YieldTurnSentinel:
    """Singleton a program may yield to round-robin with other cores.

    Costs :attr:`Machine.yield_turn_cycles` cycles (default zero) and no
    retired op: the core's advance is re-scheduled, behind whatever the
    other cores
    have queued.  The sampling pipeline's skip-wrappers yield it between
    warming chunks so that functional fast-forward interleaves across
    cores -- warming a core's whole gap in one synchronous burst skews
    MESI ownership of write-shared lines toward whichever core warmed
    last, which the measured windows then pay for as spurious misses."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "YIELD_TURN"


YIELD_TURN = _YieldTurnSentinel()

#: Fixed issue cost of a store (latency is hidden by the OoO core; what
#: is *not* hidden -- persist-buffer back-pressure -- is modelled).
STORE_ISSUE_CYCLES = 1
#: Fixed cost of an ofence/dfence instruction itself (stalls are extra).
FENCE_ISSUE_CYCLES = 2


@dataclass
class _Lock:
    holder: Optional[int] = None
    waiters: List["_CoreUnit"] = field(default_factory=list)
    #: (core, epoch ts) of the most recent release, for dependence checks.
    last_release: Optional[EpochId] = None


#: memoized ``type(op).__name__.lower()`` (traced path only).
_OP_KINDS: Dict[type, str] = {}


def _op_kind(op: Op) -> str:
    cls = type(op)
    kind = _OP_KINDS.get(cls)
    if kind is None:
        kind = cls.__name__.lower()
        _OP_KINDS[cls] = kind
    return kind


class _CoreUnit:
    """Drives one thread program through the event engine."""

    __slots__ = ("machine", "index", "program", "finished", "finish_time",
                 "ops_executed", "parked", "park_time", "ops_target",
                 "_tracer", "_dispatch", "ofence_counter", "dfence_counter")

    def __init__(self, machine: "Machine", index: int, program: Program) -> None:
        self.machine = machine
        self.index = index
        self.program = program
        self.finished = False
        self.finish_time: Optional[int] = None
        self.ops_executed = 0
        #: set by the machine's barrier machinery: park (stop fetching)
        #: once ``ops_executed`` reaches this count.  -1 parks immediately
        #: (the cycle-barrier sentinel); None runs unhindered.
        self.ops_target: Optional[int] = None
        self.parked = False
        #: cycle at which the core last parked (straggler-skew-free
        #: window timing for the sampling pipeline; not serialized).
        self.park_time: Optional[int] = None
        # Snapshot the hot collaborators: cores are built after the tracer
        # is attached, so `advance` pays one local load instead of two
        # attribute chains per retired op.
        self._tracer = machine.tracer
        self._dispatch = machine.dispatch
        #: per-core fence counters, bound on first fence (see Machine).
        self.ofence_counter = None
        self.dfence_counter = None

    def start(self) -> None:
        self.machine.engine.schedule(0, self.advance)

    def advance(self) -> None:
        target = self.ops_target
        if target is not None and self.ops_executed >= target:
            self.machine._park(self)
            return
        try:
            op = next(self.program)
        except StopIteration:
            self._end()
            return
        if op is PAUSE:
            self.machine._park(self)
            return
        if op is YIELD_TURN:
            self.machine.engine.schedule(
                self.machine.yield_turn_cycles, self.advance
            )
            return
        self.ops_executed += 1
        retire_order = self.machine._retire_order
        if retire_order is not None:
            retire_order.append(self.index)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                EventType.OP_RETIRED, "core", core=self.index,
                kind=_op_kind(op),
            )
        self._dispatch(self, op)

    def _end(self) -> None:
        path = self.machine.paths[self.index]

        def done() -> None:
            self.finished = True
            self.finish_time = self.machine.engine.now
            self.machine._core_finished()

        path.on_program_end(done)


@dataclass
class RunResult:
    """Everything a run produced."""

    #: cycle at which the last core retired its last instruction.
    runtime_cycles: int
    #: cycle at which the last background flush drained.
    drain_cycles: int
    stats: StatsRegistry
    log: EpochLog
    config: RunConfig
    per_core_runtime: List[int] = field(default_factory=list)
    ops_executed: int = 0

    @property
    def runtime_ns(self) -> float:
        return self.runtime_cycles / 2.0  # 2 GHz

    def table_vi(self) -> Dict[str, int]:
        return self.stats.table_vi()


class Machine:
    """A full simulated system for one (hardware, persistency) pair."""

    def __init__(
        self,
        config: MachineConfig,
        run_config: Optional[RunConfig] = None,
        sinks: Optional[Iterable[object]] = None,
    ) -> None:
        self.config = config
        self.run_config = run_config or RunConfig()
        self.engine = Engine()
        #: Observability tracer (None unless event sinks were supplied;
        #: every emission site guards on ``tracer is not None`` so the
        #: untraced fast path stays a single attribute check).
        sinks = list(sinks) if sinks is not None else []
        self.tracer: Optional[Tracer] = (
            Tracer(self.engine, sinks) if sinks else None
        )
        self.stats = StatsRegistry()
        self.amap = AddressMap(
            config.num_mcs, config.interleave_bytes, config.l1.line_bytes
        )
        self.log = EpochLog()
        self.directory = MESIDirectory(config.num_cores, self.stats)
        self._next_write_id = 1
        self._locks: Dict[int, _Lock] = {}
        self._noc_cycles = ns_to_cycles(config.noc_latency_ns)
        self._flush_transit_cycles = ns_to_cycles(config.pb_flush_ns)
        if self.run_config.hardware is HardwareModel.BASELINE:
            self._flush_transit_cycles += ns_to_cycles(config.clwb_extra_ns)
        self._coherence_extra = ns_to_cycles(config.coherence_extra_ns)
        self._lock_cycles = ns_to_cycles(config.lock_access_ns)
        self._mem_read_cycles = ns_to_cycles(config.nvm.read_latency_ns)
        self._inflight_flushes: Dict[int, object] = {}
        self._next_flush_seq = 1
        self._cores_running = 0
        self._crashed = False
        #: indices of parked cores, in parking order -- resuming them in
        #: this order reproduces the event sequence an uninterrupted
        #: barrier run would have produced.
        self._parked_order: List[int] = []
        #: cycles charged per :data:`YIELD_TURN` (default free).  The
        #: sampling pipeline sets this nonzero so that warmed gaps
        #: advance simulated time: events carried over from the previous
        #: measured window (epoch commits, persist-buffer flush timers)
        #: then fire mid-gap instead of being frozen until the next
        #: window and polluting its deltas with phantom stalls.
        self.yield_turn_cycles = 0
        #: pause-barrier mode: stop the engine (without draining) the
        #: moment every core is parked or finished.
        self._halt_when_parked = False
        #: global op-retirement order (core index per retired op), recorded
        #: only in checkpoint mode.  Workload generators may share mutable
        #: state across threads, so restoring generator-internal state
        #: requires replaying ``next()`` calls in the original global
        #: interleaving, not per-core.
        self._retire_order: Optional[List[int]] = None

        hardware = self.run_config.hardware
        self.vorpal = (
            VorpalCoordinator(
                self.engine,
                config.num_cores,
                self.stats,
                config.vorpal_broadcast_cycles,
            )
            if hardware is HardwareModel.VORPAL
            else None
        )
        self._build_controllers(hardware)
        self._build_paths(hardware)
        self._build_caches()
        if self.tracer is not None:
            self._attach_tracer()
        #: concrete op type -> handler; insertion order mirrors the old
        #: isinstance chain (see :meth:`dispatch`).
        self._op_handlers: Dict[type, Callable[[_CoreUnit, Op], None]] = {
            Store: self._do_store,
            Load: self._do_load,
            Compute: self._do_compute,
            OFence: self._do_ofence,
            DFence: self._do_dfence,
            Acquire: self._do_acquire,
            Release: self._do_release,
            NewStrand: self._do_new_strand,
        }
        self.cores: List[_CoreUnit] = []

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def _build_controllers(self, hardware: HardwareModel) -> None:
        self.mcs: List[MemoryController] = []
        self.recovery_tables: List[Optional[RecoveryTable]] = []
        needs_rt = hardware is HardwareModel.ASAP
        for index in range(self.config.num_mcs):
            rt = (
                RecoveryTable(
                    self.engine,
                    self.config.rt_entries,
                    self.stats,
                    scope=f"mc{index}",
                )
                if needs_rt
                else None
            )
            bloom = (
                CountingBloomFilter(self.config.bloom_bits, self.config.bloom_hashes)
                if needs_rt
                else None
            )
            mc = MemoryController(
                self.engine,
                self.config,
                self.stats,
                index,
                recovery_table=rt,
                bloom_filter=bloom,
            )
            mc.respond = self._route_response
            mc.vorpal = self.vorpal
            self.mcs.append(mc)
            self.recovery_tables.append(rt)

    def _build_paths(self, hardware: HardwareModel) -> None:
        self.paths: List[PersistencePath] = []
        self.global_ts = GlobalTSRegister(
            self.stats, self.engine, self.config.hops_poll_access_cycles
        )
        for core in range(self.config.num_cores):
            transport = Transport(
                flush=self._make_flush_sender(core),
                commit=self._send_commit,
                cdr=self._send_cdr,
            )
            if hardware is HardwareModel.BASELINE:
                path: PersistencePath = BaselinePath(
                    self.engine, self.config, self.stats, core, transport
                )
            elif hardware is HardwareModel.HOPS:
                path = HOPSPath(
                    self.engine, self.config, self.stats, core, transport,
                    self.global_ts,
                )
            elif hardware is HardwareModel.ASAP:
                path = ASAPPath(
                    self.engine, self.config, self.stats, core, transport
                )
                path._mc_of = self.amap.mc_of_line
            elif hardware is HardwareModel.ASAP_NO_UNDO:
                path = ASAPNoUndoPath(
                    self.engine, self.config, self.stats, core, transport
                )
                path._mc_of = self.amap.mc_of_line
            elif hardware is HardwareModel.VORPAL:
                path = VorpalPath(
                    self.engine, self.config, self.stats, core, transport,
                    self.vorpal,
                )
            elif hardware is HardwareModel.EADR:
                path = EADRPath(self.engine, self.config, self.stats, core)
            else:
                raise ValueError(f"unknown hardware model: {hardware}")
            self.paths.append(path)

    def _build_caches(self) -> None:
        self.llc = Cache(self.config.llc, self.stats, scope="llc")
        self.hierarchies: List[CacheHierarchy] = []
        self.wbbs: List[WriteBackBuffer] = []
        for core in range(self.config.num_cores):
            scope = f"core{core}"
            wbb = WriteBackBuffer(self.config.wbb_entries, self.stats, scope)
            self.wbbs.append(wbb)
            hierarchy = CacheHierarchy(
                l1=Cache(self.config.l1, self.stats, scope=f"{scope}.l1"),
                l2=Cache(self.config.l2, self.stats, scope=f"{scope}.l2"),
                llc=self.llc,
                memory_latency=self._demand_read_latency,
                on_private_eviction=self._make_private_eviction(core),
                on_llc_eviction=self._llc_eviction,
            )
            self.hierarchies.append(hierarchy)
            path = self.paths[core]
            if path.has_persist_buffer:
                path.pb.on_head_advance = self._make_head_advance(core)

    def _attach_tracer(self) -> None:
        """Wire the tracer into every component that emits events.

        Components default to ``tracer = None``; this keeps construction
        free of observability arguments and makes the traced/untraced
        decision a single post-assembly pass."""
        tracer = self.tracer
        for path in self.paths:
            path.attach_tracer(tracer)
        for mc in self.mcs:
            mc.tracer = tracer
            mc.wpq.tracer = tracer
            mc.wpq.mc = mc.index
            if mc.recovery_table is not None:
                mc.recovery_table.tracer = tracer
                mc.recovery_table.mc = mc.index
        for core, wbb in enumerate(self.wbbs):
            wbb.tracer = tracer
            wbb.core = core

    def _demand_read_latency(self, line: int) -> int:
        self.stats.inc("pm_demand_reads")
        return self._mem_read_cycles

    def _make_private_eviction(self, core: int) -> Callable[[int, bool], None]:
        def on_evict(line: int, dirty: bool) -> None:
            # The core's copy leaves the private caches: drop its MESI
            # state so the next access issues a real directory request.
            self.directory.evict(core, line)
            # Section V-F: an eviction of a line whose writes are still in
            # the persist buffer is held in the write-back buffer.
            path = self.paths[core]
            if dirty and path.has_persist_buffer and path.pb.contains_line(line):
                seqs = [e.seq for e in path.pb.entries if e.line == line]
                self.wbbs[core].hold(line, max(seqs))

        return on_evict

    def _make_head_advance(self, core: int) -> Callable[[int], None]:
        def on_advance(oldest_seq: int) -> None:
            released = self.wbbs[core].release_upto(oldest_seq - 1)
            if released:
                self.stats.inc("wbb_released", len(released), scope=f"core{core}")

        return on_advance

    def _llc_eviction(self, line: int, dirty: bool) -> None:
        # PM lines are dropped on LLC eviction (the persist path owns
        # durability).  If the line has a NACKed flush pending, the bloom
        # filter at its controller delays the eviction (Section V-F).
        mc = self.mcs[self.amap.mc_of_line(line)]
        if mc.bloom_filter is not None and line in mc.bloom_filter:
            self.stats.inc("llc_evictions_delayed")

    # ------------------------------------------------------------------
    # interconnect
    # ------------------------------------------------------------------

    def _make_flush_sender(self, core: int):
        def send(entry) -> None:
            seq = self._next_flush_seq
            self._next_flush_seq = seq + 1
            self._inflight_flushes[seq] = (core, entry)
            packet = FlushPacket(
                line=entry.line,
                write_id=entry.write_id,
                core=core,
                epoch_ts=entry.epoch_ts,
                early=entry.issued_early,
                seq=seq,
            )
            mc = self.mcs[self.amap.mc_of_line(entry.line)]
            # Table II: flush = 60 ns -- the PB -> MC transit of the packet.
            self.engine.schedule(
                self._flush_transit_cycles, lambda: mc.receive_flush(packet)
            )

        return send

    def _route_response(self, response: FlushResponse) -> None:
        core, entry = self._inflight_flushes.pop(response.packet.seq)
        pb = self.paths[core].pb

        def deliver() -> None:
            if response.kind is ResponseKind.ACK:
                pb.handle_ack(entry)
            else:
                pb.handle_nack(entry)

        self.engine.schedule(self._noc_cycles, deliver)

    def _send_commit(
        self, mc_index: int, core: int, epoch_ts: int, on_ack: Callable[[], None]
    ) -> None:
        mc = self.mcs[mc_index]
        message = CommitMessage(
            core=core,
            epoch_ts=epoch_ts,
            on_ack=lambda: self.engine.schedule(self._noc_cycles, on_ack),
        )
        self.engine.schedule(self._noc_cycles, lambda: mc.receive_commit(message))

    def _send_cdr(self, dependent: EpochId) -> None:
        core, ts = dependent
        path = self.paths[core]
        self.engine.schedule(
            self._noc_cycles, lambda: path.et.resolve_dep(ts)
        )

    # ------------------------------------------------------------------
    # cross-thread dependencies (Section IV-E)
    # ------------------------------------------------------------------

    def _establish_dep(self, source: EpochId, dependent_core: int) -> None:
        """Record + enforce: dependent's *new* epoch follows ``source``."""
        src_core, src_ts = source
        src_path = self.paths[src_core]
        dst_path = self.paths[dependent_core]
        if not (src_path.tracks_dependencies and dst_path.tracks_dependencies):
            return
        if not src_path.epoch_uncommitted(src_ts):
            return
        new_ts = dst_path.split_epoch()
        dst_path.set_dep(source)
        registered = src_path.register_dependent(src_ts, (dependent_core, new_ts))
        assert registered, "source committed within the same event"
        self.log.record_dep(source, (dependent_core, new_ts))
        self.stats.inc("interTEpochConflict")
        if self.tracer is not None:
            self.tracer.emit(
                EventType.DEP_ESTABLISHED, "core", core=dependent_core,
                epoch=new_ts, value=src_core,
            )

    def _maybe_cross_strand_dep(self, core: int, line: int) -> None:
        """Strong persist atomicity *within* a thread, across strands.

        Strand persistency leaves different strands unordered -- except
        for conflicting accesses.  When a thread writes a line it last
        wrote in a *different, still uncommitted* strand, the new strand's
        epoch must be ordered after the old one (StrandWeaver resolves
        this in hardware; we reuse the cross-thread dependence machinery,
        which works unchanged for the same-core case)."""
        owner = self.directory.owner_of(line)
        if owner is None or owner.core != core:
            return
        path = self.paths[core]
        if not path.tracks_dependencies:
            return
        owner_strand = path.strand_of(owner.epoch_ts)
        if owner_strand is None:  # committed: no ordering needed
            return
        if owner_strand == path.strand_of(path.current_ts):
            return
        if not path.epoch_uncommitted(owner.epoch_ts):
            return
        self._establish_dep((core, owner.epoch_ts), core)
        self.stats.inc("cross_strand_conflicts", scope=f"core{core}")

    def _coherence_charge(self, transition) -> int:
        """Latency of a coherence transaction beyond the cache lookups.

        A transfer out of another core's M/E copy costs the full
        cache-to-cache latency; an invalidation-only upgrade (S -> M)
        needs no data movement and costs about half."""
        if transition.cache_to_cache:
            return self._coherence_extra
        if transition.invalidated or transition.downgraded:
            return self._coherence_extra // 2
        return 0

    def _dep_from_source(self, core: int, source: OwnerInfo) -> None:
        """Epoch-persistency conflict handling for a coherence request
        that reached another core's write."""
        if self.run_config.persistency is PersistencyModel.EPOCH:
            # The source thread replies with its epoch and starts a new
            # one; the requester starts a new epoch that depends on it.
            src_path = self.paths[source.core]
            if src_path.tracks_dependencies and src_path.epoch_uncommitted(
                source.epoch_ts
            ):
                src_path.split_epoch()
                self._establish_dep((source.core, source.epoch_ts), core)
        else:
            # Under release persistency regular coherence requests carry no
            # dependence information: a conflicting access to another
            # thread's *uncommitted* write that was not ordered by an
            # acquire/release is a data race, which the paper's contract
            # excludes ("ASAP requires race-free code", Section IV-E).
            # Count it so workloads can assert they are race-free.
            src_path = self.paths[source.core]
            if src_path.tracks_dependencies and src_path.epoch_uncommitted(
                source.epoch_ts
            ):
                self.stats.inc("rp_unsynchronized_conflicts")

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------

    def dispatch(self, core: _CoreUnit, op: Op) -> None:
        # Dict-dispatch on the concrete op type replaces the old isinstance
        # chain (one hash lookup instead of up to eight type checks).  Op
        # subclasses fall back to the isinstance walk once, then get their
        # own cache slot; insertion order of _op_handlers preserves the
        # original chain's precedence for that walk.
        handlers = self._op_handlers
        handler = handlers.get(type(op))
        if handler is None:
            for base, candidate in list(handlers.items()):
                if isinstance(op, base):
                    handler = handlers[type(op)] = candidate
                    break
            else:
                raise TypeError(f"unknown op: {op!r}")
        handler(core, op)

    def _do_compute(self, core: _CoreUnit, op: Compute) -> None:
        self.engine.schedule(max(1, op.cycles), core.advance)

    def _do_ofence(self, core: _CoreUnit, op: OFence) -> None:
        counter = core.ofence_counter
        if counter is None:
            counter = core.ofence_counter = self.stats.counter(
                "ofences", scope=f"core{core.index}"
            )
        counter.inc()
        self.paths[core.index].on_ofence(
            lambda: self.engine.schedule(FENCE_ISSUE_CYCLES, core.advance)
        )

    def _do_dfence(self, core: _CoreUnit, op: DFence) -> None:
        counter = core.dfence_counter
        if counter is None:
            counter = core.dfence_counter = self.stats.counter(
                "dfences", scope=f"core{core.index}"
            )
        counter.inc()
        if self.tracer is None:
            self.paths[core.index].on_dfence(
                lambda: self.engine.schedule(FENCE_ISSUE_CYCLES, core.advance)
            )
        else:
            self.tracer.emit(
                EventType.DFENCE_BEGIN, "core", core=core.index
            )

            def dfence_done() -> None:
                self.tracer.emit(
                    EventType.DFENCE_END, "core", core=core.index
                )
                self.engine.schedule(FENCE_ISSUE_CYCLES, core.advance)

            self.paths[core.index].on_dfence(dfence_done)

    def _do_new_strand(self, core: _CoreUnit, op: NewStrand) -> None:
        path = self.paths[core.index]
        relaxed = path.on_new_strand(
            lambda: self.engine.schedule(FENCE_ISSUE_CYCLES, core.advance)
        )
        if relaxed:
            # The new current epoch starts a strand: the epoch log drops
            # its implicit intra-thread predecessor edge so the checker
            # permits the relaxation the hardware grants.
            self.log.record_strand_start(core.index, path.current_ts)
            self.stats.inc("strand_starts", scope=f"core{core.index}")

    # -- memory ops ---------------------------------------------------------

    def _do_store(self, core: _CoreUnit, op: Store) -> None:
        lines = self.amap.lines_of(op.addr, op.size)
        self._store_lines(core, lines, op.payload, 0)

    def _store_lines(
        self, core: _CoreUnit, lines: List[int], payload: object, pos: int = 0
    ) -> None:
        # `lines` is the AddressMap's memoized (shared, read-only) list;
        # walking it by index avoids re-slicing a fresh list per line.
        if pos >= len(lines):
            self.engine.schedule(STORE_ISSUE_CYCLES, core.advance)
            return
        line = lines[pos]
        index = core.index
        hierarchy = self.hierarchies[index]
        hierarchy.access_ex(line, is_write=True)
        self._maybe_cross_strand_dep(index, line)
        path = self.paths[index]
        # MESI: obtain the line in M, invalidating other copies; a request
        # that reaches another core's write carries dependence info.
        transition = self.directory.write(index, line, path.current_ts)
        extra = self._coherence_charge(transition)
        if transition.source is not None:
            self._dep_from_source(index, transition.source)
            # dependence handling may have opened a new epoch on this
            # core; the directory must attribute the write to it.
            self.directory.update_writer_epoch(line, index, path.current_ts)
        for victim_core in transition.invalidated:
            self.hierarchies[victim_core].invalidate(line)
        write_id = self._next_write_id
        self._next_write_id = write_id + 1
        self.log.record_write(
            write_id, line, index, path.current_ts, payload=payload
        )

        def stored() -> None:
            self.engine.schedule(
                STORE_ISSUE_CYCLES + extra,
                lambda: self._store_lines(core, lines, payload, pos + 1),
            )

        path.on_store(line, write_id, stored)

    def _do_load(self, core: _CoreUnit, op: Load) -> None:
        lines = self.amap.lines_of(op.addr, op.size)
        index = core.index
        hierarchy = self.hierarchies[index]
        latency = 0
        for line in lines:
            line_latency, _level = hierarchy.access_ex(line, is_write=False)
            latency += line_latency
            transition = self.directory.read(index, line)
            latency += self._coherence_charge(transition)
            if transition.source is not None:
                # the read reached another core's write: the reply carries
                # the writer's epoch (Section IV-E).
                self._dep_from_source(index, transition.source)
        self.engine.schedule(max(1, latency), core.advance)

    # -- locks ---------------------------------------------------------------

    def _lock(self, lock_id: int) -> _Lock:
        lock = self._locks.get(lock_id)
        if lock is None:
            lock = _Lock()
            self._locks[lock_id] = lock
        return lock

    def _do_acquire(self, core: _CoreUnit, op: Acquire) -> None:
        lock = self._lock(op.lock)
        if lock.holder is None:
            self._grant(core, lock)
        else:
            if lock.holder == core.index:
                raise RuntimeError(
                    f"core {core.index} re-acquiring lock {op.lock:#x}"
                )
            self.stats.inc("lock_contended", scope=f"core{core.index}")
            lock.waiters.append(core)

    def _grant(self, core: _CoreUnit, lock: _Lock) -> None:
        lock.holder = core.index
        # Acquire synchronizes with the previous release: under both
        # persistency models this is a dependence-creating conflicting
        # access (under RP it is the *only* kind, Section IV-A).
        if lock.last_release is not None:
            src_core, _ = lock.last_release
            if src_core != core.index:
                self._establish_dep(lock.last_release, core.index)
        self.engine.schedule(self._lock_cycles, core.advance)

    def _do_release(self, core: _CoreUnit, op: Release) -> None:
        lock = self._lock(op.lock)
        if lock.holder != core.index:
            raise RuntimeError(
                f"core {core.index} releasing lock {op.lock:#x} it does "
                f"not hold (holder={lock.holder})"
            )
        path = self.paths[core.index]
        release_ts = path.current_ts

        def released() -> None:
            lock.last_release = (core.index, release_ts)
            if lock.waiters:
                # Direct hand-off: reserve the lock for the next waiter
                # immediately so nobody can sneak in during the transfer
                # latency.
                waiter = lock.waiters.pop(0)
                lock.holder = waiter.index
                self.engine.schedule(
                    self._lock_cycles, lambda: self._grant(waiter, lock)
                )
            else:
                lock.holder = None
            self.engine.schedule(self._lock_cycles, core.advance)

        path.on_release_boundary(released)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(self, programs: Iterable[Program]) -> RunResult:
        """Run one program per core to completion and drain the system."""
        self._start(programs)
        self.engine.run(max_events=self.run_config.max_events)
        return self._finish_result()

    def run_until(self, programs: Iterable[Program], crash_cycle: int) -> "Machine":
        """Run with a crash at ``crash_cycle``; returns self for the crash
        inspection API (:mod:`repro.core.crash`)."""
        self._start(programs)
        self.engine.run(until=crash_cycle, max_events=self.run_config.max_events)
        self._crashed = True
        return self

    # ------------------------------------------------------------------
    # quiescent barriers + checkpointing
    # ------------------------------------------------------------------
    #
    # An arbitrary-cycle snapshot is impossible to serialize -- the event
    # queue holds closures.  Instead the machine supports *quiescent
    # barriers* (gem5's "drain" discipline): run to a target cycle, then
    # park every core at its next op boundary and let the event queue
    # drain.  At the quiescent point the dynamic state is empty (persist
    # buffers, WPQs, recovery tables, NACK filters, write-back buffers,
    # in-flight flushes) and everything else is plain data that
    # :meth:`snapshot` can serialize.  ``(run_to_barrier -> snapshot ->
    # resume -> continue)`` is event-for-event identical to
    # ``(run_to_barrier -> continue)`` in the same process.

    def run_to_barrier(self, programs: Iterable[Program], cycle: int) -> bool:
        """Run to ``cycle``, then park + drain to a quiescent point.

        Returns False when the run completed before the barrier (the
        machine is then finished; call :meth:`continue_run` for the
        result), True when a quiescent barrier was established."""
        self._retire_order = []
        self._start(programs)
        return self._quiesce_at(cycle)

    def continue_to_barrier(self, cycle: int) -> bool:
        """Resume parked cores and quiesce again at a later ``cycle``."""
        self._resume_cores()
        return self._quiesce_at(cycle)

    def continue_run(self) -> RunResult:
        """Resume parked cores and run to completion."""
        self._halt_when_parked = False
        self._resume_cores()
        self.engine.run(max_events=self.run_config.max_events)
        return self._finish_result()

    def continue_until(self, crash_cycle: int) -> "Machine":
        """Resume parked cores and crash at ``crash_cycle`` (which must
        not precede the quiescent point)."""
        if crash_cycle < self.engine.now:
            raise ValueError(
                f"crash cycle {crash_cycle} precedes the quiescent point "
                f"at cycle {self.engine.now}"
            )
        self._resume_cores()
        self.engine.run(until=crash_cycle, max_events=self.run_config.max_events)
        self._crashed = True
        return self

    def run_to_pause(self, programs: Iterable[Program]) -> None:
        """Run until every core parked on :data:`PAUSE` (or finished).

        The engine halts the moment the last core parks -- the event
        queue is NOT drained.  In-flight persist state (buffer
        occupancy, pending flushes, open epochs) carries across the
        boundary exactly as it would mid-run; draining here would empty
        the persist buffers the warm-up just filled and charge a
        drain's worth of cycles into every measured window.  Unlike the
        cycle barrier this also forces no epoch splits."""
        self._halt_when_parked = True
        self._start(programs)
        self.engine.run(max_events=self.run_config.max_events)
        self._check_paused()

    def continue_to_pause(self) -> None:
        """Resume parked cores and run to the next pause round."""
        self._halt_when_parked = True
        self._resume_cores()
        self.engine.run(max_events=self.run_config.max_events)
        self._check_paused()

    def mean_arrival_cycle(self) -> float:
        """Mean cycle at which cores reached the current pause round.

        ``engine.now`` at a pause is the *last* core's arrival; windows
        timed with it systematically over-count cycles by the straggler
        wait, because in an unpaused run the fast cores would overlap
        into the next interval instead of idling at the barrier.  The
        per-core arrival mean removes that skew, and mean-deltas still
        telescope to the mean completion time over a full run."""
        times = [
            core.park_time if core.parked else core.finish_time
            for core in self.cores
        ]
        known = [t for t in times if t is not None]
        if not known:
            return float(self.engine.now)
        return sum(known) / len(known)

    def _check_paused(self) -> None:
        stuck = [
            core.index for core in self.cores
            if not core.finished and not core.parked
        ]
        if stuck:
            raise RuntimeError(
                f"cores {stuck} neither finished nor parked after the "
                "event queue drained -- a program stopped yielding "
                "without a PAUSE (deadlocked lock waiter?)"
            )

    def _quiesce_at(self, cycle: int) -> bool:
        if cycle < self.engine.now:
            raise ValueError(
                f"barrier cycle {cycle} precedes current cycle "
                f"{self.engine.now}"
            )
        self.engine.run(until=cycle, max_events=self.run_config.max_events)
        if self._cores_running == 0 and self.engine.pending() == 0:
            return False  # finished before the barrier
        self._begin_parking()
        self._drain_to_quiesce()
        return True

    def _begin_parking(self) -> None:
        # Park every unfinished core at its next op boundary, and close
        # its current epoch so the drain can commit it.  (An op already
        # in flight -- e.g. a multi-line store mid-walk -- finishes into
        # the post-split epoch; the split is a deterministic ordering
        # strengthening, identical on both sides of a snapshot/resume
        # comparison.)
        for core in self.cores:
            if not core.finished:
                core.ops_target = -1
        for core in self.cores:
            if not core.finished:
                self.paths[core.index].split_epoch()

    def _park(self, core: _CoreUnit) -> None:
        core.parked = True
        core.park_time = self.engine.now
        self._parked_order.append(core.index)
        if self._halt_when_parked and all(
            c.parked or c.finished for c in self.cores
        ):
            self.engine.stop("all cores parked")

    def _resume_cores(self) -> None:
        order, self._parked_order = self._parked_order, []
        for core in self.cores:
            core.ops_target = None
            core.parked = False
        for index in order:
            self.engine.schedule(0, self.cores[index].advance)

    def _drain_to_quiesce(self) -> None:
        max_events = self.run_config.max_events
        self.engine.run(max_events=max_events)
        # Writes that landed in a post-split open epoch (in-flight op
        # continuations) can leave undo records guarded by an epoch that
        # never closes; split again until the recovery tables are clear.
        for _ in range(8):
            if not self._needs_commit_round():
                return
            for core in self.cores:
                if not core.finished:
                    self.paths[core.index].split_epoch()
            self.engine.run(max_events=max_events)
        raise RuntimeError("machine failed to quiesce")

    def _needs_commit_round(self) -> bool:
        for rt in self.recovery_tables:
            if rt is not None and len(rt):
                return True
        return any(not path.is_drained() for path in self.paths)

    def snapshot(self) -> Dict[str, object]:
        """Serialize the machine at a quiescent barrier.

        Returns a JSON-able dict; see :mod:`repro.ckpt` for the versioned
        file envelope built around it."""
        if self.engine.pending():
            raise RuntimeError("cannot snapshot with pending events")
        if self._inflight_flushes:
            raise RuntimeError("cannot snapshot with in-flight flushes")
        if self._crashed:
            raise RuntimeError("cannot snapshot a crashed machine")
        if not self.cores:
            raise RuntimeError("cannot snapshot before running")
        if self._retire_order is None:
            raise RuntimeError(
                "machine was not run in checkpoint mode "
                "(use run_to_barrier)"
            )
        for core in self.cores:
            if core.finished or core.parked:
                continue
            if not any(core in lock.waiters for lock in self._locks.values()):
                raise RuntimeError(
                    f"core {core.index} neither parked nor lock-blocked"
                )
        from repro.crashtest.serialize import log_to_dict

        return {
            "engine": self.engine.ckpt_state(),
            "stats": self.stats.ckpt_state(),
            "log": log_to_dict(self.log),
            "directory": self.directory.ckpt_state(),
            "llc": self.llc.ckpt_state(),
            "hierarchies": [
                {"l1": h.l1.ckpt_state(), "l2": h.l2.ckpt_state()}
                for h in self.hierarchies
            ],
            "wbbs": [wbb.ckpt_state() for wbb in self.wbbs],
            "paths": [path.ckpt_state() for path in self.paths],
            "global_ts": self.global_ts.ckpt_state(),
            "vorpal": (
                self.vorpal.ckpt_state() if self.vorpal is not None else None
            ),
            "mcs": [mc.ckpt_state() for mc in self.mcs],
            "recovery_tables": [
                rt.ckpt_state() if rt is not None else None
                for rt in self.recovery_tables
            ],
            "blooms": [
                mc.bloom_filter.ckpt_state()
                if mc.bloom_filter is not None
                else None
                for mc in self.mcs
            ],
            "cores": [
                {
                    "index": c.index,
                    "ops_executed": c.ops_executed,
                    "finished": c.finished,
                    "finish_time": c.finish_time,
                    "parked": c.parked,
                }
                for c in self.cores
            ],
            "locks": [
                [
                    lock_id,
                    lock.holder,
                    [w.index for w in lock.waiters],
                    list(lock.last_release) if lock.last_release else None,
                ]
                for lock_id, lock in self._locks.items()
            ],
            "next_write_id": self._next_write_id,
            "next_flush_seq": self._next_flush_seq,
            "parked_order": list(self._parked_order),
            "cores_running": self._cores_running,
            "retire_order": list(self._retire_order),
        }

    @classmethod
    def resume(
        cls,
        config: MachineConfig,
        run_config: RunConfig,
        programs: Iterable[Program],
        state: Dict[str, object],
        sinks: Optional[Iterable[object]] = None,
    ) -> "Machine":
        """Rebuild a machine from :meth:`snapshot` output.

        ``programs`` must be freshly built generators identical to the
        originals.  They are fast-forwarded (without dispatching) by
        replaying ``next()`` calls in the checkpoint's recorded global
        retirement order, which reproduces all generator-internal state
        -- per-thread PRNGs *and* mutable state shared across thread
        generators -- exactly."""
        machine = cls(config, run_config=run_config, sinks=sinks)
        machine._restore(programs, state)
        return machine

    def _restore(self, programs: Iterable[Program], state: Dict[str, object]) -> None:
        if self.cores:
            raise RuntimeError("machine already ran; build a fresh one")
        from repro.crashtest.serialize import log_from_dict

        self.stats.ckpt_restore(state["stats"])  # type: ignore[arg-type]
        self.engine.ckpt_restore(state["engine"])  # type: ignore[arg-type]
        self.log = log_from_dict(state["log"])  # type: ignore[arg-type]
        self.directory.ckpt_restore(state["directory"])  # type: ignore[arg-type]
        self.llc.ckpt_restore(state["llc"])  # type: ignore[arg-type]
        for hier_state, hierarchy in zip(state["hierarchies"], self.hierarchies):  # type: ignore[arg-type]
            hierarchy.l1.ckpt_restore(hier_state["l1"])
            hierarchy.l2.ckpt_restore(hier_state["l2"])
        for wbb_state, wbb in zip(state["wbbs"], self.wbbs):  # type: ignore[arg-type]
            wbb.ckpt_restore(wbb_state)
        for path_state, path in zip(state["paths"], self.paths):  # type: ignore[arg-type]
            path.ckpt_restore(path_state)
        self.global_ts.ckpt_restore(state["global_ts"])  # type: ignore[arg-type]
        if self.vorpal is not None:
            self.vorpal.ckpt_restore(state["vorpal"])  # type: ignore[arg-type]
        for mc_state, mc in zip(state["mcs"], self.mcs):  # type: ignore[arg-type]
            mc.ckpt_restore(mc_state)
        for rt_state, rt in zip(state["recovery_tables"], self.recovery_tables):  # type: ignore[arg-type]
            if rt is not None and rt_state is not None:
                rt.ckpt_restore(rt_state)
        for bloom_state, mc in zip(state["blooms"], self.mcs):  # type: ignore[arg-type]
            if mc.bloom_filter is not None and bloom_state is not None:
                mc.bloom_filter.ckpt_restore(bloom_state)
        programs = list(programs)
        core_states = state["cores"]
        if len(programs) != len(core_states):  # type: ignore[arg-type]
            raise ValueError(
                f"{len(programs)} programs for {len(core_states)} "  # type: ignore[arg-type]
                f"checkpointed cores"
            )
        for core_state, program in zip(core_states, programs):  # type: ignore[arg-type]
            core = _CoreUnit(self, int(core_state["index"]), program)
            core.ops_executed = int(core_state["ops_executed"])
            core.finished = bool(core_state["finished"])
            finish_time = core_state["finish_time"]
            core.finish_time = (
                int(finish_time) if finish_time is not None else None
            )
            core.parked = bool(core_state["parked"])
            self.cores.append(core)
        retire_order = [int(i) for i in state["retire_order"]]  # type: ignore[union-attr]
        replayed = [0] * len(self.cores)
        for index in retire_order:
            next(self.cores[index].program)
            replayed[index] += 1
        mismatched = [
            c.index for c in self.cores if replayed[c.index] != c.ops_executed
        ]
        if mismatched:
            raise ValueError(
                f"retirement order inconsistent with per-core op counts "
                f"for cores {mismatched}"
            )
        self._retire_order = retire_order
        for lock_id, holder, waiters, last_release in state["locks"]:  # type: ignore[union-attr]
            self._locks[int(lock_id)] = _Lock(
                holder=int(holder) if holder is not None else None,
                waiters=[self.cores[int(i)] for i in waiters],
                last_release=(
                    (int(last_release[0]), int(last_release[1]))
                    if last_release is not None
                    else None
                ),
            )
        self._next_write_id = int(state["next_write_id"])  # type: ignore[arg-type]
        self._next_flush_seq = int(state["next_flush_seq"])  # type: ignore[arg-type]
        self._parked_order = [int(i) for i in state["parked_order"]]  # type: ignore[union-attr]
        self._cores_running = int(state["cores_running"])  # type: ignore[arg-type]

    def _start(self, programs: Iterable[Program]) -> None:
        if self.cores:
            raise RuntimeError("machine already ran; build a fresh one")
        programs = list(programs)
        if len(programs) > self.config.num_cores:
            raise ValueError(
                f"{len(programs)} programs for {self.config.num_cores} cores"
            )
        for index, program in enumerate(programs):
            core = _CoreUnit(self, index, program)
            self.cores.append(core)
            core.start()
        self._cores_running = len(self.cores)

    def _core_finished(self) -> None:
        self._cores_running -= 1

    def _finish_result(self) -> RunResult:
        unfinished = [c.index for c in self.cores if not c.finished]
        if unfinished:
            raise RuntimeError(
                f"cores {unfinished} never finished (deadlock? lock leak?)"
            )
        undrained = [
            i for i, p in enumerate(self.paths) if not p.is_drained()
        ]
        if undrained:
            raise RuntimeError(f"persistence paths {undrained} not drained")
        now = self.engine.now
        self.stats.finish(now)
        for path in self.paths:
            if path.has_persist_buffer:
                path.pb.finish(now)
        per_core = [c.finish_time or 0 for c in self.cores]
        return RunResult(
            runtime_cycles=max(per_core) if per_core else 0,
            drain_cycles=now,
            stats=self.stats,
            log=self.log,
            config=self.run_config,
            per_core_runtime=per_core,
            ops_executed=sum(c.ops_executed for c in self.cores),
        )


__all__ = ["Machine", "RunResult"]
