"""The Persist Buffer (PB).

Section V-A: a per-core circular buffer alongside the private caches.
Writes to NVM are enqueued here when the store updates the cache; the PB
flushes them to the memory controllers in the background.  Which entries
may be flushed *right now* is the essential difference between the
evaluated designs, so the policy is injected by the hardware model:

- baseline  -- every entry is flushable immediately (clwb semantics);
  ordering comes from the core stalling at fences instead.
- HOPS      -- conservative flushing: an entry is flushable only when its
  epoch is *safe* (all prior epochs committed, cross-thread dependency
  resolved).
- ASAP      -- eager flushing: any queued entry is flushable; entries
  whose epoch is not yet safe are tagged *early* in the flush packet.
  After a NACK the buffer falls back to conservative flushing until the
  NACKed epoch commits (Section V-D).

The buffer coalesces stores to the same line within the same epoch, tracks
the Figure 3 "blocked" statistic (cycles in which waiting entries exist but
ordering forbids flushing any of them), and feeds the Figure 11 occupancy
distribution.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.obs.events import EventType, StallReason
from repro.sim.engine import Engine, Waiter
from repro.sim.stats import StatsRegistry


class PBEntryState(enum.Enum):
    QUEUED = "queued"  # waiting to be issued
    INFLIGHT = "inflight"  # flush packet travelling / at the MC
    NACK_WAIT = "nack_wait"  # NACKed; waiting to retry as a safe flush


class EnqueueResult(enum.Enum):
    """Outcome of a store entering the persist buffer.

    The distinction matters to the epoch table: a COALESCED store shares
    its entry's single future ACK, so it must not be counted as an extra
    outstanding write (counting it would leave the epoch incomplete
    forever)."""

    ADDED = "added"
    COALESCED = "coalesced"
    FULL = "full"


class PBEntry:
    """One buffered write.

    A plain slotted class (not a dataclass): entries are identity-compared
    -- ``seq`` is unique per buffer, so value equality never differed from
    identity -- and allocated on every store, which makes the dataclass
    machinery measurable overhead.
    """

    __slots__ = ("seq", "line", "write_id", "epoch_ts", "state", "issued_early")

    def __init__(
        self,
        seq: int,  # per-buffer sequence number (FIFO order, WBB handle)
        line: int,
        write_id: int,
        epoch_ts: int,
        state: PBEntryState = PBEntryState.QUEUED,
        issued_early: bool = False,
    ) -> None:
        self.seq = seq
        self.line = line
        self.write_id = write_id
        self.epoch_ts = epoch_ts
        self.state = state
        self.issued_early = issued_early

    def __repr__(self) -> str:
        return (
            f"PBEntry(seq={self.seq}, line={self.line:#x}, "
            f"write_id={self.write_id}, epoch_ts={self.epoch_ts}, "
            f"state={self.state}, issued_early={self.issued_early})"
        )


class PersistBuffer:
    """Per-core FIFO of writes awaiting persistence."""

    def __init__(
        self,
        engine: Engine,
        capacity: int,
        issue_cycles: int,
        stats: StatsRegistry,
        scope: str,
        core: int,
        inflight_max: int = 8,
    ) -> None:
        self.engine = engine
        self.capacity = capacity
        self.issue_cycles = max(1, issue_cycles)
        self.inflight_max = inflight_max
        self.stats = stats
        self.scope = scope
        self.core = core
        self.entries: List[PBEntry] = []
        #: buffered entries per line -- lets the enqueue coalesce scan and
        #: the eviction-path :meth:`contains_line` probe skip the common
        #: "line not buffered" case without touching the entry list.
        self._line_counts: Dict[int, int] = {}
        self.space_waiter = Waiter(engine)
        self.drain_waiter = Waiter(engine)
        self._seq = 0
        self._port_busy = False
        self._inflight = 0
        self._blocked_since: Optional[int] = None
        #: epoch of the oldest waiting entry when blocking began, so the
        #: eventual STALL_END can attribute the blocked interval.
        self._blocked_epoch: Optional[int] = None
        #: lazily bound hot counter (see :meth:`enqueue`).
        self._inserted = None
        #: optional :class:`repro.obs.Tracer`; None = tracing off.
        self.tracer = None
        self._occupancy = stats.weighted("pb_occupancy", capacity, scope=scope)
        #: conservative-fallback horizon: while set, the owning model's
        #: policy only issues safe flushes; cleared when the epoch commits.
        self.conservative_until_ts: Optional[int] = None

        # Wired by the hardware model / machine assembler:
        #: pick the next flushable entry, or None (the policy).
        self.select_entry: Callable[["PersistBuffer"], Optional[PBEntry]] = (
            lambda pb: None
        )
        #: True if a flush of this epoch must carry the early bit.
        self.classify_early: Callable[[int], bool] = lambda ts: False
        #: hand a packet to the interconnect (machine supplies transport).
        self.send_flush: Callable[[PBEntry], None] = lambda entry: None
        #: epoch-table accounting callbacks.
        self.on_issue: Callable[[PBEntry], None] = lambda entry: None
        self.on_acked: Callable[[PBEntry], None] = lambda entry: None
        self.on_nacked: Callable[[PBEntry], None] = lambda entry: None
        #: WBB release hook: the oldest un-flushed sequence number rose.
        self.on_head_advance: Callable[[int], None] = lambda seq: None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self.entries

    def contains_line(self, line: int) -> bool:
        return line in self._line_counts

    def occupancy_stat(self):
        return self._occupancy

    # ------------------------------------------------------------------
    # enqueue (store path)
    # ------------------------------------------------------------------

    def enqueue(self, line: int, write_id: int, epoch_ts: int) -> EnqueueResult:
        """Buffer a write.  Returns FULL when the core must stall.

        Coalesces with an existing un-issued entry for the same line in
        the same epoch -- the flush will simply carry the newest value
        and produce a single ACK (the caller's epoch accounting must not
        count a coalesced store as an extra outstanding write).
        """
        if line in self._line_counts:
            # coalesce scan only when the line is actually buffered; the
            # list order decides which entry wins, exactly as before.
            inflight = PBEntryState.INFLIGHT
            for entry in self.entries:
                if (
                    entry.line == line
                    and entry.epoch_ts == epoch_ts
                    and entry.state is not inflight
                ):
                    entry.write_id = write_id
                    self.stats.inc("pb_coalesced", scope=self.scope)
                    if self.tracer is not None:
                        self.tracer.emit(
                            EventType.PB_COALESCE, "pb", core=self.core,
                            epoch=epoch_ts, line=line,
                        )
                    return EnqueueResult.COALESCED
        if self.full:
            return EnqueueResult.FULL
        entry = PBEntry(
            seq=self._seq, line=line, write_id=write_id, epoch_ts=epoch_ts
        )
        self._seq += 1
        self.entries.append(entry)
        self._line_counts[line] = self._line_counts.get(line, 0) + 1
        counter = self._inserted
        if counter is None:
            # bound on first use (not eagerly) so a buffer that never
            # enqueues creates no zero-valued stats row.
            counter = self._inserted = self.stats.counter(
                "entriesInserted", scope=self.scope
            )
        counter.inc()
        self._occupancy.update(self.engine.now, len(self.entries))
        if self.tracer is not None:
            self.tracer.emit(
                EventType.PB_ENQUEUE, "pb", core=self.core, epoch=epoch_ts,
                line=line, value=len(self.entries),
            )
        self._reassess()
        return EnqueueResult.ADDED

    # ------------------------------------------------------------------
    # flush issue
    # ------------------------------------------------------------------

    def reassess(self) -> None:
        """Something changed (epoch became safe, mode switched, ...);
        re-evaluate blocking and try to issue."""
        self._reassess()

    def _reassess(self) -> None:
        # Evaluate the (pure) selection policy exactly once and share the
        # result between blocked-cycle accounting and the issue attempt;
        # the old code scanned the buffer twice per reassessment.  The
        # waiting check is O(1): ``_inflight`` counts exactly the entries
        # in the INFLIGHT state, so any surplus entry is waiting.
        waiting = len(self.entries) > self._inflight
        selected = self.select_entry(self) if waiting else None
        blocked = waiting and selected is None
        # skip the call entirely in the steady state (not blocked, no
        # open blocked interval) -- _update_blocked would be a no-op.
        if blocked or self._blocked_since is not None:
            self._update_blocked(blocked)
        if selected is not None:
            self._try_issue(selected)

    def _try_issue(self, entry: PBEntry) -> None:
        if self._port_busy or self._inflight >= self.inflight_max:
            return
        self._port_busy = True
        self._inflight += 1
        entry.state = PBEntryState.INFLIGHT
        entry.issued_early = self.classify_early(entry.epoch_ts)
        if entry.issued_early:
            self.stats.inc("totSpecWrites", scope=self.scope)
        if self.tracer is not None:
            self.tracer.emit(
                EventType.PB_SPEC_FLUSH if entry.issued_early
                else EventType.PB_FLUSH,
                "pb", core=self.core, epoch=entry.epoch_ts, line=entry.line,
            )
        self.on_issue(entry)
        waiting = len(self.entries) > self._inflight
        blocked = waiting and self.select_entry(self) is None
        if blocked or self._blocked_since is not None:
            self._update_blocked(blocked)
        self.engine.schedule(self.issue_cycles, self._port_free)
        self.send_flush(entry)

    def _port_free(self) -> None:
        self._port_busy = False
        self._reassess()

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------

    def handle_ack(self, entry: PBEntry) -> None:
        """The controller accepted the flush; the write is durable."""
        self._inflight -= 1
        self.entries.remove(entry)
        count = self._line_counts[entry.line] - 1
        if count:
            self._line_counts[entry.line] = count
        else:
            del self._line_counts[entry.line]
        self._occupancy.update(self.engine.now, len(self.entries))
        if self.tracer is not None:
            self.tracer.emit(
                EventType.PB_ACK, "pb", core=self.core, epoch=entry.epoch_ts,
                line=entry.line, value=len(self.entries),
            )
        self.on_acked(entry)
        self.on_head_advance(self._oldest_seq())
        self.space_waiter.wake()
        if not self.entries:
            self.drain_waiter.wake()
        self._reassess()

    def handle_nack(self, entry: PBEntry) -> None:
        """Recovery table full: hold the entry for a safe retry."""
        self._inflight -= 1
        entry.state = PBEntryState.NACK_WAIT
        self.stats.inc("pb_nacks", scope=self.scope)
        if self.tracer is not None:
            self.tracer.emit(
                EventType.PB_NACK, "pb", core=self.core,
                epoch=entry.epoch_ts, line=entry.line,
            )
        self.on_nacked(entry)
        self._reassess()

    def _oldest_seq(self) -> int:
        # Entries are appended in increasing seq order and removals keep
        # relative order, so the list is always seq-sorted: the head IS
        # the minimum (the old code scanned the whole buffer).
        if not self.entries:
            return self._seq
        return self.entries[0].seq

    # ------------------------------------------------------------------
    # Figure 3: blocked-cycle accounting
    # ------------------------------------------------------------------

    def _update_blocked(self, blocked: bool) -> None:
        """Blocked = waiting entries exist but the policy can't issue any.

        Cycles spent actively flushing (port busy with a selected entry)
        are not blocked; cycles where ordering rules leave waiting entries
        stranded are.  ``blocked`` is computed by the caller from a single
        (pure) policy evaluation; callers skip the call when it would be a
        no-op (not blocked, no open interval).
        """
        now = self.engine.now
        if blocked and self._blocked_since is None:
            self._blocked_since = now
            if self.tracer is not None:
                oldest = next(
                    e for e in self.entries
                    if e.state is not PBEntryState.INFLIGHT
                )
                self._blocked_epoch = oldest.epoch_ts
                self.tracer.emit(
                    EventType.STALL_BEGIN, "pb", core=self.core,
                    epoch=self._blocked_epoch, reason=StallReason.PB_BLOCKED,
                )
        elif not blocked and self._blocked_since is not None:
            self.stats.inc(
                "cyclesBlocked", now - self._blocked_since, scope=self.scope
            )
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "pb", core=self.core,
                    epoch=self._blocked_epoch, reason=StallReason.PB_BLOCKED,
                    dur=now - self._blocked_since,
                )
                self._blocked_epoch = None
            self._blocked_since = None

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize the buffer at a quiescent point (necessarily empty:
        every epoch has committed, so every entry has been ACKed and
        removed).  Only the sequence allocator and the conservative-mode
        horizon survive quiescence."""
        if self.entries or self._inflight or self._port_busy:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint a non-empty persist buffer"
            )
        if len(self.space_waiter) or len(self.drain_waiter):
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with PB waiters"
            )
        if self._blocked_since is not None:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint mid blocked interval"
            )
        return {
            "seq": self._seq,
            "conservative_until_ts": self.conservative_until_ts,
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._seq = int(state["seq"])  # type: ignore[arg-type]
        raw = state["conservative_until_ts"]
        self.conservative_until_ts = int(raw) if raw is not None else None  # type: ignore[arg-type]

    def finish(self, now: int) -> None:
        """Close out accounting at the end of a run."""
        if self._blocked_since is not None:
            self.stats.inc(
                "cyclesBlocked", now - self._blocked_since, scope=self.scope
            )
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "pb", core=self.core,
                    epoch=self._blocked_epoch, reason=StallReason.PB_BLOCKED,
                    dur=now - self._blocked_since,
                )
                self._blocked_epoch = None
            self._blocked_since = None
        self._occupancy.finish(now)


def select_fifo_any(pb: PersistBuffer) -> Optional[PBEntry]:
    """Baseline policy: the oldest queued entry, unconditionally."""
    for entry in pb.entries:
        if entry.state is PBEntryState.QUEUED:
            return entry
    return None


def make_conservative_policy(
    is_safe: Callable[[int], bool],
) -> Callable[[PersistBuffer], Optional[PBEntry]]:
    """HOPS policy (and ASAP's NACK fallback): oldest waiting entry whose
    epoch is safe.  Nothing flushes from unsafe epochs."""

    def select(pb: PersistBuffer) -> Optional[PBEntry]:
        for entry in pb.entries:
            if entry.state is PBEntryState.INFLIGHT:
                continue
            if is_safe(entry.epoch_ts):
                return entry
        return None

    return select


def make_eager_policy(
    is_safe: Callable[[int], bool],
) -> Callable[[PersistBuffer], Optional[PBEntry]]:
    """ASAP policy: flush as soon as possible.

    Queued entries issue immediately (early bit set when the epoch is not
    yet safe).  NACKed entries retry only once safe.  While the buffer is
    in conservative fallback (``conservative_until_ts`` set), only safe
    entries issue -- these never allocate recovery-table space, so they
    can never be NACKed (Section V-D's forward-progress argument).
    """

    def select(pb: PersistBuffer) -> Optional[PBEntry]:
        conservative = pb.conservative_until_ts is not None
        #: (line, epoch) pairs with an earlier waiting entry: a later
        #: same-epoch write to the same line must not bypass it -- the
        #: controller cannot tell intra-epoch ages apart, so the buffer
        #: preserves same-address order within an epoch (the NACK retry
        #: path is where bypassing would otherwise happen).  The set (and
        #: its key tuples) is only materialized once something is actually
        #: held back; the common case -- nothing NACKed, no fallback --
        #: returns the first queued entry without allocating.
        held: Optional[set] = None
        inflight = PBEntryState.INFLIGHT
        nack_wait = PBEntryState.NACK_WAIT
        for entry in pb.entries:
            state = entry.state
            if state is inflight:
                continue
            if held is not None and (entry.line, entry.epoch_ts) in held:
                continue
            if state is nack_wait or conservative:
                if is_safe(entry.epoch_ts):
                    return entry
                if held is None:
                    held = set()
                held.add((entry.line, entry.epoch_ts))
                continue
            return entry
        return None

    return select


__all__ = [
    "EnqueueResult",
    "PBEntry",
    "PBEntryState",
    "PersistBuffer",
    "make_conservative_policy",
    "make_eager_policy",
    "select_fifo_any",
]
