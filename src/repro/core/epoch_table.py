"""The Epoch Table (ET).

Section V-A: a per-core CAM holding metadata about in-flight epochs --
outstanding write counts, cross-thread dependencies, and commit state.
The ET decides when an epoch is *safe*, *complete*, and *committed*
(Section V-C):

- safe:      the preceding epoch has committed, and the cross-thread
             dependency (if any) has been resolved;
- complete:  the epoch is closed and every write has been ACKed;
- committed: safe and complete -- for ASAP, after the MCs that received
             early flushes have acknowledged the commit message.

Commits necessarily happen in timestamp order on each core (safety
requires the predecessor to have committed first), so ``committed_upto``
summarizes the retired prefix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import EventType
from repro.sim.engine import Engine, Waiter  # noqa: F401  (Engine in API)
from repro.sim.stats import StatsRegistry
from repro.core.epoch import EpochEntry, EpochId


class EpochTable:
    """Per-core epoch lifecycle tracker."""

    def __init__(
        self,
        engine: Engine,
        capacity: int,
        stats: StatsRegistry,
        scope: str,
        core: int,
    ) -> None:
        self.engine = engine
        self.capacity = capacity
        self.stats = stats
        self.scope = scope
        self.core = core
        self.entries: Dict[int, EpochEntry] = {}
        self.current_ts = 1
        #: dense committed prefix; with strand persistency commits can be
        #: sparse, tracked in ``_committed_sparse`` until the prefix
        #: catches up.
        self.committed_upto = 0
        self._committed_sparse: set = set()
        self._strand_counter = 0
        self.entries[1] = EpochEntry(ts=1, prev=None, strand=0)
        #: optional :class:`repro.obs.Tracer`; None = tracing off.
        self.tracer = None
        self.space_waiter = Waiter(engine)
        self._commit_waiters: List[Tuple[int, Callable[[], None]]] = []

        # Wired by the hardware model:
        #: perform the model-specific commit action for a ready epoch
        #: (send MC commit messages for ASAP, publish the global TS for
        #: HOPS, ...).  Must eventually call :meth:`finalize_commit`.
        self.commit_action: Callable[[EpochEntry], None] = self.finalize_commit
        #: deliver a CDR message to a dependent epoch (model transport).
        self.send_cdr: Callable[[EpochId], None] = lambda dep: None
        #: notification hook fired whenever safety may have changed
        #: (persist buffers re-evaluate their policies on this).
        self.on_progress: Callable[[], None] = lambda: None

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------

    def entry(self, ts: int) -> EpochEntry:
        return self.entries[ts]

    @property
    def over_capacity(self) -> bool:
        return len(self.entries) > self.capacity

    def open_epoch(self, strand_break: bool = False) -> int:
        """Close the current epoch and open a new one; returns its ts.

        Called for ofence, dfence, release boundaries, and the
        coherence-triggered splits of Section IV-E.  With
        ``strand_break`` the new epoch starts a fresh strand: it has no
        predecessor, so it is immediately safe regardless of older
        strands' progress (strand persistency, Section VII-E).

        The table may transiently exceed its capacity (coherence splits
        cannot stall); fences stall while it is over capacity
        (Section VI-A).
        """
        old = self.entries.get(self.current_ts)
        self.current_ts += 1
        if strand_break or old is None:
            self._strand_counter += 1
            entry = EpochEntry(
                ts=self.current_ts, prev=None, strand=self._strand_counter
            )
        else:
            entry = EpochEntry(
                ts=self.current_ts, prev=old.ts, strand=old.strand
            )
            old.next_ts = self.current_ts
        self.entries[self.current_ts] = entry
        if old is not None:
            old.closed = True
            self.maybe_commit(old.ts)
        return self.current_ts

    def strand_of(self, ts: int) -> Optional[int]:
        """Strand id of a live epoch (None once it has committed)."""
        entry = self.entries.get(ts)
        return entry.strand if entry is not None else None

    def close_current(self) -> int:
        """Alias of :meth:`open_epoch` returning the *closed* ts."""
        closed_ts = self.current_ts
        self.open_epoch()
        return closed_ts

    # ------------------------------------------------------------------
    # write accounting (persist buffer callbacks)
    # ------------------------------------------------------------------

    def on_enqueue(self, ts: int) -> None:
        self.entries[ts].unacked += 1

    def on_write_issued(self, ts: int, mc: int, early: bool) -> None:
        if early:
            self.entries[ts].early_mcs.add(mc)

    def on_write_acked(self, ts: int) -> None:
        entry = self.entries[ts]
        entry.unacked -= 1
        if entry.unacked < 0:
            raise RuntimeError(f"ACK underflow for epoch {ts} on {self.scope}")
        self.maybe_commit(ts)

    # ------------------------------------------------------------------
    # safety / dependencies
    # ------------------------------------------------------------------

    def is_safe(self, ts: int) -> bool:
        """Ordering constraints satisfied for epoch ``ts`` (Section IV-B):
        the predecessor in its strand has committed, and the cross-thread
        dependency (if any) has been resolved."""
        if self.is_committed(ts):
            return True
        entry = self.entries[ts]
        prev_ok = entry.prev is None or self.is_committed(entry.prev)
        return prev_ok and entry.dep_resolved

    def is_committed(self, ts: int) -> bool:
        return ts <= self.committed_upto or ts in self._committed_sparse

    def _mark_committed(self, ts: int) -> None:
        self._committed_sparse.add(ts)
        while (self.committed_upto + 1) in self._committed_sparse:
            self.committed_upto += 1
            self._committed_sparse.discard(self.committed_upto)

    def set_dep(self, ts: int, source: EpochId) -> None:
        self.entries[ts].set_dep(source)

    def resolve_dep(self, ts: int) -> None:
        """The source epoch committed (CDR received / poll succeeded)."""
        entry = self.entries.get(ts)
        if entry is None:
            return  # epoch already retired
        entry.dep_resolved = True
        if self.tracer is not None:
            self.tracer.emit(
                EventType.DEP_RESOLVED, "et", core=self.core, epoch=ts,
            )
        self.maybe_commit(ts)
        self.on_progress()

    def register_dependent(self, ts: int, dependent: EpochId) -> bool:
        """A remote epoch depends on ``ts``.  Returns False when ``ts``
        has already committed (no dependency needed)."""
        if self.is_committed(ts):
            return False
        self.entries[ts].dependents.append(dependent)
        return True

    def unresolved_deps(self) -> List[Tuple[int, EpochId]]:
        """(ts, source) for every epoch still waiting on a remote commit
        -- what the HOPS polling loop scans."""
        return [
            (e.ts, e.dep)
            for e in self.entries.values()
            if e.dep is not None and not e.dep_resolved
        ]

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def maybe_commit(self, ts: int) -> None:
        entry = self.entries.get(ts)
        if entry is None:
            return
        if entry.committed or entry.commit_sent:
            return
        if entry.complete and self.is_safe(ts):
            entry.commit_sent = True
            self.commit_action(entry)

    def finalize_commit(self, entry: EpochEntry) -> None:
        """The epoch is durable-and-ordered; retire it.

        Sends CDR messages to dependents, records the commit (commits are
        in order within a strand but may interleave across strands),
        cascades to the strand successor, and wakes fence waiters.
        """
        if entry.committed:
            return
        if entry.prev is not None and not self.is_committed(entry.prev):
            raise RuntimeError(
                f"out-of-order commit: epoch {entry.ts} before its "
                f"predecessor {entry.prev} on {self.scope}"
            )
        entry.committed = True
        self._mark_committed(entry.ts)
        del self.entries[entry.ts]
        self.stats.inc("epochs_committed", scope=self.scope)
        if self.tracer is not None:
            self.tracer.emit(
                EventType.EPOCH_COMMIT, "et", core=self.core, epoch=entry.ts,
            )
        for dependent in entry.dependents:
            self.send_cdr(dependent)
        if not self.over_capacity:
            self.space_waiter.wake()
        self._wake_commit_waiters()
        if entry.next_ts is not None:
            self.maybe_commit(entry.next_ts)
        self.on_progress()

    # ------------------------------------------------------------------
    # fence support
    # ------------------------------------------------------------------

    def wait_for_commit(self, upto_ts: int, callback: Callable[[], None]) -> bool:
        """Run ``callback`` once every epoch <= ``upto_ts`` (across all
        strands) has committed.

        Returns True when already satisfied (callback NOT invoked -- the
        caller proceeds synchronously), False when the waiter was queued.
        """
        if self._dfence_ready(upto_ts):
            return True
        self._commit_waiters.append((upto_ts, callback))
        return False

    def _dfence_ready(self, upto_ts: int) -> bool:
        if self.committed_upto >= upto_ts:
            return True
        # With strands, the committed prefix may be sparse; a dfence is
        # satisfied when no live (uncommitted) epoch at or below the bound
        # remains.
        return not any(
            entry.ts <= upto_ts for entry in self.entries.values()
        )

    def _wake_commit_waiters(self) -> None:
        ready = [
            cb for ts, cb in self._commit_waiters if self._dfence_ready(ts)
        ]
        if ready:
            self._commit_waiters = [
                (ts, cb) for ts, cb in self._commit_waiters
                if not self._dfence_ready(ts)
            ]
            for callback in ready:
                self.engine.schedule(0, callback)

    def all_committed(self) -> bool:
        """True when no closed epoch is still in flight."""
        return all(
            entry.committed or not entry.closed
            for entry in self.entries.values()
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize the table at a quiescent point.

        Quiescence (every closed epoch committed, no blocked fences)
        keeps the payload tiny: typically a single open, pristine entry
        per core.  Entries are serialized generically anyway so the
        invariant is checked at restore time rather than silently
        assumed here.
        """
        if self._commit_waiters:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with blocked dfences"
            )
        if len(self.space_waiter):
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with ET space waiters"
            )
        entries = [
            {
                "ts": e.ts,
                "closed": e.closed,
                "prev": e.prev,
                "next_ts": e.next_ts,
                "strand": e.strand,
                "unacked": e.unacked,
                "dep": list(e.dep) if e.dep is not None else None,
                "dep_resolved": e.dep_resolved,
                "dependents": [list(d) for d in e.dependents],
                "early_mcs": sorted(e.early_mcs),
                "commit_acks_pending": e.commit_acks_pending,
                "commit_sent": e.commit_sent,
            }
            for e in self.entries.values()
        ]
        return {
            "current_ts": self.current_ts,
            "committed_upto": self.committed_upto,
            "committed_sparse": sorted(self._committed_sparse),
            "strand_counter": self._strand_counter,
            "entries": entries,
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        """Restore :meth:`ckpt_state` output into a freshly-built table."""
        self.current_ts = int(state["current_ts"])  # type: ignore[arg-type]
        self.committed_upto = int(state["committed_upto"])  # type: ignore[arg-type]
        self._committed_sparse = set(state["committed_sparse"])  # type: ignore[arg-type]
        self._strand_counter = int(state["strand_counter"])  # type: ignore[arg-type]
        self.entries.clear()
        for raw in state["entries"]:  # type: ignore[union-attr]
            entry = EpochEntry(
                ts=int(raw["ts"]),
                closed=bool(raw["closed"]),
                prev=raw["prev"],
                next_ts=raw["next_ts"],
                strand=int(raw["strand"]),
                unacked=int(raw["unacked"]),
                dep=tuple(raw["dep"]) if raw["dep"] is not None else None,
                dep_resolved=bool(raw["dep_resolved"]),
                dependents=[(d[0], d[1]) for d in raw["dependents"]],
                early_mcs=set(raw["early_mcs"]),
                commit_acks_pending=int(raw["commit_acks_pending"]),
                commit_sent=bool(raw["commit_sent"]),
            )
            self.entries[entry.ts] = entry


class GlobalTSRegister:
    """HOPS's global timestamp register.

    A single shared structure recording, per core, the newest committed
    epoch timestamp.  Dependent threads *poll* it (the paper's updated
    HOPS model: poll every 500 cycles, 50 cycles per access).

    The register is a **single point of contention** (Section IV-E lists
    this as HOPS's scaling flaw): accesses -- both the commit publishes
    and the dependence polls -- serialize, each occupying the register
    for the 50-cycle access time.  ASAP's direct CDR messages have no
    analogous bottleneck, which is what Figure 10's scaling gap comes
    from.
    """

    def __init__(
        self,
        stats: StatsRegistry,
        engine: Optional[Engine] = None,
        access_cycles: int = 50,
    ) -> None:
        self.stats = stats
        self.engine = engine
        self.access_cycles = access_cycles
        self._committed: Dict[int, int] = {}
        self._pending: Dict[int, int] = {}
        self._busy_until = 0

    def _serialize(self) -> int:
        """Claim the next access slot; return the cycle it completes."""
        if self.engine is None:
            return 0
        start = max(self.engine.now, self._busy_until)
        self._busy_until = start + self.access_cycles
        return self._busy_until

    def publish(self, core: int, committed_upto: int) -> None:
        """Record a commit.  The value becomes visible to pollers after
        the register's access latency.  Writes use a dedicated per-core
        write port (each core only ever updates its own entry, so writes
        never conflict); back-to-back commits from one core coalesce into
        a single pending update.  Reads are the contended path -- see
        :meth:`read_done_at`."""
        self.stats.inc("global_ts_writes")
        if self.engine is None:
            self._committed[core] = committed_upto
            return
        if core in self._pending:
            self._pending[core] = max(self._pending[core], committed_upto)
            return
        self._pending[core] = committed_upto

        def write() -> None:
            value = self._pending.pop(core)
            if value > self._committed.get(core, 0):
                self._committed[core] = value

        self.engine.schedule(self.access_cycles, write)

    def committed_upto(self, core: int) -> int:
        """Immediate (zero-time) read of the current register value; the
        caller is responsible for modelling its access latency via
        :meth:`read_done_at`."""
        self.stats.inc("global_ts_reads")
        return self._committed.get(core, 0)

    def read_done_at(self) -> int:
        """Reserve a serialized read slot; returns its completion cycle."""
        return self._serialize()

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        if self._pending:
            # pending publishes are carried by scheduled engine events,
            # which a quiescent machine has already drained.
            raise RuntimeError("cannot checkpoint with pending TS publishes")
        return {
            "committed": [[core, ts] for core, ts in self._committed.items()],
            "busy_until": self._busy_until,
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._committed = {
            int(core): int(ts)
            for core, ts in state["committed"]  # type: ignore[union-attr]
        }
        self._busy_until = int(state["busy_until"])  # type: ignore[arg-type]


__all__ = ["EpochTable", "GlobalTSRegister"]
