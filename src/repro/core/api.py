"""The persistent-memory programming API.

Workloads are written as *thread programs*: Python generators that yield
:class:`Op` instances.  The simulated core executes each op with realistic
timing, so the generator's own Python-level state (the actual data
structure being exercised) advances in simulated-time order -- a thread
holding a simulated lock really does mutate the shared structure in mutual
exclusion.

The op vocabulary matches the paper's model (Section IV-A):

- ``Store`` / ``Load``   -- accesses to persistent memory.
- ``OFence``             -- orders earlier persists before later ones
  within the thread (HOPS's ``ofence``; maps to clwb+sfence on the
  baseline and to a no-op under eADR).
- ``DFence``             -- additionally guarantees earlier writes are
  durable before the thread continues (transaction commit, "respond to
  client" points).
- ``Acquire``/``Release`` -- synchronization with release-persistency
  annotations (Section V: acquire/release are provided as annotations
  because x86 lacks the ISA support).
- ``Compute``            -- cycles of non-memory work.

Example::

    def writer(api: PMAllocator):
        buf = api.alloc(64)
        def program():
            yield Store(buf, 64)
            yield OFence()
            yield Store(buf + 64, 8)
            yield DFence()
        return program()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Thread programs are generators of ops.
Program = Iterator["Op"]


@dataclass(frozen=True)
class Op:
    """Base class for everything a thread program can yield."""


@dataclass(frozen=True)
class Store(Op):
    """A store of ``size`` bytes at ``addr`` in persistent memory.

    ``payload`` is an optional opaque logical value recorded against the
    store's write id; the crash-recovery example uses it to show real data
    surviving a crash.  It has no effect on timing.
    """

    addr: int
    size: int = 8
    payload: Any = None


@dataclass(frozen=True)
class CAS(Store):
    """An atomic compare-and-swap publishing ``size`` bytes at ``addr``.

    Timing-wise a CAS behaves exactly like the store it performs (it is
    a :class:`Store` subclass and the machine dispatches it as one);
    the distinct type exists for static analysis: a CAS is how lock-free
    code *publishes* a persistent pointer, so the linter can check that
    everything the published node refers to was flushed and fenced
    before the publish (the PL006 ``cas-publish`` rule).
    """


@dataclass(frozen=True)
class Load(Op):
    """A load of ``size`` bytes at ``addr``."""

    addr: int
    size: int = 8


@dataclass(frozen=True)
class OFence(Op):
    """Ordering fence: prior persists ordered before later persists."""


@dataclass(frozen=True)
class DFence(Op):
    """Durability fence: stall until all prior writes are durable."""


@dataclass(frozen=True)
class Acquire(Op):
    """Acquire a lock; under release persistency this synchronizes-with
    the matching :class:`Release` and establishes a persist dependency."""

    lock: int


@dataclass(frozen=True)
class Release(Op):
    """Release a lock previously acquired by this thread."""

    lock: int


@dataclass(frozen=True)
class Compute(Op):
    """``cycles`` of computation that touches no memory."""

    cycles: int


@dataclass(frozen=True)
class NewStrand(Op):
    """Begin a new *strand* (strand persistency, Pelley et al.).

    Persists in different strands of the same thread are unordered with
    respect to each other; within a strand, ofences order epochs as
    usual.  Conflicting accesses still order across strands (strong
    persist atomicity).  This is the StrandWeaver integration the paper
    sketches in Section VII-E: ASAP exploits strands (independent commit
    chains), while conservative designs simply treat the strand boundary
    as an epoch boundary -- always safe, never faster.
    """


class PMAllocator:
    """A bump allocator over the simulated persistent heap.

    Hands out non-overlapping address ranges; also mints lock ids (locks
    get their own cache lines so lock traffic is distinguishable from data
    traffic).
    """

    def __init__(self, base: int = 0x1000_0000, line_bytes: int = 64) -> None:
        self._next = base
        self._line_bytes = line_bytes
        self._lock_counter = itertools.count()

    def alloc(self, size: int, align: Optional[int] = None) -> int:
        """Allocate ``size`` bytes; returns the base address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        align = align or min(self._line_bytes, _pow2_at_least(size))
        self._next = _round_up(self._next, align)
        addr = self._next
        self._next += size
        return addr

    def alloc_lines(self, num_lines: int) -> int:
        """Allocate whole cache lines (line-aligned)."""
        return self.alloc(num_lines * self._line_bytes, align=self._line_bytes)

    def alloc_lock(self) -> int:
        """Allocate a lock variable on its own cache line."""
        return self.alloc(self._line_bytes, align=self._line_bytes)

    @property
    def bytes_allocated(self) -> int:
        return self._next - 0x1000_0000


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _pow2_at_least(value: int) -> int:
    power = 1
    while power < value and power < 64:
        power *= 2
    return power


__all__ = [
    "Acquire",
    "CAS",
    "Compute",
    "DFence",
    "Load",
    "NewStrand",
    "OFence",
    "Op",
    "PMAllocator",
    "Program",
    "Release",
    "Store",
]
