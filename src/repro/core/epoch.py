"""Epochs, epoch identifiers, and the run's persist-ordering log.

Two distinct things live here:

1. :class:`EpochId` / :class:`EpochEntry` -- the *hardware* view of an
   epoch, as tracked by the per-core epoch tables (Section V-A).

2. :class:`EpochLog` -- the *semantic* record of a run: every persistent
   write (id, line, epoch), the per-line volatile write order, and the
   epoch dependency DAG (Figure 7).  The crash-consistency checker
   (:mod:`repro.verify.consistency`) replays a crash against this log to
   decide whether recovered memory is a legal state.  The log records only
   the orderings the executing hardware model actually *guarantees*, so
   the checker validates "the model preserves the orderings it claims to
   enforce".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: An epoch is identified by (core index, per-core logical timestamp).
EpochId = Tuple[int, int]


@dataclass
class EpochEntry:
    """Epoch-table entry: the lifecycle state of one in-flight epoch.

    Lifecycle (Section IV-B nomenclature):

    - *closed*: a later epoch exists on this thread; no more writes will
      join this epoch.
    - *complete*: closed and every write has been ACKed by its controller.
    - *safe*: the preceding epoch committed and the cross-thread
      dependency (if any) has been resolved.
    - *committed*: safe and complete (for ASAP, additionally the commit
      messages to the MCs that saw early flushes have been ACKed).
    """

    ts: int
    closed: bool = False
    #: predecessor epoch in this epoch's strand (None for the first epoch
    #: of a strand).  Without strand persistency this is simply ts - 1.
    prev: Optional[int] = None
    #: successor epoch in the same strand, once one is opened.
    next_ts: Optional[int] = None
    #: strand the epoch belongs to (0 unless NewStrand is used).
    strand: int = 0
    #: number of writes enqueued in the PB but not yet ACKed by an MC.
    unacked: int = 0
    #: cross-thread dependency: the source epoch this one must follow.
    dep: Optional[EpochId] = None
    dep_resolved: bool = True
    #: epochs on other threads that depend on this one (CDR targets).
    dependents: List[EpochId] = field(default_factory=list)
    #: MC indices that received *early* flushes from this epoch (commit
    #: messages go only to these, Section V-C).
    early_mcs: Set[int] = field(default_factory=set)
    #: commit messages sent, awaiting this many MC ACKs.
    commit_acks_pending: int = 0
    commit_sent: bool = False
    committed: bool = False

    @property
    def complete(self) -> bool:
        return self.closed and self.unacked == 0

    def set_dep(self, dep: EpochId) -> None:
        if self.dep is not None:
            raise ValueError(
                f"epoch {self.ts} already has a dependency; epochs are "
                "split on every dependence-creating access"
            )
        self.dep = dep
        self.dep_resolved = False


class WriteRecord:
    """One persistent store, as the checker sees it.

    Slotted plain class with value equality/hash (it used to be a frozen
    dataclass, whose ``object.__setattr__``-based init showed up in
    profiles -- one record is allocated per store).  Treat instances as
    immutable.
    """

    __slots__ = ("write_id", "line", "core", "epoch_ts")

    def __init__(self, write_id: int, line: int, core: int, epoch_ts: int) -> None:
        self.write_id = write_id
        self.line = line
        self.core = core
        self.epoch_ts = epoch_ts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WriteRecord):
            return NotImplemented
        return (
            self.write_id == other.write_id
            and self.line == other.line
            and self.core == other.core
            and self.epoch_ts == other.epoch_ts
        )

    def __hash__(self) -> int:
        return hash((self.write_id, self.line, self.core, self.epoch_ts))

    def __repr__(self) -> str:
        return (
            f"WriteRecord(write_id={self.write_id}, line={self.line:#x}, "
            f"core={self.core}, epoch_ts={self.epoch_ts})"
        )


class EpochLog:
    """Semantic log of a run, consumed by the crash-consistency checker."""

    def __init__(self) -> None:
        self.writes: Dict[int, WriteRecord] = {}
        #: per-line volatile (coherence) order of write ids, oldest first.
        self.line_order: Dict[int, List[int]] = {}
        #: cross-thread dependency edges: (source epoch, dependent epoch).
        self.dep_edges: List[Tuple[EpochId, EpochId]] = []
        #: epochs that begin a new strand: they have no implicit intra-
        #: thread predecessor edge (strand persistency).
        self.strand_starts: Set[EpochId] = set()
        #: highest epoch timestamp seen per core (for DAG construction).
        self.max_ts: Dict[int, int] = {}
        #: optional payloads for demos: write id -> logical value.
        self.payloads: Dict[int, object] = {}

    def record_write(
        self,
        write_id: int,
        line: int,
        core: int,
        epoch_ts: int,
        payload: object = None,
    ) -> None:
        record = WriteRecord(
            write_id=write_id, line=line, core=core, epoch_ts=epoch_ts
        )
        self.writes[write_id] = record
        # get-then-insert instead of setdefault: setdefault builds (and
        # usually throws away) a fresh list on every store.
        order = self.line_order.get(line)
        if order is None:
            order = self.line_order[line] = []
        order.append(write_id)
        self._bump_ts(core, epoch_ts)
        if payload is not None:
            self.payloads[write_id] = payload

    def record_dep(self, source: EpochId, dependent: EpochId) -> None:
        self.dep_edges.append((source, dependent))
        self._bump_ts(*source)
        self._bump_ts(*dependent)

    def record_strand_start(self, core: int, ts: int) -> None:
        """Epoch (core, ts) begins a new strand: no implicit predecessor."""
        self.strand_starts.add((core, ts))
        self._bump_ts(core, ts)

    def _bump_ts(self, core: int, ts: int) -> None:
        if ts > self.max_ts.get(core, 0):
            self.max_ts[core] = ts

    def epoch_of_write(self, write_id: int) -> EpochId:
        record = self.writes[write_id]
        return (record.core, record.epoch_ts)

    def newest_write_per_line(self) -> Dict[int, int]:
        """Line -> newest write id in volatile order (the "all writes
        durable" memory image, e.g. what eADR recovers to)."""
        return {line: order[-1] for line, order in self.line_order.items()}

    def num_epochs(self) -> int:
        """Total epochs opened across all cores (Figure 2's first series)."""
        return sum(self.max_ts.values())

    def num_cross_deps(self) -> int:
        """Cross-thread dependencies recorded (Figure 2's second series)."""
        return len(self.dep_edges)


__all__ = ["EpochEntry", "EpochId", "EpochLog", "WriteRecord"]
