"""The evaluated hardware designs (Section VII's six models).

Each design is a *persistence path*: the per-core machinery that sits
between the core's stores and the memory controllers.  The machine
(:mod:`repro.core.machine`) executes workload ops and delegates every
persistence-relevant action to the path:

- ``BaselinePath``    -- current Intel systems: stores are flushed with
  clwb semantics and every ordering point (ofence / release) is an sfence
  that stalls the core until all outstanding flushes are ACKed.
- ``HOPSPath``        -- HOPS_EP / HOPS_RP: persist buffers with
  *conservative* flushing; cross-thread dependencies resolved by polling
  a global timestamp register (500-cycle period, 50-cycle access).
- ``ASAPPath``        -- ASAP_EP / ASAP_RP: *eager* flushing with early
  bits, recovery tables at the MCs, commit messages and direct CDR
  messages; NACK fallback to conservative flushing.
- ``EADRPath``        -- eADR / BBB ideal: the caches are inside the
  persistence domain, so no flushes and free fences.
- ``ASAPNoUndoPath``  -- ablation: eager flushing *without* recovery
  information.  Fast and unsound; exists so the failure-injection tests
  can demonstrate why the recovery table is necessary.

The EP/RP distinction does not live here: persistency models differ only
in *when* the machine establishes cross-thread dependencies (Section IV-A),
which is handled in :mod:`repro.core.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Union

from repro.obs.events import EventType, StallReason
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.sim.engine import Engine, ns_to_cycles
from repro.sim.stats import StatsRegistry
from repro.core.epoch import EpochEntry, EpochId
from repro.core.epoch_table import EpochTable, GlobalTSRegister
from repro.core.persist_buffer import (
    EnqueueResult,
    PersistBuffer,
    make_conservative_policy,
    make_eager_policy,
    select_fifo_any,
)


# ---------------------------------------------------------------------------
# model registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelSpec:
    """One evaluated design: a hardware model under a persistency model.

    Instances are frozen and hashable, so a spec can key result caches
    and travel across process boundaries unchanged.
    """

    name: str
    hardware: HardwareModel
    persistency: PersistencyModel

    def run_config(self, **kwargs) -> RunConfig:
        return RunConfig(
            hardware=self.hardware, persistency=self.persistency, **kwargs
        )

    def renamed(self, name: str) -> "ModelSpec":
        """The same design under a different display name (figure labels
        sometimes drop the persistency suffix, e.g. ``asap_rp`` -> ``asap``)."""
        return replace(self, name=name)


#: The canonical model table: every design the CLI, the sweeps, and the
#: benchmarks may name.  This is the ONLY place a (name, hardware,
#: persistency) triple is spelled out.
MODEL_REGISTRY: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
        ModelSpec("hops_ep", HardwareModel.HOPS, PersistencyModel.EPOCH),
        ModelSpec("hops_rp", HardwareModel.HOPS, PersistencyModel.RELEASE),
        ModelSpec("asap_ep", HardwareModel.ASAP, PersistencyModel.EPOCH),
        ModelSpec("asap_rp", HardwareModel.ASAP, PersistencyModel.RELEASE),
        ModelSpec("eadr", HardwareModel.EADR, PersistencyModel.RELEASE),
        ModelSpec("vorpal", HardwareModel.VORPAL, PersistencyModel.RELEASE),
        ModelSpec(
            "asap_no_undo", HardwareModel.ASAP_NO_UNDO, PersistencyModel.RELEASE
        ),
    )
}

#: Display aliases used by the release-persistency figures, resolved to
#: registry entries (the design is identical; only the label differs).
MODEL_ALIASES: Dict[str, str] = {
    "hops": "hops_rp",
    "asap": "asap_rp",
}

#: the six designs of Figure 8, in presentation order.
STANDARD_MODELS: List[ModelSpec] = [
    MODEL_REGISTRY[name]
    for name in ("baseline", "hops_ep", "hops_rp", "asap_ep", "asap_rp", "eadr")
]

#: release-persistency-only comparison (Sections VII-B onward use RP).
RP_MODELS: List[ModelSpec] = [
    MODEL_REGISTRY["baseline"],
    MODEL_REGISTRY["hops_rp"].renamed("hops"),
    MODEL_REGISTRY["asap_rp"].renamed("asap"),
    MODEL_REGISTRY["eadr"],
]


def model_names() -> List[str]:
    """Canonical model names, in registry (presentation) order."""
    return list(MODEL_REGISTRY)


def resolve_model(model: Union[str, ModelSpec]) -> ModelSpec:
    """Resolve a model name (or pass a spec through) to a :class:`ModelSpec`.

    Accepts canonical registry names, the RP display aliases (``hops``,
    ``asap``), and pre-built specs (returned unchanged, so callers may
    carry custom display names).
    """
    if isinstance(model, ModelSpec):
        return model
    spec = MODEL_REGISTRY.get(model)
    if spec is not None:
        return spec
    alias = MODEL_ALIASES.get(model)
    if alias is not None:
        return MODEL_REGISTRY[alias].renamed(model)
    raise KeyError(
        f"unknown model {model!r}; available: {sorted(MODEL_REGISTRY)}"
    )


@dataclass
class Transport:
    """Machine-provided message plumbing for a path."""

    #: send a flush packet for a PB entry (machine adds NoC latency and
    #: routes the MC's response back to the PB).
    flush: Callable[[object], None]
    #: send an epoch-commit message to MC ``mc``; ``on_ack`` fires when
    #: the MC has processed it (ASAP, Section V-C).
    commit: Callable[[int, int, int, Callable[[], None]], None]
    #: deliver a CDR message to a dependent epoch on another core.
    cdr: Callable[[EpochId], None]


class PersistencePath:
    """Base class: epoch numbering shared by all designs.

    Even designs with no epoch hardware (baseline, eADR) keep a timestamp
    counter so the machine can attribute writes to program-level epochs in
    the :class:`repro.core.epoch.EpochLog`.
    """

    #: whether this design buffers writes in a persist buffer.
    has_persist_buffer = False
    #: whether this design tracks cross-thread dependencies in hardware.
    tracks_dependencies = False

    def __init__(
        self,
        engine: Engine,
        config: MachineConfig,
        stats: StatsRegistry,
        core: int,
    ) -> None:
        self.engine = engine
        self.config = config
        self.stats = stats
        self.core = core
        self.scope = f"core{core}"
        self._ts = 1
        #: optional :class:`repro.obs.Tracer`; None = tracing off.
        self.tracer = None

    def attach_tracer(self, tracer) -> None:
        """Wire an observability tracer into this path's components.

        Subclasses extend this to reach their persist buffer / epoch
        table.  Attaching must happen before the machine runs; it never
        alters simulated behaviour (pure observation)."""
        self.tracer = tracer

    # -- epoch bookkeeping ------------------------------------------------

    @property
    def current_ts(self) -> int:
        return self._ts

    def split_epoch(self) -> int:
        """Close the current epoch; return the new epoch's timestamp."""
        self._ts += 1
        return self._ts

    def epoch_uncommitted(self, ts: int) -> bool:
        """Is epoch ``ts`` still in flight (so a dependency is needed)?"""
        return False

    def set_dep(self, source: EpochId) -> None:
        """Attach a cross-thread dependency to the current epoch."""
        raise NotImplementedError(f"{type(self).__name__} does not track deps")

    def register_dependent(self, ts: int, dependent: EpochId) -> bool:
        """A remote epoch now depends on our epoch ``ts``."""
        raise NotImplementedError(f"{type(self).__name__} does not track deps")

    # -- op hooks (continuation-passing; ``done`` resumes the core) -------

    def on_store(self, line: int, write_id: int, done: Callable[[], None]) -> None:
        done()

    def on_ofence(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        done()

    def on_dfence(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        done()

    def on_release_boundary(self, done: Callable[[], None]) -> None:
        """Persist-ordering work a release must perform before the lock
        becomes available to others."""
        self.split_epoch()
        done()

    def on_new_strand(self, done: Callable[[], None]) -> bool:
        """Begin a new strand.  Returns True when the design actually
        relaxes the intra-thread ordering at this point (so the machine
        records a strand start in the epoch log); designs that merely
        treat it as an epoch boundary return False -- always safe, the
        paper's "it is always safe to split an epoch" argument."""
        self.split_epoch()
        done()
        return False

    def strand_of(self, ts: int) -> Optional[int]:
        """Strand id of a live epoch; None when unknown/committed."""
        return None

    def on_program_end(self, done: Callable[[], None]) -> None:
        """Close the final epoch so dependents can resolve."""
        self.split_epoch()
        done()

    def is_drained(self) -> bool:
        return True

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize the path at a quiescent point.  Subclasses extend
        with their persist buffer / epoch table state."""
        return {"ts": self._ts}

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._ts = int(state["ts"])  # type: ignore[arg-type]


class EADRPath(PersistencePath):
    """eADR / BBB: the whole cache hierarchy is battery-backed.

    Stores are durable the moment they hit the cache; ordering is free
    because nothing is ever lost.  This is the paper's ideal bound."""

    def on_new_strand(self, done: Callable[[], None]) -> bool:
        # Nothing is ever lost, so the relaxation is trivially honoured.
        self.split_epoch()
        done()
        return True


class BaselinePath(PersistencePath):
    """Intel clwb + sfence synchronous ordering.

    Every store's line is flushed (weakly ordered, so flushes overlap one
    another and overlap execution), and each ordering point stalls the
    core until all outstanding flushes are ACKed by the controllers."""

    has_persist_buffer = True

    def __init__(self, engine, config, stats, core, transport: Transport) -> None:
        super().__init__(engine, config, stats, core)
        self.pb = PersistBuffer(
            engine,
            config.pb_entries,
            ns_to_cycles(config.pb_issue_ns),
            stats,
            self.scope,
            core,
            inflight_max=config.pb_inflight_max,
        )
        self.pb.select_entry = select_fifo_any
        self.pb.send_flush = transport.flush

    def attach_tracer(self, tracer) -> None:
        super().attach_tracer(tracer)
        self.pb.tracer = tracer

    def on_store(self, line: int, write_id: int, done: Callable[[], None]) -> None:
        self._enqueue(line, write_id, done, stall_started=None)

    def _enqueue(
        self, line: int, write_id: int, done: Callable[[], None],
        stall_started: Optional[int],
    ) -> None:
        outcome = self.pb.enqueue(line, write_id, self._ts)
        if outcome is EnqueueResult.FULL:
            if stall_started is None and self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_BEGIN, "core", core=self.core,
                    epoch=self._ts, reason=StallReason.PB_FULL,
                )
            started = stall_started if stall_started is not None else self.engine.now
            self.pb.space_waiter.wait(
                lambda: self._enqueue(line, write_id, done, started)
            )
            return
        if stall_started is not None:
            self.stats.inc(
                "cyclesStalled", self.engine.now - stall_started, scope=self.scope
            )
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "core", core=self.core,
                    epoch=self._ts, reason=StallReason.PB_FULL,
                    dur=self.engine.now - stall_started,
                )
        done()

    #: drain-stat name -> the stall-attribution reason it maps to.
    _DRAIN_REASONS = {
        "sfenceStalled": StallReason.SFENCE,
        "dfenceStalled": StallReason.DFENCE,
    }

    def _drain_then(self, done: Callable[[], None], stat: str) -> None:
        if self.pb.empty:
            done()
            return
        started = self.engine.now
        epoch = self._ts
        if self.tracer is not None:
            self.tracer.emit(
                EventType.STALL_BEGIN, "core", core=self.core, epoch=epoch,
                reason=self._DRAIN_REASONS[stat],
            )

        def finish() -> None:
            if self.pb.empty:
                self.stats.inc(stat, self.engine.now - started, scope=self.scope)
                if self.tracer is not None:
                    self.tracer.emit(
                        EventType.STALL_END, "core", core=self.core,
                        epoch=epoch, reason=self._DRAIN_REASONS[stat],
                        dur=self.engine.now - started,
                    )
                done()
            else:
                self.pb.drain_waiter.wait(finish)

        self.pb.drain_waiter.wait(finish)

    def on_ofence(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        self._drain_then(done, "sfenceStalled")

    def on_dfence(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        self._drain_then(done, "dfenceStalled")

    def on_release_boundary(self, done: Callable[[], None]) -> None:
        # Real PMDK-style code issues clwb+sfence before unlocking so the
        # next lock holder observes durable data.
        self.split_epoch()
        self._drain_then(done, "sfenceStalled")

    def on_program_end(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        self._drain_then(done, "dfenceStalled")

    def is_drained(self) -> bool:
        return self.pb.empty

    def ckpt_state(self) -> Dict[str, object]:
        state = super().ckpt_state()
        state["pb"] = self.pb.ckpt_state()
        return state

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        super().ckpt_restore(state)
        self.pb.ckpt_restore(state["pb"])  # type: ignore[arg-type]


class BufferedPath(PersistencePath):
    """Shared machinery for the epoch-table designs (HOPS and ASAP)."""

    has_persist_buffer = True
    tracks_dependencies = True

    def __init__(self, engine, config, stats, core, transport: Transport) -> None:
        super().__init__(engine, config, stats, core)
        self.transport = transport
        self.et = EpochTable(engine, config.et_entries, stats, self.scope, core)
        self.pb = PersistBuffer(
            engine,
            config.pb_entries,
            ns_to_cycles(config.pb_issue_ns),
            stats,
            self.scope,
            core,
            inflight_max=config.pb_inflight_max,
        )
        self.pb.send_flush = transport.flush
        self.pb.classify_early = lambda ts: not self.et.is_safe(ts)
        self.pb.on_acked = lambda entry: self.et.on_write_acked(entry.epoch_ts)
        self.et.on_progress = self._on_progress

    def attach_tracer(self, tracer) -> None:
        super().attach_tracer(tracer)
        self.pb.tracer = tracer
        self.et.tracer = tracer

    # epoch numbering is delegated to the epoch table ----------------------

    @property
    def current_ts(self) -> int:
        return self.et.current_ts

    def split_epoch(self) -> int:
        return self.et.open_epoch()

    def epoch_uncommitted(self, ts: int) -> bool:
        return not self.et.is_committed(ts)

    def set_dep(self, source: EpochId) -> None:
        self.et.set_dep(self.et.current_ts, source)

    def register_dependent(self, ts: int, dependent: EpochId) -> bool:
        return self.et.register_dependent(ts, dependent)

    def strand_of(self, ts: int) -> Optional[int]:
        return self.et.strand_of(ts)

    def _on_progress(self) -> None:
        self.pb.reassess()

    # op hooks --------------------------------------------------------------

    def on_store(self, line: int, write_id: int, done: Callable[[], None]) -> None:
        self._enqueue(line, write_id, done, stall_started=None)

    def _enqueue(
        self, line: int, write_id: int, done: Callable[[], None],
        stall_started: Optional[int],
    ) -> None:
        outcome = self.pb.enqueue(line, write_id, self.current_ts)
        if outcome is EnqueueResult.FULL:
            if stall_started is None and self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_BEGIN, "core", core=self.core,
                    epoch=self.current_ts, reason=StallReason.PB_FULL,
                )
            started = stall_started if stall_started is not None else self.engine.now
            self.pb.space_waiter.wait(
                lambda: self._enqueue(line, write_id, done, started)
            )
            return
        if outcome is EnqueueResult.ADDED:
            # A coalesced store shares its entry's single ACK; counting it
            # would leave the epoch incomplete forever.
            self.et.on_enqueue(self.current_ts)
        if stall_started is not None:
            self.stats.inc(
                "cyclesStalled", self.engine.now - stall_started, scope=self.scope
            )
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "core", core=self.core,
                    epoch=self.current_ts, reason=StallReason.PB_FULL,
                    dur=self.engine.now - stall_started,
                )
        done()

    def on_ofence(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        self._wait_et_space(done)

    def _wait_et_space(
        self, done: Callable[[], None], _started: Optional[int] = None
    ) -> None:
        if not self.et.over_capacity:
            if _started is not None and self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "core", core=self.core,
                    epoch=self.current_ts, reason=StallReason.ET_FULL,
                    dur=self.engine.now - _started,
                )
            done()
        else:
            self.stats.inc("et_full_stalls", scope=self.scope)
            if _started is None:
                _started = self.engine.now
                if self.tracer is not None:
                    self.tracer.emit(
                        EventType.STALL_BEGIN, "core", core=self.core,
                        epoch=self.current_ts, reason=StallReason.ET_FULL,
                    )
            self.et.space_waiter.wait(
                lambda: self._wait_et_space(done, _started)
            )

    def on_dfence(self, done: Callable[[], None]) -> None:
        closed_ts = self.et.close_current()
        started = self.engine.now

        def resume() -> None:
            self.stats.inc(
                "dfenceStalled", self.engine.now - started, scope=self.scope
            )
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.STALL_END, "core", core=self.core,
                    epoch=closed_ts, reason=StallReason.DFENCE,
                    dur=self.engine.now - started,
                )
            done()

        if self.et.wait_for_commit(closed_ts, resume):
            done()
        elif self.tracer is not None:
            self.tracer.emit(
                EventType.STALL_BEGIN, "core", core=self.core,
                epoch=closed_ts, reason=StallReason.DFENCE,
            )

    def on_release_boundary(self, done: Callable[[], None]) -> None:
        # Buffered designs track the dependency instead of draining; the
        # release is only an epoch boundary (a one-sided barrier, Fig. 4).
        self.split_epoch()
        done()

    def on_program_end(self, done: Callable[[], None]) -> None:
        self.split_epoch()
        done()

    def is_drained(self) -> bool:
        return self.pb.empty and self.et.all_committed()

    def ckpt_state(self) -> Dict[str, object]:
        state = super().ckpt_state()
        state["et"] = self.et.ckpt_state()
        state["pb"] = self.pb.ckpt_state()
        return state

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        super().ckpt_restore(state)
        self.et.ckpt_restore(state["et"])  # type: ignore[arg-type]
        self.pb.ckpt_restore(state["pb"])  # type: ignore[arg-type]


class HOPSPath(BufferedPath):
    """HOPS: conservative flushing + global-TS-register polling."""

    def __init__(
        self, engine, config, stats, core, transport: Transport,
        global_ts: GlobalTSRegister,
    ) -> None:
        super().__init__(engine, config, stats, core, transport)
        self.global_ts = global_ts
        self._polling = False
        self.pb.select_entry = make_conservative_policy(self.et.is_safe)
        self.pb.classify_early = lambda ts: False  # nothing unsafe ever issues
        self.et.commit_action = self._commit

    def _commit(self, entry: EpochEntry) -> None:
        self.et.finalize_commit(entry)
        self.global_ts.publish(self.core, self.et.committed_upto)

    def set_dep(self, source: EpochId) -> None:
        super().set_dep(source)
        self._ensure_polling()

    def _ensure_polling(self) -> None:
        if self._polling:
            return
        self._polling = True
        self.engine.schedule(self.config.hops_poll_interval_cycles, self._poll_fire)

    def _poll_fire(self) -> None:
        # The global register holds one committed-timestamp entry per
        # core, so a poll round needs one serialized 50-cycle access per
        # *distinct source core* it is waiting on (Section VII's updated
        # HOPS).  All cores' polls and the commit publishes contend for
        # the same access port; under epoch persistency the denser
        # dependence fan-in means more sources per round, which is what
        # pushes HOPS_EP below the baseline on the concurrent structures
        # (Section VII-A) and caps HOPS's scaling (Section IV-E).
        deps = self.et.unresolved_deps()
        if not deps:
            self._polling = False
            return
        done_at = self.engine.now
        for _ in deps:
            done_at = self.global_ts.read_done_at()
        self.engine.at(done_at, self._poll_check)

    def _poll_check(self) -> None:
        for ts, source in self.et.unresolved_deps():
            src_core, src_ts = source
            if self.global_ts.committed_upto(src_core) >= src_ts:
                self.et.resolve_dep(ts)
        if self.et.unresolved_deps():
            self.engine.schedule(
                self.config.hops_poll_interval_cycles, self._poll_fire
            )
        else:
            self._polling = False

    def ckpt_state(self) -> Dict[str, object]:
        if self._polling:
            # the poll loop is carried by scheduled events, which a
            # quiescent machine has drained (it exits once every
            # dependency is resolved).
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint with the HOPS poll "
                "loop active"
            )
        return super().ckpt_state()


class ASAPPath(BufferedPath):
    """ASAP: eager flushing, speculative updates, commit/CDR protocol.

    Also the design that exploits strand persistency (the StrandWeaver
    integration the paper sketches): a strand-start epoch has no
    predecessor, so its flushes are *safe* immediately and its commit
    chain runs independently of other strands'."""

    def __init__(self, engine, config, stats, core, transport: Transport) -> None:
        super().__init__(engine, config, stats, core, transport)
        self.pb.select_entry = make_eager_policy(self.et.is_safe)
        self.pb.on_issue = self._on_issue
        self.pb.on_nacked = self._on_nacked
        self.et.commit_action = self._commit
        self.et.send_cdr = transport.cdr

    def on_new_strand(self, done: Callable[[], None]) -> bool:
        self.et.open_epoch(strand_break=True)
        self._wait_et_space(done)
        return True

    def _on_issue(self, entry) -> None:
        if entry.issued_early:
            mc = self._mc_of(entry.line)
            self.et.on_write_issued(entry.epoch_ts, mc, early=True)

    #: wired by the machine (address interleaving lives there).
    _mc_of: Callable[[int], int] = staticmethod(lambda line: 0)

    def _on_nacked(self, entry) -> None:
        """Fall back to conservative flushing until this epoch commits
        (Section V-D)."""
        horizon = entry.epoch_ts
        if (
            self.pb.conservative_until_ts is None
            or horizon > self.pb.conservative_until_ts
        ):
            self.pb.conservative_until_ts = horizon
        self.stats.inc("conservative_fallbacks", scope=self.scope)

    def _on_progress(self) -> None:
        if (
            self.pb.conservative_until_ts is not None
            and self.et.committed_upto >= self.pb.conservative_until_ts
        ):
            self.pb.conservative_until_ts = None
        super()._on_progress()

    def _commit(self, entry: EpochEntry) -> None:
        if not entry.early_mcs:
            self.et.finalize_commit(entry)
            return
        entry.commit_acks_pending = len(entry.early_mcs)
        for mc in sorted(entry.early_mcs):
            self.transport.commit(
                mc, self.core, entry.ts, lambda e=entry: self._commit_ack(e)
            )

    def _commit_ack(self, entry: EpochEntry) -> None:
        entry.commit_acks_pending -= 1
        if entry.commit_acks_pending == 0:
            self.et.finalize_commit(entry)


class VorpalPath(BufferedPath):
    """Vorpal-style design: eager issue, ordering at the controllers.

    The persist buffer flushes FIFO without any safety gating; every
    epoch's writes carry a vector-clock tag (registered with the
    coordinator), and the memory controllers delay writes until the
    broadcast-distributed durable view covers their tags.  Cross-thread
    dependences merge the source's clock into the dependent's -- no epoch
    table dependence is recorded because the ordering burden lives at the
    controllers, not in the core."""

    def __init__(
        self, engine, config, stats, core, transport: Transport, coordinator
    ) -> None:
        super().__init__(engine, config, stats, core, transport)
        self.coordinator = coordinator
        self.pb.select_entry = select_fifo_any
        self.pb.classify_early = lambda ts: False
        self.et.commit_action = self._commit
        self.vc = [0] * config.num_cores
        self.vc[core] = 1
        coordinator.register_epoch(core, 1, tuple(self.vc))

    def _commit(self, entry: EpochEntry) -> None:
        self.et.finalize_commit(entry)
        self.coordinator.note_commit(self.core, self.et.committed_upto)

    def split_epoch(self) -> int:
        ts = self.et.open_epoch()
        self.vc[self.core] = ts
        self.coordinator.register_epoch(self.core, ts, tuple(self.vc))
        return ts

    def set_dep(self, source: EpochId) -> None:
        # merge the source epoch's clock into the current epoch's tag;
        # the controllers enforce the resulting ordering.
        src_vc = self.coordinator.vc_of(*source)
        self.vc = [max(a, b) for a, b in zip(self.vc, src_vc)]
        self.vc[self.core] = self.et.current_ts
        self.coordinator.register_epoch(
            self.core, self.et.current_ts, tuple(self.vc)
        )

    def ckpt_state(self) -> Dict[str, object]:
        state = super().ckpt_state()
        state["vc"] = list(self.vc)
        return state

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        super().ckpt_restore(state)
        self.vc = [int(v) for v in state["vc"]]  # type: ignore[union-attr]


class ASAPNoUndoPath(ASAPPath):
    """Eager flushing with the recovery table disabled (ablation).

    Every flush claims to be safe, so the controllers write speculative
    data straight to memory with no undo information.  Normal-operation
    performance matches ASAP's upper bound, but crashes can recover to an
    inconsistent state -- the property tests rely on this model to prove
    the consistency checker has teeth."""

    def __init__(self, engine, config, stats, core, transport: Transport) -> None:
        super().__init__(engine, config, stats, core, transport)
        self.pb.classify_early = lambda ts: False
        self.et.commit_action = self.et.finalize_commit


__all__ = [
    "ASAPNoUndoPath",
    "ASAPPath",
    "BaselinePath",
    "BufferedPath",
    "EADRPath",
    "HOPSPath",
    "MODEL_ALIASES",
    "MODEL_REGISTRY",
    "ModelSpec",
    "PersistencePath",
    "RP_MODELS",
    "STANDARD_MODELS",
    "Transport",
    "VorpalPath",
    "model_names",
    "resolve_model",
]
