"""The Recovery Table (RT): undo and delay records at the memory controller.

Section V-A: the RT is a small CAM residing in each memory controller,
inside the ADR persistence domain.  It holds two kinds of records:

- **undo** records store the *safe* value for an address -- the value in
  memory prior to a speculative persist, or the value written by the most
  recent safe flush (Table I, case 2).  On a crash, undo values are written
  to memory, unwinding speculation (Section V-E).

- **delay** records hold writes from epochs that have not yet committed and
  could not update memory because an undo record already guards the address
  (the write-collision case, Figure 5).  They are processed when their
  epoch commits: the delayed value either goes to memory or into the
  surviving undo record.

Undo and delay records share the table's capacity (Table II: 32 entries per
MC).  When an early flush needs a record and the table is full, the
controller NACKs the flush and the persist buffer falls back to
conservative flushing (Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.events import EventType
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry


@dataclass
class UndoRecord:
    """Safe value for an address whose memory copy is speculative."""

    line: int
    safe_value: int
    #: the epoch whose early flush created this record; the record is
    #: deleted when that epoch commits.
    core: int
    epoch_ts: int


@dataclass
class DelayRecord:
    """A write held back until its epoch commits."""

    line: int
    write_id: int
    core: int
    epoch_ts: int


class RecoveryTable:
    """Undo + delay records for one memory controller."""

    def __init__(
        self,
        engine: Engine,
        capacity: int,
        stats: StatsRegistry,
        scope: str,
    ) -> None:
        self.engine = engine
        self.capacity = capacity
        self.stats = stats
        self.scope = scope
        self._undo: Dict[int, UndoRecord] = {}
        #: delay records in arrival order (multiple per line allowed;
        #: Section IV-F: "more than one delay record may be created").
        self._delay: List[DelayRecord] = []
        self._occupancy = stats.weighted("rt_occupancy", capacity, scope=scope)
        self.max_occupancy = 0
        #: optional :class:`repro.obs.Tracer` + owning MC index (for
        #: controller-lane attribution); wired by the machine assembler.
        self.tracer = None
        self.mc: Optional[int] = None

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._undo) + len(self._delay)

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def _note_occupancy(self) -> None:
        occupancy = len(self)
        self._occupancy.update(self.engine.now, occupancy)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy

    # -- controller-facing protocol (RecoveryTableProtocol) -------------

    def has_undo(self, line: int) -> bool:
        return line in self._undo

    def undo_owner(self, line: int) -> Optional[Tuple[int, int]]:
        """(core, epoch_ts) of the undo record guarding ``line``."""
        record = self._undo.get(line)
        if record is None:
            return None
        return (record.core, record.epoch_ts)

    def create_undo(
        self, line: int, safe_value: int, core: int, epoch_ts: int
    ) -> bool:
        """Guard ``line`` with its current safe value.  False when full."""
        if line in self._undo:
            raise ValueError(f"undo record already exists for line {line:#x}")
        if self.full:
            return False
        self._undo[line] = UndoRecord(
            line=line, safe_value=safe_value, core=core, epoch_ts=epoch_ts
        )
        self._note_occupancy()
        if self.tracer is not None:
            self.tracer.emit(
                EventType.UNDO_CREATE, "rt", mc=self.mc, core=core,
                epoch=epoch_ts, line=line,
            )
        return True

    def update_undo(self, line: int, safe_value: int) -> None:
        """A safe flush arrived while memory is speculative (Table I,
        case 2): the incoming value becomes the new safe value."""
        record = self._undo.get(line)
        if record is None:
            raise KeyError(f"no undo record for line {line:#x}")
        record.safe_value = safe_value

    def add_delay(
        self, line: int, write_id: int, core: int, epoch_ts: int
    ) -> bool:
        """Hold an early write behind an existing undo record.

        Coalesces with an existing delay record from the *same epoch* to
        the same line (Figure 9 discussion: "flushes to the same address,
        belonging to the same epoch, can be coalesced in the delay
        record").  Returns False when a new record is needed but the table
        is full.
        """
        for record in self._delay:
            if (
                record.line == line
                and record.core == core
                and record.epoch_ts == epoch_ts
            ):
                record.write_id = write_id
                self.stats.inc("delay_coalesced", scope=self.scope)
                return True
        if self.full:
            return False
        self._delay.append(
            DelayRecord(line=line, write_id=write_id, core=core, epoch_ts=epoch_ts)
        )
        self.stats.inc("delay_records_created", scope=self.scope)
        self._note_occupancy()
        if self.tracer is not None:
            self.tracer.emit(
                EventType.DELAY_CREATE, "rt", mc=self.mc, core=core,
                epoch=epoch_ts, line=line,
            )
        return True

    def supersede_delay(self, line: int, core: int, epoch_ts: int) -> int:
        """Drop delay records a newer same-epoch flush supersedes.

        Persist buffers issue same-line writes of one epoch in order, so
        a flush arriving from (core, epoch_ts) is per-line newer than any
        delay record the same epoch already has on that line.  Keeping
        the old record would resurrect the stale value when the epoch
        commits (a bug the exhaustive protocol checker caught).  Returns
        the number of records dropped.
        """
        if not self._delay:
            # nothing to supersede -- skip the list rebuild (this runs on
            # every flush arrival; delay records are rare).
            return 0
        before = len(self._delay)
        self._delay = [
            record for record in self._delay
            if not (
                record.line == line
                and record.core == core
                and record.epoch_ts == epoch_ts
            )
        ]
        dropped = before - len(self._delay)
        if dropped:
            self.stats.inc("delay_superseded", dropped, scope=self.scope)
            self._note_occupancy()
        return dropped

    def process_commit(self, core: int, epoch_ts: int) -> List[Tuple[int, int]]:
        """Handle an epoch commit (Section V-C).

        Deletes the epoch's undo records (memory's speculative values are
        now safe) and re-processes its delay records as if the flushes just
        arrived: a delayed value whose line is still guarded by *another*
        epoch's undo record folds into that record; otherwise it must be
        persisted to memory -- those are returned for the controller to
        write out.
        """
        for line in [
            l for l, r in self._undo.items()
            if r.core == core and r.epoch_ts == epoch_ts
        ]:
            del self._undo[line]

        to_persist: List[Tuple[int, int]] = []
        remaining: List[DelayRecord] = []
        for record in self._delay:
            if record.core == core and record.epoch_ts == epoch_ts:
                undo = self._undo.get(record.line)
                if undo is not None:
                    undo.safe_value = record.write_id
                    self.stats.inc("delay_folded_into_undo", scope=self.scope)
                else:
                    to_persist.append((record.line, record.write_id))
            else:
                remaining.append(record)
        self._delay = remaining
        self._note_occupancy()
        return to_persist

    def undo_records(self) -> List[Tuple[int, int]]:
        """(line, safe value) pairs for the crash drain (Section V-E)."""
        return [(r.line, r.safe_value) for r in self._undo.values()]

    # -- checkpointing ----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point.

        Quiescence empties the table: parking closes every epoch, all
        closed epochs commit during the drain, and commits delete their
        undo/delay records.  Only the high-water mark survives.
        """
        if self._undo or self._delay:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint a non-empty recovery table"
            )
        return {"max_occupancy": self.max_occupancy}

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self.max_occupancy = int(state["max_occupancy"])  # type: ignore[arg-type]

    # -- inspection -------------------------------------------------------

    def undo_for(self, line: int) -> Optional[UndoRecord]:
        return self._undo.get(line)

    def delays_for(self, line: int) -> List[DelayRecord]:
        return [r for r in self._delay if r.line == line]

    def records_of_epoch(self, core: int, epoch_ts: int) -> int:
        """How many records (undo + delay) an epoch currently owns."""
        undo = sum(
            1 for r in self._undo.values()
            if r.core == core and r.epoch_ts == epoch_ts
        )
        delay = sum(
            1 for r in self._delay
            if r.core == core and r.epoch_ts == epoch_ts
        )
        return undo + delay


__all__ = ["DelayRecord", "RecoveryTable", "UndoRecord"]
