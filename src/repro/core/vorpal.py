"""A Vorpal-style comparator: vector-clock ordering at the controllers.

Vorpal (Korgaonkar et al., PODC '19) is the other design that orders
persists across multiple memory controllers.  The paper compares against
it only qualitatively (Table IV); this module makes the comparison
quantitative with a simplified but mechanism-faithful model:

- every write is tagged with its thread's **vector clock** (one entry per
  core -- the "high tag cost" the paper calls out);
- writes are flushed eagerly but are **delayed in an ordering queue at
  the controller** until the controller can prove every write that
  happens-before them is durable;
- controllers learn about global durability through **periodic clock
  broadcasts** -- "the broadcast frequency determines the rate of forward
  progress" (Section III), which the bench sweep demonstrates directly.

Durability bookkeeping rides on the existing epoch tables: a core's
committed prefix *is* its durable epoch index, and the coordinator's
broadcast snapshots those indices for the controllers.  On a crash the
ordering queues are simply discarded -- everything in them was, by
construction, not yet safely ordered -- so recovery consistency holds
(the property tests check it like every other model's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.mem.controller import FlushPacket, MemoryController
from repro.sim.engine import Engine
from repro.sim.stats import StatsRegistry

#: bits per vector-clock entry (the tag-cost accounting).
TAG_BITS_PER_ENTRY = 32


@dataclass
class _QueuedWrite:
    packet: FlushPacket
    releasing: bool = False


class VorpalCoordinator:
    """Vector clocks, epoch tags, and the broadcast machinery."""

    def __init__(
        self,
        engine: Engine,
        num_cores: int,
        stats: StatsRegistry,
        broadcast_cycles: int = 100,
    ) -> None:
        self.engine = engine
        self.num_cores = num_cores
        self.stats = stats
        self.broadcast_cycles = broadcast_cycles
        #: (core, epoch_ts) -> vector-clock tag for that epoch's writes.
        self._tags: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        #: live (instant) durable-epoch view, updated as epochs commit.
        self._durable: List[int] = [0] * num_cores
        #: the controllers' (stale) view, refreshed by broadcasts.
        self._published: List[int] = [0] * num_cores
        self._queues: Dict[MemoryController, List[_QueuedWrite]] = {}
        self._broadcast_scheduled = False

    # ------------------------------------------------------------------
    # path-facing: tags and durability
    # ------------------------------------------------------------------

    def register_epoch(
        self, core: int, epoch_ts: int, vc: Tuple[int, ...]
    ) -> None:
        self._tags[(core, epoch_ts)] = vc
        self.stats.inc("vorpal_tag_bits", TAG_BITS_PER_ENTRY * self.num_cores)

    def vc_of(self, core: int, epoch_ts: int) -> Tuple[int, ...]:
        tag = self._tags.get((core, epoch_ts))
        if tag is None:
            # epoch predates tracking (already durable): depend on nothing
            return tuple(0 for _ in range(self.num_cores))
        return tag

    def note_commit(self, core: int, committed_upto: int) -> None:
        """A core's epoch chain advanced; picked up at the next broadcast."""
        if committed_upto > self._durable[core]:
            self._durable[core] = committed_upto
        self._ensure_broadcast()

    # ------------------------------------------------------------------
    # controller-facing: the ordering queues
    # ------------------------------------------------------------------

    def enqueue(self, mc: MemoryController, packet: FlushPacket) -> None:
        """A flush arrived; hold it until its ordering is provably safe."""
        queue = self._queues.setdefault(mc, [])
        queue.append(_QueuedWrite(packet=packet))
        occupancy = self.stats.weighted(
            "vorpal_queue_occupancy", 256, scope=mc.scope
        )
        occupancy.update(self.engine.now, len(queue))
        self._scan(mc)
        self._ensure_broadcast()

    def _eligible(self, packet: FlushPacket) -> bool:
        tag = self.vc_of(packet.core, packet.epoch_ts)
        view = self._published
        for core, needed in enumerate(tag):
            if core == packet.core:
                if view[core] < packet.epoch_ts - 1:
                    return False
            elif view[core] < needed:
                return False
        return True

    def _scan(self, mc: MemoryController) -> None:
        """Release every eligible write, FIFO, respecting WPQ space."""
        queue = self._queues.get(mc, [])
        for item in list(queue):
            if item.releasing:
                continue
            if self._eligible(item.packet):
                item.releasing = True
                self._release(mc, item)

    def _release(self, mc: MemoryController, item: _QueuedWrite) -> None:
        packet = item.packet
        if mc.wpq.push(packet.line, packet.write_id):
            mc.adr_value[packet.line] = packet.write_id
            mc.stats.inc("flushes_admitted", scope=mc.scope)
            queue = self._queues[mc]
            queue.remove(item)
            self.stats.weighted(
                "vorpal_queue_occupancy", 256, scope=mc.scope
            ).update(self.engine.now, len(queue))
            mc._ack(packet)
            mc._pump_drain()
        else:
            mc.wpq.space_waiter.wait(lambda: self._release(mc, item))

    # ------------------------------------------------------------------
    # broadcasts
    # ------------------------------------------------------------------

    def _ensure_broadcast(self) -> None:
        if self._broadcast_scheduled:
            return
        self._broadcast_scheduled = True
        self.engine.schedule(self.broadcast_cycles, self._broadcast)

    def _broadcast(self) -> None:
        self._broadcast_scheduled = False
        self.stats.inc("vorpal_broadcasts")
        self._published = list(self._durable)
        for mc in list(self._queues):
            self._scan(mc)
        # keep broadcasting while any write is waiting or views are stale
        if any(self._queues.get(mc) for mc in self._queues) or (
            self._published != self._durable
        ):
            self._ensure_broadcast()

    # ------------------------------------------------------------------

    def pending_writes(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point: the ordering queues are empty
        (everything durable) and the published view has caught up."""
        if self.pending_writes():
            raise RuntimeError(
                "cannot checkpoint with writes in vorpal ordering queues"
            )
        if self._broadcast_scheduled:
            raise RuntimeError(
                "cannot checkpoint with a vorpal broadcast in flight"
            )
        return {
            "tags": [
                [core, ts, list(vc)] for (core, ts), vc in self._tags.items()
            ],
            "durable": list(self._durable),
            "published": list(self._published),
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._tags = {
            (int(core), int(ts)): tuple(vc)
            for core, ts, vc in state["tags"]  # type: ignore[union-attr]
        }
        self._durable = [int(v) for v in state["durable"]]  # type: ignore[union-attr]
        self._published = [int(v) for v in state["published"]]  # type: ignore[union-attr]


__all__ = ["TAG_BITS_PER_ENTRY", "VorpalCoordinator"]
