"""Crash-point enumeration: where a campaign pulls the plug.

Following the systematic-enumeration methodology (crash points chosen by
*structure*, not uniform luck), a campaign crashes at two kinds of
instants:

1. **Epoch-commit boundaries** -- the cycle right after each
   ``EPOCH_COMMIT`` event of a traced reference run.  Commits are where
   buffered designs change what recovery would see, so the instants just
   after them are the highest-value probes.  (Designs without an epoch
   table -- the Intel baseline, eADR -- contribute none.)
2. **Stratified-random mid-epoch cycles** -- the run's cycle span is cut
   into equal strata and one cycle drawn per stratum, so probes cover
   the whole execution instead of clustering.

Both sets are derived deterministically from the spec (the RNG is seeded
with a content hash), so the same campaign always crashes at the same
cycles -- a requirement for result caching and byte-identical reports.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.api import Op
from repro.core.machine import Machine
from repro.obs.events import Event, EventType
from repro.sim.config import MachineConfig, RunConfig
from repro.workloads.base import Workload, run_workload


class CommitCollector:
    """Event sink recording the cycle of every epoch commit."""

    def __init__(self) -> None:
        self.cycles: List[int] = []

    def handle(self, event: Event) -> None:
        if event.type is EventType.EPOCH_COMMIT:
            self.cycles.append(event.cycle)

    def close(self) -> None:  # pragma: no cover - sink protocol
        pass


@dataclass(frozen=True)
class ReferenceRun:
    """Horizon and commit boundaries of one traced full run."""

    #: cycle at which the machine fully drained (enumeration horizon).
    drain_cycles: int
    runtime_cycles: int
    #: epoch-commit cycles, ascending, deduplicated.
    commit_cycles: tuple


def trace_reference(
    workload: Workload,
    machine: MachineConfig,
    run_config: RunConfig,
    num_threads: Optional[int] = None,
) -> ReferenceRun:
    """Run the workload to completion once, collecting commit cycles."""
    collector = CommitCollector()
    result = run_workload(
        workload, machine, run_config,
        num_threads=num_threads, sinks=[collector],
    )
    return ReferenceRun(
        drain_cycles=result.result.drain_cycles,
        runtime_cycles=result.result.runtime_cycles,
        commit_cycles=tuple(sorted(set(collector.cycles))),
    )


def trace_reference_programs(
    machine: MachineConfig,
    run_config: RunConfig,
    per_thread_ops: List[List[Op]],
) -> ReferenceRun:
    """Trace a reference run from raw per-thread op lists.

    The litmus engine works with explicit op lists rather than registry
    workloads, so this is the programs-level twin of
    :func:`trace_reference`: one full run, commit cycles collected, no
    crash.
    """
    collector = CommitCollector()
    system = Machine(machine, run_config, sinks=[collector])
    result = system.run([iter(ops) for ops in per_thread_ops])
    return ReferenceRun(
        drain_cycles=result.drain_cycles,
        runtime_cycles=result.runtime_cycles,
        commit_cycles=tuple(sorted(set(collector.cycles))),
    )


def derive_rng(identity: dict) -> random.Random:
    """A deterministic RNG keyed by a JSON-serializable identity dict.

    Never uses Python's ``hash()`` (randomized across processes); the
    seed is a content hash, so every process and every run agrees.
    """
    payload = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return random.Random(int(digest[:16], 16))


def stratified_cycles(horizon: int, count: int, rng: random.Random) -> List[int]:
    """One uniformly drawn cycle from each of ``count`` equal strata."""
    if horizon <= 2 or count <= 0:
        return []
    out = []
    span = horizon - 1  # usable cycles: [1, horizon - 1]
    for index in range(count):
        lo = 1 + index * span // count
        hi = 1 + (index + 1) * span // count
        out.append(rng.randrange(lo, max(lo + 1, hi)))
    return out


def enumerate_crash_points(
    reference: ReferenceRun,
    points: int,
    identity: dict,
) -> List[int]:
    """The campaign's crash cycles: commit boundaries + stratified fill.

    At most half the budget goes to commit boundaries (evenly subsampled
    when a run commits more epochs than that); the rest is stratified
    random over ``[1, drain_cycles)``.  Returns ascending, deduplicated
    cycles -- possibly fewer than ``points`` for very short runs.
    """
    horizon = max(2, reference.drain_cycles)
    rng = derive_rng(identity)

    boundaries = [
        c + 1 for c in reference.commit_cycles if 1 <= c + 1 < horizon
    ]
    budget = max(1, points // 2)
    if len(boundaries) > budget:
        step = len(boundaries) / budget
        boundaries = [boundaries[int(i * step)] for i in range(budget)]

    chosen = set(boundaries)
    chosen.update(stratified_cycles(horizon, points - len(boundaries), rng))
    # top up collisions (a stratified draw landing on a boundary)
    attempts = 0
    while len(chosen) < points and attempts < 10 * points and horizon > 2:
        chosen.add(rng.randrange(1, horizon))
        attempts += 1
    return sorted(chosen)


__all__ = [
    "CommitCollector",
    "ReferenceRun",
    "derive_rng",
    "enumerate_crash_points",
    "stratified_cycles",
    "trace_reference",
    "trace_reference_programs",
]
