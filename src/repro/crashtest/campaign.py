"""The crash-sweep campaign engine.

One **campaign** = (workloads x models) cells; one **cell** = a
deterministic set of crash points (see :mod:`repro.crashtest.points`),
each re-simulated from scratch, crashed with
:func:`repro.core.crash.crash_machine`, and adjudicated against:

- the generic Theorem-2 checker
  (:func:`repro.verify.consistency.check_consistency`), and
- the workload's semantic ``recovery_oracle()``
  (:meth:`repro.workloads.base.Workload.recovery_oracle`).

Crash points fan out over the :mod:`repro.exp` process-pool executor and
cache exactly like experiment cells: a :class:`CrashPointSpec` is
content-addressed, its :class:`CrashPointResult` is a small picklable
record.  On a violation the campaign minimizes the failure
(:mod:`repro.crashtest.minimize`) and serializes a replayable
:class:`~repro.core.crash.CrashState`.

Reports are **canonical**: same spec + same seed = byte-identical
``to_dict()`` JSON, whether results came fresh, from the cache, or from
a different worker count.  Nothing wall-clock-dependent is recorded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.api import PMAllocator
from repro.core.crash import CrashState, run_and_crash
from repro.core.models import RP_MODELS, ModelSpec, resolve_model
from repro.exp.executors import make_executor
from repro.exp.spec import _jsonable
from repro.obs.events import Event, EventType
from repro.sim.config import MachineConfig, RunConfig
from repro.verify.consistency import check_consistency
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload
from repro.crashtest.minimize import MinimizedFailure, minimize_failure
from repro.crashtest.points import (
    ReferenceRun,
    enumerate_crash_points,
    trace_reference,
)
from repro.crashtest.serialize import dumps_state

#: participates in every CrashPointSpec key; bump when adjudication or
#: crash semantics change in a way that invalidates cached verdicts.
CRASHTEST_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# adjudication
# ---------------------------------------------------------------------------

def adjudicate(state: CrashState, workload: Workload) -> Tuple[List[str], List[str]]:
    """(generic violations, oracle violations) for one crash image."""
    report = check_consistency(state.log, state.media)
    generic = [v.describe() for v in report.violations]
    generic += [
        f"unknown recovered value {value} on line {line:#x}"
        for line, value in report.unknown_values
    ]
    oracle = list(workload.recovery_oracle(state))
    return generic, oracle


# ---------------------------------------------------------------------------
# one crash point
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CrashPointSpec:
    """One fully-specified fault injection: a cell plus a crash cycle."""

    workload: str
    model: ModelSpec
    crash_cycle: int
    machine: MachineConfig = dataclasses.field(default_factory=MachineConfig)
    ops_per_thread: Optional[int] = None
    num_threads: Optional[int] = None
    seed: int = 7

    def __init__(
        self,
        workload: str,
        model: Union[str, ModelSpec],
        crash_cycle: int,
        machine: Optional[MachineConfig] = None,
        ops_per_thread: Optional[int] = None,
        num_threads: Optional[int] = None,
        seed: int = 7,
    ) -> None:
        get_workload(workload)  # raises KeyError with available names
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "model", resolve_model(model))
        object.__setattr__(self, "crash_cycle", int(crash_cycle))
        object.__setattr__(self, "machine", machine or MachineConfig())
        object.__setattr__(self, "ops_per_thread", ops_per_thread)
        object.__setattr__(self, "num_threads", num_threads)
        object.__setattr__(self, "seed", seed)

    # -- construction -------------------------------------------------------

    def build_workload(self) -> Workload:
        return get_workload(
            self.workload, ops_per_thread=self.ops_per_thread, seed=self.seed
        )

    def run_config(self) -> RunConfig:
        return self.model.run_config(seed=self.seed)

    def simulate(self, crash_cycle: Optional[int] = None) -> CrashState:
        """Fresh run of this cell, crashed at ``crash_cycle``."""
        workload = self.build_workload()
        threads = self.num_threads or self.machine.num_cores
        programs = workload.programs(PMAllocator(), threads)
        return run_and_crash(
            self.machine,
            self.run_config(),
            programs,
            self.crash_cycle if crash_cycle is None else crash_cycle,
        )

    def simulate_from_checkpoint(
        self,
        ckpt_meta: dict,
        ckpt_state: dict,
        crash_cycle: Optional[int] = None,
    ) -> CrashState:
        """Resume a checkpoint of this cell and crash past it.

        The fast-forward anchor for dense crash sweeps: checkpoint once
        at a quiescent barrier, then re-simulate only ``[barrier,
        crash_cycle]`` per point instead of the whole prefix.  The
        anchored trajectory is event-for-event identical to a cold run
        that passed through the *same* barrier (the equivalence the
        ``tests/ckpt`` suite pins); note the barrier itself drains the
        machine, so it is a different -- equally valid -- trajectory
        from a barrier-free cold run.
        """
        from repro.ckpt.api import CheckpointCell, resume_machine
        from repro.core.crash import crash_machine

        cell = CheckpointCell.from_meta(ckpt_meta)
        if (
            cell.workload != self.workload
            or resolve_model(cell.model).name != self.model.name
            or cell.seed != self.seed
            or cell.ops_per_thread != self.ops_per_thread
        ):
            raise ValueError(
                f"checkpoint is for {cell.workload}/{cell.model}"
                f"/ops={cell.ops_per_thread}/seed={cell.seed}, not "
                f"{self.workload}/{self.model.name}"
                f"/ops={self.ops_per_thread}/seed={self.seed}"
            )
        machine = resume_machine(ckpt_meta, ckpt_state)
        machine.continue_until(
            self.crash_cycle if crash_cycle is None else crash_cycle
        )
        return crash_machine(machine)

    # -- identity (cache contract, mirrors exp.RunSpec) ---------------------

    def describe(self) -> dict:
        return {
            "schema": CRASHTEST_SCHEMA_VERSION,
            "kind": "crashtest-point",
            "workload": self.workload,
            "hardware": self.model.hardware.value,
            "persistency": self.model.persistency.value,
            "machine": _jsonable(self.machine),
            "run_config": _jsonable(self.run_config()),
            "crash_cycle": self.crash_cycle,
            "ops_per_thread": self.ops_per_thread,
            "num_threads": self.num_threads,
            "seed": self.seed,
        }

    def key(self) -> str:
        payload = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        return (
            f"crash:{self.workload}/{self.model.name}"
            f"@{self.crash_cycle}/seed{self.seed}"
        )

    # -- execution ----------------------------------------------------------

    def execute(self) -> "CrashPointResult":
        state = self.simulate()
        generic, oracle = adjudicate(state, self.build_workload())
        return CrashPointResult(
            crash_cycle=self.crash_cycle,
            generic_violations=tuple(generic),
            oracle_violations=tuple(oracle),
            surviving_lines=len(state.media),
            writes_logged=len(state.log.writes),
        )


@dataclass(frozen=True)
class CrashPointResult:
    """Small, picklable, cacheable verdict for one crash point."""

    crash_cycle: int
    generic_violations: Tuple[str, ...]
    oracle_violations: Tuple[str, ...]
    surviving_lines: int
    writes_logged: int

    @property
    def ok(self) -> bool:
        return not self.generic_violations and not self.oracle_violations

    def to_dict(self) -> dict:
        return {
            "crash_cycle": self.crash_cycle,
            "ok": self.ok,
            "generic_violations": list(self.generic_violations),
            "oracle_violations": list(self.oracle_violations),
            "surviving_lines": self.surviving_lines,
            "writes_logged": self.writes_logged,
        }


def execute_crash_point(spec: CrashPointSpec) -> CrashPointResult:
    """Module-level trampoline so executors can ship specs to workers."""
    return spec.execute()


# ---------------------------------------------------------------------------
# campaign reports
# ---------------------------------------------------------------------------

@dataclass
class CellReport:
    """All crash points of one (workload, model) cell."""

    workload: str
    model: str
    reference: ReferenceRun
    results: List[CrashPointResult]
    #: set when the cell violated and minimization ran.
    failure: Optional[dict] = None

    @property
    def failures(self) -> List[CrashPointResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "model": self.model,
            "drain_cycles": self.reference.drain_cycles,
            "runtime_cycles": self.reference.runtime_cycles,
            "commit_boundaries": len(self.reference.commit_cycles),
            "points": [r.to_dict() for r in self.results],
            "violations": sum(
                len(r.generic_violations) + len(r.oracle_violations)
                for r in self.results
            ),
            "failure": self.failure,
        }


@dataclass
class CampaignReport:
    """The campaign verdict: every cell, canonical and replayable."""

    cells: List[CellReport]
    points_requested: int
    seed: int
    #: cache bookkeeping -- excluded from to_dict() so reports stay
    #: byte-identical whether results were fresh or cached.
    cache_hits: int = 0
    cache_misses: int = 0
    saved_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def total_points(self) -> int:
        return sum(len(cell.results) for cell in self.cells)

    @property
    def total_failing_points(self) -> int:
        return sum(len(cell.failures) for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "schema": CRASHTEST_SCHEMA_VERSION,
            "kind": "crashtest-campaign",
            "points_requested": self.points_requested,
            "seed": self.seed,
            "ok": self.ok,
            "total_points": self.total_points,
            "total_failing_points": self.total_failing_points,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def summary(self) -> str:
        lines = []
        for cell in self.cells:
            status = "ok" if cell.ok else f"{len(cell.failures)} FAILING"
            lines.append(
                f"{cell.workload:>12s} {cell.model:>12s}  "
                f"{len(cell.results):3d} points  {status}"
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {self.total_points} crash points, "
            f"{self.total_failing_points} failing"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

def run_campaign(
    workloads: Sequence[str],
    models: Optional[Sequence[Union[str, ModelSpec]]] = None,
    machine: Optional[MachineConfig] = None,
    points: int = 50,
    seed: int = 7,
    ops_per_thread: Optional[int] = None,
    num_threads: Optional[int] = None,
    jobs: Optional[int] = None,
    cache=None,
    sinks: Optional[List] = None,
    save_dir: Optional[str] = None,
    minimize: bool = True,
    executor=None,
) -> CampaignReport:
    """Sweep every (workload, model) cell and adjudicate every point.

    ``cache`` is a :class:`repro.exp.cache.ResultCache` (or None);
    ``sinks`` receive one ``CRASH_POINT`` event per adjudicated point;
    ``save_dir`` is where minimized failing states are serialized.
    ``executor`` overrides ``jobs`` when given -- passing a
    :class:`repro.fabric.FabricExecutor` runs the sweep on the
    fault-tolerant fabric with byte-identical output.
    """
    machine = machine or MachineConfig()
    specs_by_cell: Dict[Tuple[str, str], List[CrashPointSpec]] = {}
    references: Dict[Tuple[str, str], ReferenceRun] = {}
    resolved = [resolve_model(m) for m in (models or RP_MODELS)]

    # phase 1: reference runs + deterministic crash-point enumeration
    for name in workloads:
        for model in resolved:
            workload = get_workload(name, ops_per_thread=ops_per_thread,
                                    seed=seed)
            reference = trace_reference(
                workload, machine, model.run_config(seed=seed),
                num_threads=num_threads,
            )
            identity = {
                "schema": CRASHTEST_SCHEMA_VERSION,
                "workload": name,
                "hardware": model.hardware.value,
                "persistency": model.persistency.value,
                "machine": _jsonable(machine),
                "ops_per_thread": ops_per_thread,
                "num_threads": num_threads,
                "seed": seed,
                "points": points,
            }
            cycles = enumerate_crash_points(reference, points, identity)
            key = (name, model.name)
            references[key] = reference
            specs_by_cell[key] = [
                CrashPointSpec(
                    workload=name, model=model, crash_cycle=cycle,
                    machine=machine, ops_per_thread=ops_per_thread,
                    num_threads=num_threads, seed=seed,
                )
                for cycle in cycles
            ]

    # phase 2: cache lookups, then one fan-out over every pending spec
    all_specs = [s for specs in specs_by_cell.values() for s in specs]
    results: Dict[str, CrashPointResult] = {}
    pending: List[CrashPointSpec] = []
    for spec in all_specs:
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            results[spec.key()] = cached
        else:
            pending.append(spec)
    executor = executor or make_executor(jobs)
    for spec, result in zip(pending, executor.map(execute_crash_point, pending)):
        results[spec.key()] = result
        if cache is not None:
            cache.put(spec, result)

    # phase 3: assemble cells, emit events, minimize failures
    report = CampaignReport(
        cells=[],
        points_requested=points,
        seed=seed,
        cache_hits=len(all_specs) - len(pending),
        cache_misses=len(pending),
    )
    for (name, model_name), specs in specs_by_cell.items():
        cell_results = [results[s.key()] for s in specs]
        _emit_events(sinks, name, model_name, cell_results)
        cell = CellReport(
            workload=name,
            model=model_name,
            reference=references[(name, model_name)],
            results=cell_results,
        )
        if not cell.ok and minimize:
            cell.failure = _minimize_cell(
                specs, cell_results, save_dir, report
            )
        report.cells.append(cell)
    return report


def _emit_events(
    sinks: Optional[List],
    workload: str,
    model: str,
    results: List[CrashPointResult],
) -> None:
    if not sinks:
        return
    for result in results:
        count = len(result.generic_violations) + len(result.oracle_violations)
        event = Event(
            cycle=result.crash_cycle,
            type=EventType.CRASH_POINT,
            comp="crashtest",
            core=None, mc=None, epoch=None, line=None, reason=None, dur=None,
            kind=f"{workload}/{model}:" + ("violation" if count else "ok"),
            value=count or None,
        )
        for sink in sinks:
            sink.handle(event)


def _minimize_cell(
    specs: List[CrashPointSpec],
    cell_results: List[CrashPointResult],
    save_dir: Optional[str],
    report: CampaignReport,
) -> dict:
    """Minimize the cell's first failing point; serialize for replay."""
    failing_index = next(
        i for i, r in enumerate(cell_results) if not r.ok
    )
    spec = specs[failing_index]
    workload = spec.build_workload()

    def judge(state: CrashState) -> List[str]:
        generic, oracle = adjudicate(state, workload)
        return generic + oracle

    passing_cycle = 0
    for i in range(failing_index - 1, -1, -1):
        if cell_results[i].ok:
            passing_cycle = specs[i].crash_cycle
            break
    minimized = minimize_failure(
        spec.simulate, judge, spec.crash_cycle, passing_cycle
    )
    failure = {
        "crash_cycle": minimized.state.crash_cycle,
        "original_cycle": minimized.original_cycle,
        "media_lines": len(minimized.state.media),
        "original_media_lines": minimized.original_media_lines,
        "violations": list(minimized.violations),
        "replay_file": None,
    }
    if save_dir:
        os.makedirs(save_dir, exist_ok=True)
        filename = f"crash-{spec.workload}-{spec.model.name}.json"
        path = os.path.join(save_dir, filename)
        _save_failure(path, spec, minimized)
        failure["replay_file"] = filename
        report.saved_failures.append(path)
    return failure


def _save_failure(
    path: str, spec: CrashPointSpec, minimized: MinimizedFailure
) -> None:
    meta = {
        "spec": spec.describe(),
        "violations": list(minimized.violations),
        "original_cycle": minimized.original_cycle,
        "original_media_lines": minimized.original_media_lines,
    }
    with open(path, "w") as handle:
        handle.write(dumps_state(minimized.state, meta))


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def replay_failure(path: str, from_checkpoint: Optional[str] = None) -> dict:
    """Re-adjudicate a serialized failing state without re-simulating.

    With ``from_checkpoint`` (a path to a ``repro ckpt`` document of the
    same cell) the failure is additionally *re-simulated* from that
    checkpoint anchor -- resume, continue to the crash cycle, crash,
    adjudicate -- and the anchored verdict is reported alongside.
    """
    from repro.crashtest.serialize import load_state

    state, meta = load_state(path)
    spec_doc = meta.get("spec", {})
    name = spec_doc.get("workload")
    workload = get_workload(
        name,
        ops_per_thread=spec_doc.get("ops_per_thread"),
        seed=spec_doc.get("seed", 7),
    )
    generic, oracle = adjudicate(state, workload)
    doc = {
        "file": path,
        "workload": name,
        "crash_cycle": state.crash_cycle,
        "media_lines": len(state.media),
        "generic_violations": generic,
        "oracle_violations": oracle,
        "recorded_violations": meta.get("violations", []),
        "reproduced": bool(generic or oracle),
    }
    if from_checkpoint is not None:
        doc["anchored"] = _replay_anchored(
            from_checkpoint, spec_doc, state, workload
        )
    return doc


def _replay_anchored(
    ckpt_path: str, spec_doc: dict, state: CrashState, workload: Workload
) -> dict:
    """Re-simulate a saved failure from a checkpoint anchor."""
    from repro.ckpt.api import CheckpointCell
    from repro.ckpt.codec import loads_checkpoint

    with open(ckpt_path) as handle:
        ckpt_meta, ckpt_state = loads_checkpoint(handle.read())
    cell = CheckpointCell.from_meta(ckpt_meta)
    if cell.workload != spec_doc.get("workload"):
        raise ValueError(
            f"checkpoint is for workload {cell.workload!r}, failure is "
            f"for {spec_doc.get('workload')!r}"
        )
    spec = CrashPointSpec(
        workload=cell.workload,
        model=cell.model,
        crash_cycle=state.crash_cycle,
        ops_per_thread=cell.ops_per_thread,
        num_threads=cell.num_threads,
        seed=cell.seed,
    )
    resim = spec.simulate_from_checkpoint(ckpt_meta, ckpt_state)
    generic, oracle = adjudicate(resim, workload)
    return {
        "checkpoint": ckpt_path,
        "barrier_cycle": ckpt_meta.get("barrier_cycle"),
        "crash_cycle": resim.crash_cycle,
        "media_lines": len(resim.media),
        "generic_violations": generic,
        "oracle_violations": oracle,
        "reproduced": bool(generic or oracle),
    }


__all__ = [
    "CRASHTEST_SCHEMA_VERSION",
    "CampaignReport",
    "CellReport",
    "CrashPointResult",
    "CrashPointSpec",
    "adjudicate",
    "execute_crash_point",
    "replay_failure",
    "run_campaign",
]
