"""Exact JSON serialization of :class:`~repro.core.crash.CrashState`.

A failing crash state must be **replayable**: the minimizer writes it to
disk, a later ``repro crashtest --replay`` (or a golden regression test)
loads it back and re-adjudicates without re-simulating.  The format is
therefore exact -- ``load(dump(state))`` reproduces every field,
including the epoch log's write payloads -- and canonical: serializing
the same state twice yields identical bytes (sorted keys, no
wall-clock).

Payloads are restricted to what workloads actually store: JSON
primitives, tuples (ordered-chain tags), and the :mod:`repro.tx.undolog`
record dataclasses.  Anything else is a hard error at dump time --
better than a state that silently fails to round-trip.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Tuple

from repro.core.crash import CrashState
from repro.core.epoch import EpochLog, WriteRecord
from repro.sim.config import HardwareModel, PersistencyModel, RunConfig

#: bump when the on-disk layout changes incompatibly.
STATE_SCHEMA_VERSION = 1
STATE_KIND = "repro-crashstate"


def _payload_types() -> Dict[str, type]:
    # lazy: repro.tx pulls in the whole tx layer, which not every
    # campaign needs.
    from repro.tx.undolog import CommitPayload, DataPayload, PVar, UndoPayload

    return {
        "tx-undo": UndoPayload,
        "tx-data": DataPayload,
        "tx-commit": CommitPayload,
        "tx-pvar": PVar,
    }


def encode_payload(payload: object) -> object:
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, tuple):
        return {
            "__kind__": "tuple",
            "items": [encode_payload(item) for item in payload],
        }
    if isinstance(payload, list):
        return {
            "__kind__": "list",
            "items": [encode_payload(item) for item in payload],
        }
    for tag, cls in _payload_types().items():
        if isinstance(payload, cls):
            return {
                "__kind__": tag,
                "fields": {
                    f.name: encode_payload(getattr(payload, f.name))
                    for f in dataclasses.fields(payload)
                },
            }
    raise TypeError(
        f"crash-state payload {payload!r} ({type(payload).__name__}) is "
        "not serializable; store plain values, tuples, or tx records as "
        "op payloads"
    )


def decode_payload(doc: object) -> object:
    if not isinstance(doc, dict):
        return doc
    kind = doc["__kind__"]
    if kind == "tuple":
        return tuple(decode_payload(item) for item in doc["items"])
    if kind == "list":
        return [decode_payload(item) for item in doc["items"]]
    cls = _payload_types()[kind]
    return cls(**{k: decode_payload(v) for k, v in doc["fields"].items()})


def log_to_dict(log: EpochLog) -> dict:
    return {
        "writes": [
            [r.write_id, r.line, r.core, r.epoch_ts]
            for _, r in sorted(log.writes.items())
        ],
        "line_order": {
            str(line): list(order)
            for line, order in sorted(log.line_order.items())
        },
        "dep_edges": [
            [list(source), list(dependent)]
            for source, dependent in log.dep_edges
        ],
        "strand_starts": [list(e) for e in sorted(log.strand_starts)],
        "max_ts": {str(core): ts for core, ts in sorted(log.max_ts.items())},
        "payloads": {
            str(wid): encode_payload(payload)
            for wid, payload in sorted(log.payloads.items())
        },
    }


def log_from_dict(doc: dict) -> EpochLog:
    log = EpochLog()
    for write_id, line, core, epoch_ts in doc["writes"]:
        log.writes[write_id] = WriteRecord(
            write_id=write_id, line=line, core=core, epoch_ts=epoch_ts
        )
    log.line_order = {
        int(line): list(order) for line, order in doc["line_order"].items()
    }
    log.dep_edges = [
        (tuple(source), tuple(dependent))
        for source, dependent in doc["dep_edges"]
    ]
    log.strand_starts = {tuple(e) for e in doc["strand_starts"]}
    log.max_ts = {int(core): ts for core, ts in doc["max_ts"].items()}
    log.payloads = {
        int(wid): decode_payload(payload)
        for wid, payload in doc["payloads"].items()
    }
    return log


def state_to_dict(state: CrashState) -> dict:
    rc = state.run_config
    return {
        "crash_cycle": state.crash_cycle,
        "media": {str(line): wid for line, wid in sorted(state.media.items())},
        "run_config": {
            "hardware": rc.hardware.value,
            "persistency": rc.persistency.value,
            "max_events": rc.max_events,
            "seed": rc.seed,
        },
        "log": log_to_dict(state.log),
    }


def state_from_dict(doc: dict) -> CrashState:
    rc = doc["run_config"]
    return CrashState(
        crash_cycle=doc["crash_cycle"],
        media={int(line): wid for line, wid in doc["media"].items()},
        log=log_from_dict(doc["log"]),
        run_config=RunConfig(
            hardware=HardwareModel(rc["hardware"]),
            persistency=PersistencyModel(rc["persistency"]),
            max_events=rc["max_events"],
            seed=rc["seed"],
        ),
    )


def dumps_state(state: CrashState, meta: dict) -> str:
    """Canonical envelope text for one crash state (+ campaign metadata).

    ``meta`` must itself be JSON-serializable plain data; it records how
    the state was produced (workload, model, machine, seed, violations)
    so a replay can rebuild the oracle context.
    """
    doc = {
        "schema": STATE_SCHEMA_VERSION,
        "kind": STATE_KIND,
        "meta": meta,
        "state": state_to_dict(state),
    }
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


def loads_state(text: str) -> Tuple[CrashState, dict]:
    doc = json.loads(text)
    if doc.get("kind") != STATE_KIND:
        raise ValueError(
            f"not a {STATE_KIND} document (kind={doc.get('kind')!r})"
        )
    if doc.get("schema") != STATE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported {STATE_KIND} schema {doc.get('schema')!r} "
            f"(supported: {STATE_SCHEMA_VERSION})"
        )
    return state_from_dict(doc["state"]), doc.get("meta", {})


def save_state(path: str, state: CrashState, meta: dict) -> None:
    with open(path, "w") as handle:
        handle.write(dumps_state(state, meta))


def load_state(path: str) -> Tuple[CrashState, dict]:
    with open(path) as handle:
        return loads_state(handle.read())


__all__ = [
    "STATE_KIND",
    "STATE_SCHEMA_VERSION",
    "decode_payload",
    "dumps_state",
    "encode_payload",
    "load_state",
    "loads_state",
    "log_from_dict",
    "log_to_dict",
    "save_state",
    "state_from_dict",
    "state_to_dict",
]
