"""Crash-sweep campaign engine: systematic fault injection + recovery oracles.

For any registry workload and any hardware model, this package
enumerates crash points (every epoch-commit boundary plus
stratified-random mid-epoch cycles, deterministically seeded), crashes a
fresh simulation at each (:func:`repro.core.crash.run_and_crash`),
adjudicates the surviving media image against the generic Theorem-2
checker *and* the workload's semantic ``recovery_oracle()``, and -- on a
violation -- minimizes the failure to the smallest crash cycle and media
delta, serialized to JSON for replay.

Layout:

- :mod:`repro.crashtest.points` -- crash-point enumeration
- :mod:`repro.crashtest.campaign` -- specs, fan-out driver, reports
- :mod:`repro.crashtest.minimize` -- cycle bisection + media shrinking
- :mod:`repro.crashtest.serialize` -- exact CrashState <-> JSON

CLI entry point: ``repro crashtest`` (see :mod:`repro.cli`).
"""

from repro.crashtest.campaign import (
    CRASHTEST_SCHEMA_VERSION,
    CampaignReport,
    CellReport,
    CrashPointResult,
    CrashPointSpec,
    adjudicate,
    execute_crash_point,
    replay_failure,
    run_campaign,
)
from repro.crashtest.minimize import (
    MinimizedFailure,
    bisect_crash_cycle,
    minimize_failure,
    shrink_media,
)
from repro.crashtest.points import (
    CommitCollector,
    ReferenceRun,
    derive_rng,
    enumerate_crash_points,
    stratified_cycles,
    trace_reference,
    trace_reference_programs,
)
from repro.crashtest.serialize import (
    STATE_KIND,
    STATE_SCHEMA_VERSION,
    dumps_state,
    load_state,
    loads_state,
    save_state,
)

__all__ = [
    "CRASHTEST_SCHEMA_VERSION",
    "CampaignReport",
    "CellReport",
    "CommitCollector",
    "CrashPointResult",
    "CrashPointSpec",
    "MinimizedFailure",
    "ReferenceRun",
    "STATE_KIND",
    "STATE_SCHEMA_VERSION",
    "adjudicate",
    "bisect_crash_cycle",
    "derive_rng",
    "dumps_state",
    "enumerate_crash_points",
    "execute_crash_point",
    "load_state",
    "loads_state",
    "minimize_failure",
    "replay_failure",
    "run_campaign",
    "save_state",
    "shrink_media",
    "stratified_cycles",
    "trace_reference",
    "trace_reference_programs",
]
