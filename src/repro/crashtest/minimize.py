"""Failure minimization: smallest crash cycle, smallest media delta.

When a campaign point violates its oracles, the raw artifact is noisy: a
crash state with hundreds of surviving lines, at a cycle deep into the
run.  Two delta-debugging passes shrink it to something a human can read:

1. **Cycle bisection** -- between the last known-passing probed cycle
   and the failing one, bisect re-simulated crashes to a *locally
   minimal* failing cycle (its immediate bisection predecessor passes).
   Crash failures need not be monotone in time, so this finds *a*
   boundary, not the global first failure -- which is exactly what a
   repro needs.
2. **Media shrinking** -- greedily drop surviving-line entries from the
   media image while the oracles still fire, looping to a fixpoint
   (1-minimal: removing any single remaining entry makes the failure
   vanish).  Adjudication is pure log+image analysis, so this pass needs
   no re-simulation.

The result is serialized via :mod:`repro.crashtest.serialize` for
replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.crash import CrashState

#: judge(state) -> list of violation descriptions (empty = passing).
Judge = Callable[[CrashState], List[str]]
#: simulate(cycle) -> the crash state of a fresh run crashed there.
Simulate = Callable[[int], CrashState]


@dataclass
class MinimizedFailure:
    """The shrunk artifact of one violating crash point."""

    state: CrashState
    violations: List[str]
    #: cycle of the original (unminimized) failing point.
    original_cycle: int
    #: surviving-media entries before shrinking.
    original_media_lines: int
    #: re-simulations spent bisecting.
    simulations: int


def bisect_crash_cycle(
    simulate: Simulate,
    judge: Judge,
    failing_cycle: int,
    passing_cycle: int = 0,
) -> "tuple[int, CrashState, List[str], int]":
    """Shrink the failing cycle against a known passing lower bound.

    Maintains the invariant ``lo`` passes / ``hi`` fails; returns
    ``(cycle, state, violations, simulations)`` for the final ``hi``.
    """
    lo, hi = passing_cycle, failing_cycle
    best_state = simulate(hi)
    best_violations = judge(best_state)
    simulations = 1
    if not best_violations:
        raise ValueError(
            f"cycle {failing_cycle} does not fail under re-simulation; "
            "crash reproduction is broken (non-deterministic workload?)"
        )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        state = simulate(mid)
        simulations += 1
        violations = judge(state)
        if violations:
            hi, best_state, best_violations = mid, state, violations
        else:
            lo = mid
    return hi, best_state, best_violations, simulations


def shrink_media(state: CrashState, judge: Judge) -> CrashState:
    """Drop surviving-media entries while the failure persists (1-minimal)."""
    media = dict(state.media)
    shrinking = True
    while shrinking:
        shrinking = False
        for line in sorted(media):
            trial = dict(media)
            del trial[line]
            trial_state = CrashState(
                crash_cycle=state.crash_cycle,
                media=trial,
                log=state.log,
                run_config=state.run_config,
            )
            if judge(trial_state):
                media = trial
                shrinking = True
    return CrashState(
        crash_cycle=state.crash_cycle,
        media=media,
        log=state.log,
        run_config=state.run_config,
    )


def minimize_failure(
    simulate: Simulate,
    judge: Judge,
    failing_cycle: int,
    passing_cycle: int = 0,
) -> MinimizedFailure:
    """Full pipeline: bisect the cycle, then shrink the media image."""
    cycle, state, _, simulations = bisect_crash_cycle(
        simulate, judge, failing_cycle, passing_cycle
    )
    original_media_lines = len(state.media)
    shrunk = shrink_media(state, judge)
    return MinimizedFailure(
        state=shrunk,
        violations=judge(shrunk),
        original_cycle=failing_cycle,
        original_media_lines=original_media_lines,
        simulations=simulations,
    )


__all__ = [
    "Judge",
    "MinimizedFailure",
    "Simulate",
    "bisect_crash_cycle",
    "minimize_failure",
    "shrink_media",
]
