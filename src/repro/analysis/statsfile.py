"""gem5-style ``stats.txt`` output (artifact-appendix parity).

The original artifact's simulations each produce a ``stats.txt`` whose
rows the paper's ``reproduce_results.py`` harvests.  This module writes
the same style of file -- ``name  value  # description`` -- for a run of
this simulator, leading with the seven Table VI statistics under their
artifact names.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

from repro.core.machine import RunResult

#: Table VI: artifact stat name -> human description.
TABLE_VI_DESCRIPTIONS = {
    "cyclesBlocked": "Cycles for which PB is unable to flush",
    "cyclesStalled": "CPU stall cycles because of full PB",
    "dfenceStalled": "CPU stall cycles because of dfence",
    "entriesInserted": "Total number of writes enqueued in the PBs",
    "interTEpochConflict": "Number of cross-thread dependencies",
    "totSpecWrites": "Number of early flushes",
    "totalUndo": "Number of undo records created",
}

_EXTRA_DESCRIPTIONS = {
    "simTicks": "Simulated cycles until the last core retired",
    "drainTicks": "Simulated cycles until the system drained",
    "opsExecuted": "Workload operations executed",
    "pm_writes": "Writes serviced by the NVM media",
    "pm_reads": "Media reads (undo-record creation misses)",
    "sfenceStalled": "CPU stall cycles because of sfence",
    "flushes_nacked": "Early flushes rejected by a full recovery table",
    "epochs_committed": "Epochs committed across all cores",
}


def format_stats(result: RunResult) -> str:
    """Render a run's statistics in gem5's stats.txt style."""
    lines = ["---------- Begin Simulation Statistics ----------"]

    def emit(name: str, value: int, description: str = "") -> None:
        comment = f"# {description}" if description else ""
        lines.append(f"{name:<40} {value:>16} {comment}".rstrip())

    emit("simTicks", result.runtime_cycles, _EXTRA_DESCRIPTIONS["simTicks"])
    emit("drainTicks", result.drain_cycles, _EXTRA_DESCRIPTIONS["drainTicks"])
    emit("opsExecuted", result.ops_executed, _EXTRA_DESCRIPTIONS["opsExecuted"])
    for name, description in TABLE_VI_DESCRIPTIONS.items():
        emit(name, result.stats.total(name), description)
    for name, description in _EXTRA_DESCRIPTIONS.items():
        if name in ("simTicks", "drainTicks", "opsExecuted"):
            continue
        emit(name, result.stats.total(name), description)
    # remaining counters, alphabetically, summed over scopes
    emitted = set(TABLE_VI_DESCRIPTIONS) | set(_EXTRA_DESCRIPTIONS)
    for name, value in sorted(result.stats.as_dict().items()):
        if name not in emitted:
            emit(name, value)
    lines.append("---------- End Simulation Statistics   ----------")
    return "\n".join(lines) + "\n"


def write_stats(
    result: RunResult, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write ``stats.txt`` for a run; returns the path."""
    path = pathlib.Path(path)
    path.write_text(format_stats(result))
    return path


__all__ = ["TABLE_VI_DESCRIPTIONS", "format_stats", "write_stats"]
