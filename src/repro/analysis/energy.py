"""Dynamic-energy estimation for the persistence structures.

Section VII-D's energy discussion covers draining (power-fail) energy;
this module extends it to *operational* energy: combine the per-access
read/write energies of Table V with the access counts a run's statistics
record, giving pJ spent in the persist buffers, epoch tables and recovery
tables per run (and per workload operation).

Access-count mapping (conservative, documented):

- PB: one write per enqueue (``entriesInserted``), one read per issued
  flush (enqueues + NACK retries).
- ET: one write per epoch opened/committed, one read per flush
  classification plus one per poll round (HOPS).
- RT: one write per undo/delay record created, one read per early flush
  lookup, one read+write per commit processed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cacti import EPOCH_TABLE, PERSIST_BUFFER, RECOVERY_TABLE
from repro.core.machine import RunResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Estimated dynamic energy (picojoules) of one run."""

    pb_pj: float
    et_pj: float
    rt_pj: float

    @property
    def total_pj(self) -> float:
        return self.pb_pj + self.et_pj + self.rt_pj

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pb_pj": self.pb_pj,
            "et_pj": self.et_pj,
            "rt_pj": self.rt_pj,
            "total_pj": self.total_pj,
        }


def estimate_energy(result: RunResult) -> EnergyBreakdown:
    """Estimate the persistence structures' dynamic energy for a run."""
    stats = result.stats

    enqueues = stats.total("entriesInserted")
    nack_retries = stats.total("pb_nacks")
    pb_writes = enqueues
    pb_reads = enqueues + nack_retries
    pb_pj = (
        pb_writes * PERSIST_BUFFER.write_pj + pb_reads * PERSIST_BUFFER.read_pj
    )

    epochs = stats.total("epochs_committed")
    polls = stats.total("global_ts_reads")
    et_writes = 2 * epochs  # open + commit bookkeeping
    et_reads = enqueues + polls  # flush classification + dependence polls
    et_pj = et_writes * EPOCH_TABLE.write_pj + et_reads * EPOCH_TABLE.read_pj

    undo = stats.total("totalUndo")
    delays = stats.total("delay_records_created")
    commits = stats.total("commits_processed")
    early = stats.total("totSpecWrites")
    rt_writes = undo + delays + commits
    rt_reads = early + commits
    rt_pj = (
        rt_writes * RECOVERY_TABLE.write_pj + rt_reads * RECOVERY_TABLE.read_pj
    )

    return EnergyBreakdown(pb_pj=pb_pj, et_pj=et_pj, rt_pj=rt_pj)


def energy_per_op(result: RunResult) -> float:
    """Average persistence-structure energy per workload operation (pJ)."""
    ops = max(1, result.ops_executed)
    return estimate_energy(result).total_pj / ops


__all__ = ["EnergyBreakdown", "energy_per_op", "estimate_energy"]
