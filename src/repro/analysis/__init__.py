"""Analysis utilities: hardware-cost models and experiment drivers.

- :mod:`repro.analysis.cacti`  -- analytical CAM/SRAM cost model
  calibrated to the paper's CACTI 7 @ 22 nm numbers (Table V) plus the
  draining-energy comparison of Section VII-D.
- :mod:`repro.analysis.sweeps` -- compatibility shim over the
  :mod:`repro.exp` experiment engine (plans, parallel executors,
  deterministic result caching); keeps the historical ``sweep()`` entry
  point and model-table re-exports working.
- :mod:`repro.analysis.report` -- plain-text table/series rendering used
  by the benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.cacti import (
    DrainingCost,
    HardwareCost,
    draining_comparison,
    table_v,
)
from repro.analysis.report import render_series, render_table
from repro.analysis.sweeps import ModelSpec, STANDARD_MODELS, SweepResult, sweep

__all__ = [
    "DrainingCost",
    "HardwareCost",
    "ModelSpec",
    "STANDARD_MODELS",
    "SweepResult",
    "draining_comparison",
    "render_series",
    "render_table",
    "sweep",
    "table_v",
]
