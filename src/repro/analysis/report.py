"""Plain-text rendering of tables and series.

The benchmarks print their figures as aligned text tables so the paper's
rows/series can be compared directly in the terminal and pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[float], unit: str = ""
) -> str:
    """Render one figure series as ``name: x=y`` pairs."""
    pairs = ", ".join(f"{x}={y:.2f}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"


def stall_breakdown_table(summary: dict, title: str = "stall breakdown") -> str:
    """Render a :meth:`repro.obs.StallProfiler.summary` as a text table.

    One row per (core, epoch) that accrued stall cycles, one column per
    stall reason, plus a closing ``total`` row so the table is never
    empty even for a stall-free run.
    """
    reasons = sorted(summary.get("totals", {}))
    by_epoch = summary.get("by_epoch", {})
    headers = ["core:epoch"] + reasons + ["all"]

    def row_for(label: str, cells: dict) -> List[object]:
        values = [int(cells.get(reason, 0)) for reason in reasons]
        return [label] + values + [sum(values)]

    def sort_key(item):
        core, _, epoch = item[0].partition(":")
        return (
            int(core) if core.isdigit() else -1,
            int(epoch) if epoch.isdigit() else -1,
            item[0],
        )

    rows = [row_for(label, cells) for label, cells in sorted(
        by_epoch.items(), key=sort_key
    )]
    rows.append(row_for("total", summary.get("totals", {})))
    return render_table(headers, rows, title=title)


__all__ = [
    "format_speedup",
    "render_series",
    "render_table",
    "stall_breakdown_table",
]
