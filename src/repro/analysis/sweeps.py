"""Compatibility shim over the :mod:`repro.exp` experiment engine.

Historically every figure benchmark was built directly on
:func:`sweep`, which ran the workload x model grid serially in-process.
The execution machinery now lives in :mod:`repro.exp` (plans, pluggable
serial/parallel executors, deterministic result caching); this module
keeps the old import surface working:

- :class:`ModelSpec`, :data:`STANDARD_MODELS`, :data:`RP_MODELS` are
  re-exported from the canonical registry in :mod:`repro.core.models`.
- :class:`SweepResult` is re-exported from :mod:`repro.exp.plan`.
- :func:`sweep` builds an :class:`~repro.exp.plan.ExperimentPlan` and
  runs it; new code should call :func:`repro.exp.run_grid` directly,
  which also exposes ``jobs``/``cache``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Type, Union

from repro.core.models import (
    MODEL_REGISTRY,
    ModelSpec,
    RP_MODELS,
    STANDARD_MODELS,
    resolve_model,
)
from repro.exp.cache import ResultCache
from repro.exp.plan import SweepResult, run_grid
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload


def sweep(
    workload_classes: Sequence[Type[Workload]],
    models: Sequence[Union[str, ModelSpec]],
    config: Optional[MachineConfig] = None,
    ops_per_thread: int = 120,
    num_threads: Optional[int] = None,
    seed: int = 7,
    jobs: Optional[int] = None,
    cache: Optional[Union[ResultCache, str]] = None,
) -> SweepResult:
    """Run every workload under every model (legacy entry point)."""
    return run_grid(
        workload_classes,
        models,
        machine=config,
        ops_per_thread=ops_per_thread,
        num_threads=num_threads,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )


__all__ = [
    "MODEL_REGISTRY",
    "ModelSpec",
    "RP_MODELS",
    "STANDARD_MODELS",
    "SweepResult",
    "resolve_model",
    "sweep",
]
