"""Experiment driver: run workloads across hardware models and normalize.

All the figure benchmarks are built on :func:`sweep`, which runs a list
of workloads under a list of model specs on a given machine configuration
and returns runtimes, speedups, and the full per-run results for stat
extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.workloads.base import Workload, WorkloadResult, run_workload


@dataclass(frozen=True)
class ModelSpec:
    """One evaluated design: a hardware model under a persistency model."""

    name: str
    hardware: HardwareModel
    persistency: PersistencyModel

    def run_config(self, **kwargs) -> RunConfig:
        return RunConfig(
            hardware=self.hardware, persistency=self.persistency, **kwargs
        )


#: the six designs of Figure 8, in presentation order.
STANDARD_MODELS: List[ModelSpec] = [
    ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
    ModelSpec("hops_ep", HardwareModel.HOPS, PersistencyModel.EPOCH),
    ModelSpec("hops_rp", HardwareModel.HOPS, PersistencyModel.RELEASE),
    ModelSpec("asap_ep", HardwareModel.ASAP, PersistencyModel.EPOCH),
    ModelSpec("asap_rp", HardwareModel.ASAP, PersistencyModel.RELEASE),
    ModelSpec("eadr", HardwareModel.EADR, PersistencyModel.RELEASE),
]

#: release-persistency-only comparison (Sections VII-B onward use RP).
RP_MODELS: List[ModelSpec] = [
    ModelSpec("baseline", HardwareModel.BASELINE, PersistencyModel.RELEASE),
    ModelSpec("hops", HardwareModel.HOPS, PersistencyModel.RELEASE),
    ModelSpec("asap", HardwareModel.ASAP, PersistencyModel.RELEASE),
    ModelSpec("eadr", HardwareModel.EADR, PersistencyModel.RELEASE),
]


@dataclass
class SweepResult:
    """Results of one workload x model sweep."""

    workloads: List[str]
    models: List[str]
    #: (workload, model) -> full run result.
    runs: Dict[tuple, WorkloadResult] = field(default_factory=dict)

    def runtime(self, workload: str, model: str) -> int:
        return self.runs[(workload, model)].runtime_cycles

    def speedup(self, workload: str, model: str, over: str = "baseline") -> float:
        return self.runtime(workload, over) / self.runtime(workload, model)

    def speedups(self, model: str, over: str = "baseline") -> List[float]:
        return [self.speedup(w, model, over) for w in self.workloads]

    def geomean_speedup(self, model: str, over: str = "baseline") -> float:
        values = self.speedups(model, over)
        product = 1.0
        for value in values:
            product *= value
        return product ** (1.0 / len(values))

    def stat(self, workload: str, model: str, name: str) -> int:
        return self.runs[(workload, model)].stats.total(name)


def sweep(
    workload_classes: Sequence[Type[Workload]],
    models: Sequence[ModelSpec],
    config: Optional[MachineConfig] = None,
    ops_per_thread: int = 120,
    num_threads: Optional[int] = None,
    seed: int = 7,
) -> SweepResult:
    """Run every workload under every model."""
    config = config or MachineConfig()
    result = SweepResult(
        workloads=[cls.name for cls in workload_classes],
        models=[m.name for m in models],
    )
    for cls in workload_classes:
        for model in models:
            workload = cls(ops_per_thread=ops_per_thread, seed=seed)
            run = run_workload(
                workload, config, model.run_config(), num_threads=num_threads
            )
            result.runs[(cls.name, model.name)] = run
    return result


__all__ = ["ModelSpec", "RP_MODELS", "STANDARD_MODELS", "SweepResult", "sweep"]
