"""Analytical hardware-cost model (Table V, Section VII-D).

The paper sizes ASAP's structures with CACTI 7 at the 22 nm node.  CACTI
itself is a large C++ tool; this module provides an analytical stand-in
*calibrated to the paper's own Table V outputs*, so the reference
configuration reproduces the published numbers exactly and nearby
configurations (the RT/PB size ablations) scale with standard
CAM/SRAM trends:

- area grows slightly sub-linearly with capacity (peripheral
  amortization), exponent 0.95;
- access latency grows with the square root of capacity (wordline/bitline
  lengths);
- access energy grows roughly linearly with the searched width, here
  modelled with exponent 0.9 over capacity.

Reference rows (Table V; PB and ET are per core, RT per controller):

================  ==========  =============  ============  ============
Structure         Area (mm2)  Latency (ns)   Write (pJ)    Read (pJ)
================  ==========  =============  ============  ============
Persist Buffer    0.093       0.402          30            28.876
Epoch Table       0.006       0.185          0.428         0.092
Recovery Table    0.097       0.413          31.5          31.5
32 KB L1 cache    0.759       1.403          327.86        327.85
================  ==========  =============  ============  ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Table II capacities the reference numbers were computed at.
REF_ENTRIES = 32

AREA_EXPONENT = 0.95
LATENCY_EXPONENT = 0.5
ENERGY_EXPONENT = 0.9


@dataclass(frozen=True)
class HardwareCost:
    """Cost of one hardware structure."""

    name: str
    entries: int
    entry_bits: int
    area_mm2: float
    access_latency_ns: float
    write_energy_pj: float
    read_energy_pj: float

    def row(self) -> List[str]:
        return [
            self.name,
            str(self.entries),
            f"{self.area_mm2:.3f}",
            f"{self.access_latency_ns:.3f}",
            f"{self.write_energy_pj:.3f}",
            f"{self.read_energy_pj:.3f}",
        ]


@dataclass(frozen=True)
class _Reference:
    name: str
    entry_bits: int
    area_mm2: float
    latency_ns: float
    write_pj: float
    read_pj: float

    def scaled(self, entries: int) -> HardwareCost:
        ratio = entries / REF_ENTRIES
        return HardwareCost(
            name=self.name,
            entries=entries,
            entry_bits=self.entry_bits,
            area_mm2=self.area_mm2 * ratio**AREA_EXPONENT,
            access_latency_ns=self.latency_ns * ratio**LATENCY_EXPONENT,
            write_energy_pj=self.write_pj * ratio**ENERGY_EXPONENT,
            read_energy_pj=self.read_pj * ratio**ENERGY_EXPONENT,
        )


# Entry widths follow Figure 6b's field layout:
#  PB entry: line address (48b) + data (512b) + timestamp (32b) + state (4b)
#  ET entry: timestamp (32b) + write counters (16b) + dep core/ts (40b) +
#            dependent (40b) + flags (8b)
#  RT entry: line address (48b) + data (512b) + threadID (8b) + ts (32b)
PERSIST_BUFFER = _Reference("Persist Buffer", 596, 0.093, 0.402, 30.0, 28.876)
EPOCH_TABLE = _Reference("Epoch Table", 136, 0.006, 0.185, 0.428, 0.092)
RECOVERY_TABLE = _Reference("Recovery Table", 600, 0.097, 0.413, 31.5, 31.5)
L1_CACHE = _Reference("32KB L1 cache", 512, 0.759, 1.403, 327.86, 327.85)


def table_v(
    pb_entries: int = 32, et_entries: int = 32, rt_entries: int = 32
) -> List[HardwareCost]:
    """The Table V rows (plus the L1 comparison row) at given capacities."""
    return [
        PERSIST_BUFFER.scaled(pb_entries),
        EPOCH_TABLE.scaled(et_entries),
        RECOVERY_TABLE.scaled(rt_entries),
        # The L1 row is a fixed comparison point, not a scaled structure.
        HardwareCost(
            name=L1_CACHE.name,
            entries=512,
            entry_bits=L1_CACHE.entry_bits,
            area_mm2=L1_CACHE.area_mm2,
            access_latency_ns=L1_CACHE.latency_ns,
            write_energy_pj=L1_CACHE.write_pj,
            read_energy_pj=L1_CACHE.read_pj,
        ),
    ]


# ---------------------------------------------------------------------------
# Section VII-D: draining energy on power failure
# ---------------------------------------------------------------------------

#: energy to push one byte from on-chip buffers out to NVM on the
#: emergency power path (order-of-magnitude constant; only the *ratios*
#: between designs matter for the comparison).
DRAIN_NJ_PER_BYTE = 2.0


@dataclass(frozen=True)
class DrainingCost:
    """Data (and energy) that must be flushed when power fails."""

    design: str
    bytes_to_flush: int

    @property
    def energy_uj(self) -> float:
        return self.bytes_to_flush * DRAIN_NJ_PER_BYTE / 1000.0

    def row(self) -> List[str]:
        if self.bytes_to_flush >= 1 << 20:
            amount = f"{self.bytes_to_flush / (1 << 20):.1f} MB"
        else:
            amount = f"{self.bytes_to_flush / 1024:.1f} KB"
        return [self.design, amount, f"{self.energy_uj:.1f}"]


def draining_comparison(
    num_cores: int = 32,
    num_mcs: int = 2,
    dirty_fraction: float = 0.5,
    rt_entries: int = 32,
    bbb_buffer_bytes: int = 2048,
) -> List[DrainingCost]:
    """Reproduce the Section VII-D comparison for a 32-core server.

    eADR must flush every dirty block in the hierarchy (~42 MB at 50%
    dirty), BBB flushes its per-core battery-backed buffers (~64 KB), and
    ASAP flushes only the recovery tables in the memory controllers
    (< 4 KB) -- and unlike the other two, ASAP's flush domain is already
    at the controllers, not in the caches.
    """
    l1d = 32 * 1024
    l1i = 32 * 1024
    l2 = 2 * 1024 * 1024
    llc = 16 * 1024 * 1024
    cache_bytes = num_cores * (l1d + l1i + l2) + llc
    eadr = int(cache_bytes * dirty_fraction)
    bbb = num_cores * bbb_buffer_bytes
    # RT entry: 64B data + ~10B metadata; only the data needs writing out.
    asap = num_mcs * rt_entries * 64
    return [
        DrainingCost("eADR", eadr),
        DrainingCost("BBB", bbb),
        DrainingCost("ASAP", asap),
    ]


__all__ = [
    "DrainingCost",
    "HardwareCost",
    "draining_comparison",
    "table_v",
]
