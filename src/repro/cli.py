"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's ``run.sh <workload> <persistency model>``
workflow:

- ``run``     -- run one workload under one model; print (or save) a
  gem5-style stats.txt.
- ``compare`` -- run workloads across models and print speedup tables
  (Figure 8 style).
- ``crash``   -- crash a workload at a chosen cycle and print the
  Theorem 2 consistency report.
- ``list``    -- enumerate workloads and models.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_table
from repro.analysis.statsfile import format_stats, write_stats
from repro.analysis.sweeps import ModelSpec, STANDARD_MODELS, sweep
from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.core.machine import Machine
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
)
from repro.verify import check_consistency
from repro.workloads import get_workload, run_workload, workload_names
from repro.workloads.registry import MICROBENCHES, SUITE

MODEL_CHOICES = {
    "baseline": (HardwareModel.BASELINE, PersistencyModel.RELEASE),
    "hops_ep": (HardwareModel.HOPS, PersistencyModel.EPOCH),
    "hops_rp": (HardwareModel.HOPS, PersistencyModel.RELEASE),
    "asap_ep": (HardwareModel.ASAP, PersistencyModel.EPOCH),
    "asap_rp": (HardwareModel.ASAP, PersistencyModel.RELEASE),
    "eadr": (HardwareModel.EADR, PersistencyModel.RELEASE),
    "vorpal": (HardwareModel.VORPAL, PersistencyModel.RELEASE),
    "asap_no_undo": (HardwareModel.ASAP_NO_UNDO, PersistencyModel.RELEASE),
}


def _machine_config(args) -> MachineConfig:
    return MachineConfig(num_cores=args.threads, num_mcs=args.mcs)


def _run_config(model: str, seed: int) -> RunConfig:
    hardware, persistency = MODEL_CHOICES[model]
    return RunConfig(hardware=hardware, persistency=persistency, seed=seed)


def cmd_list(_args) -> int:
    print("workloads (Table III):")
    for cls in SUITE:
        print(f"  {cls.name:12s} [{cls.category}]")
    print("microbenchmarks:")
    for cls in MICROBENCHES:
        print(f"  {cls.name:12s} [{cls.category}]")
    print("models:")
    for name in MODEL_CHOICES:
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    workload = get_workload(args.workload, ops_per_thread=args.ops,
                            seed=args.seed)
    result = run_workload(
        workload, _machine_config(args), _run_config(args.model, args.seed)
    )
    text = format_stats(result.result)
    if args.stats:
        write_stats(result.result, args.stats)
        print(f"wrote {args.stats}")
    else:
        print(text, end="")
    return 0


def cmd_compare(args) -> int:
    names = args.workloads or workload_names()
    classes = [type(get_workload(name)) for name in names]
    models = (
        STANDARD_MODELS
        if not args.models
        else [
            ModelSpec(m, *MODEL_CHOICES[m]) for m in args.models
        ]
    )
    result = sweep(
        classes, models, _machine_config(args),
        ops_per_thread=args.ops, seed=args.seed,
    )
    model_names = [m.name for m in models]
    baseline = model_names[0]
    rows = []
    for name in result.workloads:
        rows.append(
            [name]
            + [f"{result.speedup(name, m, over=baseline):.2f}"
               for m in model_names]
        )
    rows.append(
        ["geomean"]
        + [f"{result.geomean_speedup(m, over=baseline):.2f}"
           for m in model_names]
    )
    print(render_table(
        ["workload"] + model_names, rows,
        title=f"speedup over {baseline} "
              f"({args.threads} threads, {args.ops} ops/thread)",
    ))
    return 0


def cmd_crash(args) -> int:
    workload = get_workload(args.workload, ops_per_thread=args.ops,
                            seed=args.seed)
    heap = PMAllocator()
    programs = workload.programs(heap, args.threads)
    state = run_and_crash(
        _machine_config(args), _run_config(args.model, args.seed),
        programs, args.at,
    )
    report = check_consistency(state.log, state.media)
    survived = sum(1 for v in state.media.values() if v)
    print(f"crashed {args.workload} on {args.model} at cycle "
          f"{state.crash_cycle}")
    print(f"surviving lines: {survived}; "
          f"epochs damaged: {len(report.damaged)}, "
          f"surviving: {len(report.survivors)}")
    print(report.summary())
    return 0 if report.consistent else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASAP (HPCA 2022) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--threads", type=int, default=4)
        p.add_argument("--mcs", type=int, default=2)
        p.add_argument("--ops", type=int, default=100,
                       help="operations per thread")
        p.add_argument("--seed", type=int, default=7)

    p_list = sub.add_parser("list", help="list workloads and models")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one workload on one model")
    p_run.add_argument("workload")
    p_run.add_argument("--model", choices=MODEL_CHOICES, default="asap_rp")
    p_run.add_argument("--stats", help="write gem5-style stats.txt here")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="speedup table across models")
    p_cmp.add_argument("--workloads", nargs="*",
                       help="default: the full Table III suite")
    p_cmp.add_argument("--models", nargs="*", choices=MODEL_CHOICES,
                       help="first one is the normalization baseline")
    common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_crash = sub.add_parser("crash", help="crash a run and check recovery")
    p_crash.add_argument("workload")
    p_crash.add_argument("--model", choices=MODEL_CHOICES, default="asap_rp")
    p_crash.add_argument("--at", type=int, required=True,
                         help="crash cycle")
    common(p_crash)
    p_crash.set_defaults(func=cmd_crash)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
