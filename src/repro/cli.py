"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's ``run.sh <workload> <persistency model>``
workflow:

- ``run``     -- run one workload under one model; print (or save) a
  gem5-style stats.txt.
- ``compare`` -- run workloads across models and print speedup tables
  (Figure 8 style).
- ``crash``   -- crash a workload at a chosen cycle and print the
  Theorem 2 consistency report.
- ``timeline`` -- run one workload with event tracing on and export a
  Chrome-trace-format timeline (load it at https://ui.perfetto.dev)
  plus a per-epoch stall breakdown.
- ``lint``    -- static persistency analysis of a workload's op stream
  (no simulation); text/JSON/SARIF output and a CI-gate exit code.
- ``crashtest`` -- systematic crash-sweep campaign: crash at every
  epoch-commit boundary plus stratified-random cycles, adjudicate
  recovery with per-workload semantic oracles, minimize and serialize
  any failure for replay.
- ``litmus``  -- cross-validate the operational simulator against the
  axiomatic Px86/PTSO persistency model on a corpus of small litmus
  tests; any operationally-reachable state the axioms forbid is a
  simulator bug (exit 1).
- ``ckpt``    -- create, inspect, or resume a serializable simulator
  checkpoint (a canonical-JSON snapshot taken at a quiescent cycle
  barrier); resuming reproduces the original run byte-for-byte.
- ``sample``  -- SimPoint-style sampled simulation: fingerprint the op
  stream, cluster it into phases, simulate only phase representatives,
  extrapolate full-run statistics; ``--validate`` runs the full
  simulation alongside and reports per-metric relative error.
- ``fabric``  -- the distributed experiment fabric: run a grid with
  content fingerprints (``grid``), attach an external worker to a
  shared queue (``worker``), or inspect a queue (``status``).
- ``serve``   -- long-running HTTP service over the fabric: POST
  experiment specs, poll job progress, repeat submissions answered
  from the shared result cache instantly.
- ``list``    -- enumerate workloads and models.

Model names come from the canonical registry
(:data:`repro.core.models.MODEL_REGISTRY`); ``run`` and ``compare``
execute through the :mod:`repro.exp` engine, so both understand
``--jobs N`` (process fan-out) and ``--cache-dir DIR`` (deterministic
result reuse).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_table, stall_breakdown_table
from repro.analysis.statsfile import format_stats, write_stats
from repro.core.api import PMAllocator
from repro.core.crash import run_and_crash
from repro.core.models import (
    MODEL_ALIASES,
    MODEL_REGISTRY,
    STANDARD_MODELS,
    resolve_model,
)
from repro.exp import ResultCache, RunSpec, run_grid, run_plan, ExperimentPlan
from repro.sim.config import MachineConfig
from repro.verify import check_consistency
from repro.workloads import get_workload, workload_names
from repro.workloads.registry import MICROBENCHES, SUITE


# Aliases ("hops", "asap") resolve to their _rp designs, so accept them
# anywhere a canonical registry name is accepted.
_MODEL_CHOICE_NAMES = list(MODEL_REGISTRY) + list(MODEL_ALIASES)


def _machine_config(args) -> MachineConfig:
    return MachineConfig(num_cores=args.threads, num_mcs=args.mcs)


def _cache(args) -> Optional[ResultCache]:
    return ResultCache(args.cache_dir) if args.cache_dir else None


def _fabric_executor(args):
    """A FabricExecutor when ``--fabric`` was given, else None.

    None lets every driver fall back to its classic ``make_executor``
    path, so ``--fabric`` is purely additive.
    """
    if not getattr(args, "fabric", False):
        return None
    from repro.fabric import FabricExecutor

    return FabricExecutor(
        jobs=getattr(args, "jobs", None) or 2,
        queue_dir=getattr(args, "queue", None),
        cache_dir=getattr(args, "cache_dir", None),
        stream_path=getattr(args, "stream", None),
        chaos_kill_after=getattr(args, "chaos_kill", None),
    )


def cmd_list(_args) -> int:
    print("workloads (Table III):")
    for cls in SUITE:
        print(f"  {cls.name:12s} [{cls.category}]")
    print("microbenchmarks:")
    for cls in MICROBENCHES:
        print(f"  {cls.name:12s} [{cls.category}]")
    print("models:")
    for name in MODEL_REGISTRY:
        print(f"  {name}")
    return 0


def cmd_run(args) -> int:
    spec = RunSpec(
        args.workload,
        args.model,
        machine=_machine_config(args),
        ops_per_thread=args.ops,
        seed=args.seed,
    )
    outcome = run_plan(ExperimentPlan([spec]), cache=_cache(args))
    result = outcome.results[0]
    text = format_stats(result.result)
    if args.stats:
        write_stats(result.result, args.stats)
        print(f"wrote {args.stats}")
    else:
        print(text, end="")
    return 0


def cmd_compare(args) -> int:
    names: List[str] = []
    for name in args.workloads or []:
        # group alias: "microbench" expands to the whole microbench set
        if name in ("microbench", "micro"):
            names.extend(cls.name for cls in MICROBENCHES)
        else:
            names.append(name)
    names = names or workload_names()
    models = (
        STANDARD_MODELS
        if not args.models
        else [resolve_model(m) for m in args.models]
    )
    result = run_grid(
        names,
        models,
        machine=_machine_config(args),
        ops_per_thread=args.ops,
        seed=args.seed,
        jobs=args.jobs,
        cache=_cache(args),
    )
    model_names = [m.name for m in models]
    baseline = model_names[0]
    rows = []
    for name in result.workloads:
        rows.append(
            [name]
            + [f"{result.speedup(name, m, over=baseline):.2f}"
               for m in model_names]
        )
    rows.append(
        ["geomean"]
        + [f"{result.geomean_speedup(m, over=baseline):.2f}"
           for m in model_names]
    )
    print(render_table(
        ["workload"] + model_names, rows,
        title=f"speedup over {baseline} "
              f"({args.threads} threads, {args.ops} ops/thread)",
    ))
    return 0


def cmd_timeline(args) -> int:
    from repro.obs import JSONLSink, RingBufferSink, StallProfiler
    from repro.obs.chrome import write_chrome_trace
    from repro.workloads.base import run_workload

    workload = get_workload(args.workload, ops_per_thread=args.ops,
                            seed=args.seed)
    run_config = resolve_model(args.model).run_config(seed=args.seed)
    ring = RingBufferSink()
    profiler = StallProfiler()
    sinks = [ring, profiler]
    jsonl = None
    if args.events:
        jsonl = JSONLSink(args.events)
        sinks.append(jsonl)
    try:
        run_workload(
            workload, _machine_config(args), run_config,
            num_threads=args.threads, sinks=sinks,
        )
    finally:
        if jsonl is not None:
            jsonl.close()
    write_chrome_trace(ring.events, args.out)
    print(f"wrote {args.out} ({ring.total_seen} events; open in Perfetto)")
    if jsonl is not None:
        print(f"wrote {args.events} ({jsonl.lines_written} JSONL events)")
    print()
    print(stall_breakdown_table(
        profiler.summary(),
        title=f"stall cycles by (core, epoch) -- {args.workload} on "
              f"{args.model}",
    ))
    return 0


def cmd_lint(args) -> int:
    from repro.lint import (
        LintConfig,
        LintError,
        Severity,
        lint_all,
        render_text,
        sarif,
    )

    if not args.all and not args.workload:
        print("lint: provide a workload name or --all", file=sys.stderr)
        return 2
    config = LintConfig(
        threads=args.threads,
        ops_per_thread=args.ops,
        seed=args.seed,
        detectors=list(args.detectors) if args.detectors else None,
        no_suppress=args.no_suppress,
    )
    names = None if args.all else [args.workload]
    try:
        reports, sources = lint_all(names, config)
    except (LintError, KeyError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    fail_on = Severity.parse(args.fail_on)

    if args.format == "sarif":
        text = sarif.dumps(sarif.to_sarif(reports, sources))
    elif args.format == "json":
        text = sarif.dumps(sarif.to_json(reports))
    else:
        text = render_text(reports, verbose=args.verbose)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    gate_ok = all(r.ok(fail_on) for r in reports)
    if not gate_ok:
        print(
            f"lint: findings at or above --fail-on={fail_on.label}",
            file=sys.stderr,
        )
    return 0 if gate_ok else 1


def cmd_crashtest(args) -> int:
    from repro.core.models import RP_MODELS
    from repro.crashtest import replay_failure, run_campaign
    from repro.workloads.registry import SUITE

    if args.from_checkpoint and not args.replay:
        print("crashtest: --from-checkpoint requires --replay",
              file=sys.stderr)
        return 2
    if args.replay:
        try:
            report = replay_failure(
                args.replay, from_checkpoint=args.from_checkpoint
            )
        except ValueError as exc:
            # e.g. a checkpoint of a different cell, or one whose
            # quiescent point lands past the saved crash cycle.
            print(f"crashtest: {exc}", file=sys.stderr)
            return 2
        verdict = "reproduced" if report["reproduced"] else "NOT reproduced"
        print(f"replay {args.replay}: {verdict}")
        print(f"  workload: {report['workload']}  "
              f"crash cycle: {report['crash_cycle']}  "
              f"surviving media lines: {report['media_lines']}")
        for v in report["generic_violations"]:
            print(f"  generic: {v}")
        for v in report["oracle_violations"]:
            print(f"  oracle:  {v}")
        anchored = report.get("anchored")
        if anchored is not None:
            averdict = (
                "reproduced" if anchored["reproduced"] else "NOT reproduced"
            )
            print(f"  anchored re-simulation from "
                  f"{anchored['checkpoint']} (barrier cycle "
                  f"{anchored['barrier_cycle']}): {averdict}")
            print(f"    crash cycle: {anchored['crash_cycle']}  "
                  f"surviving media lines: {anchored['media_lines']}")
            for v in anchored["generic_violations"]:
                print(f"    generic: {v}")
            for v in anchored["oracle_violations"]:
                print(f"    oracle:  {v}")
            return 0 if report["reproduced"] and anchored["reproduced"] else 1
        return 0 if report["reproduced"] else 1

    if not args.all and not args.workload:
        print("crashtest: provide a workload name or --all", file=sys.stderr)
        return 2
    names = (
        [cls.name for cls in SUITE] if args.all else [args.workload]
    )
    models = (
        [resolve_model(m) for m in args.models]
        if args.models else list(RP_MODELS)
    )

    from repro.obs import JSONLSink

    sinks = []
    jsonl = None
    if args.events:
        jsonl = JSONLSink(args.events)
        sinks.append(jsonl)
    try:
        report = run_campaign(
            names,
            models=models,
            machine=_machine_config(args),
            points=args.points,
            seed=args.seed,
            ops_per_thread=args.ops,
            jobs=args.jobs,
            cache=_cache(args),
            sinks=sinks,
            save_dir=args.save_failures,
            executor=_fabric_executor(args),
        )
    finally:
        if jsonl is not None:
            jsonl.close()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.out}")
    print(report.summary())
    if jsonl is not None:
        print(f"wrote {args.events} ({jsonl.lines_written} JSONL events)")
    for path in report.saved_failures:
        print(f"minimized failing state: {path} "
              f"(replay with: repro crashtest --replay {path})")
    return 0 if report.ok else 1


def cmd_litmus(args) -> int:
    import json as _json

    from repro.litmus import (
        LitmusRunOptions,
        SMOKE_POINTS,
        build_corpus,
        families,
        run_litmus,
        smoke_corpus,
    )
    from repro.report import dumps as sarif_dumps

    if args.list:
        tests = build_corpus(seed=args.seed, rand_count=args.count)
        for test in tests:
            print(f"  {test.name:20s} [{test.family}] "
                  f"{len(test.threads)} thread(s), {test.num_ops()} ops")
        print(f"families: {', '.join(families())}")
        return 0

    selected = sum(
        1 for opt in (args.name, args.family, args.smoke, args.all) if opt
    )
    if selected != 1:
        print(
            "litmus: provide exactly one of a test name, --family, "
            "--smoke, or --all",
            file=sys.stderr,
        )
        return 2
    if args.smoke:
        tests = smoke_corpus()
        points = args.points if args.points is not None else SMOKE_POINTS
    else:
        names = [args.name] if args.name else None
        try:
            tests = build_corpus(
                seed=args.seed,
                rand_count=args.count,
                family=args.family,
                names=names,
            )
        except KeyError as exc:
            print(f"litmus: {exc.args[0]}", file=sys.stderr)
            return 2
        points = args.points if args.points is not None else 24

    options = LitmusRunOptions(
        points=points,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        executor=_fabric_executor(args),
    )
    if args.models:
        options.models = [resolve_model(m) for m in args.models]
    report = run_litmus(tests, options)

    if args.format == "sarif":
        text = sarif_dumps(report.to_sarif())
    elif args.format == "json":
        text = _json.dumps(report.to_json(), indent=2)
    else:
        text = report.render_text(verbose=args.verbose)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    if args.save_disagreements:
        with open(args.save_disagreements, "w") as handle:
            _json.dump(report.disagreements_doc(), handle, indent=2,
                       sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.save_disagreements}")

    gate_ok = report.ok(args.fail_on)
    if not gate_ok:
        print(
            f"litmus: disagreements at --fail-on={args.fail_on} "
            f"({report.forbidden_count()} forbidden, "
            f"{report.unobserved_count()} unobserved)",
            file=sys.stderr,
        )
    return 0 if gate_ok else 1


def cmd_ckpt(args) -> int:
    import json as _json

    from repro.ckpt.api import (
        CheckpointCell,
        create_checkpoint,
        describe_checkpoint,
        resume_machine,
    )
    from repro.ckpt.codec import dumps_checkpoint, loads_checkpoint

    if args.inspect:
        with open(args.inspect) as handle:
            meta, state = loads_checkpoint(handle.read())
        print(_json.dumps(describe_checkpoint(meta, state), indent=2,
                          sort_keys=True))
        return 0

    if args.resume:
        with open(args.resume) as handle:
            meta, state = loads_checkpoint(handle.read())
        machine = resume_machine(meta, state)
        result = machine.continue_run()
        print(f"resumed {meta.get('workload')}/{meta.get('model')} from "
              f"barrier cycle {meta.get('barrier_cycle')}")
        print(f"  finished at cycle {result.runtime_cycles} "
              f"({result.ops_executed} ops, "
              f"{machine.engine.events_executed} events)")
        return 0

    if not args.workload:
        print("ckpt: provide a workload name (or --inspect/--resume FILE)",
              file=sys.stderr)
        return 2
    if args.at is None:
        print("ckpt: --at CYCLE is required to create a checkpoint",
              file=sys.stderr)
        return 2
    cell = CheckpointCell(
        args.workload, args.model, ops_per_thread=args.ops, seed=args.seed,
    )
    made = create_checkpoint(cell, args.at)
    if made is None:
        print(f"ckpt: {args.workload}/{args.model} finished before cycle "
              f"{args.at}; nothing to checkpoint", file=sys.stderr)
        return 1
    meta, state, _live = made
    out = args.out or f"{args.workload}-{args.model}-{args.at}.ckpt.json"
    with open(out, "w") as handle:
        handle.write(dumps_checkpoint(meta, state))
    summary = describe_checkpoint(meta, state)
    print(f"wrote {out} (quiesced at cycle {summary['quiesced_at']}, "
          f"{summary['events_executed']} events executed)")
    return 0


def cmd_sample(args) -> int:
    import json as _json

    from repro.analysis.report import render_table
    from repro.sample import SampleConfig, run_sampled, validate_sampled

    try:
        config = SampleConfig(
            interval_ops=args.interval_ops,
            clusters=args.clusters,
            warmup_ops=args.warmup_ops,
            tail_intervals=args.tail_intervals,
        )
    except ValueError as exc:
        print(f"sample: {exc}", file=sys.stderr)
        return 2
    runner = validate_sampled if args.validate else run_sampled
    report = runner(
        args.workload, args.model, ops_per_thread=args.ops,
        num_threads=args.threads, seed=args.seed, config=config,
        machine_config=_machine_config(args),
    )

    headers = ["metric", "estimate", "margin"]
    if args.validate:
        headers += ["actual-error"]
    rows = []
    for name, est in report.estimates.items():
        row = [name, f"{est.value:,.0f}", f"{est.margin:.1%}"]
        if args.validate:
            err = report.errors.get(name)
            row.append("-" if err is None else f"{err:.2%}")
        rows.append(row)
    print(render_table(
        headers, rows,
        title=f"sampled {args.workload} on {report.model}: "
              f"{len(report.representatives)} representatives of "
              f"{report.num_intervals} intervals "
              f"({report.ops_simulated}/{report.ops_total} ops simulated, "
              f"{report.ops_ratio:.1f}x fewer)",
    ))
    if args.validate:
        print(f"geomean error {report.geomean_error:.2%} "
              f"(sampled {report.sampled_wall_s:.3f}s vs "
              f"full {report.full_wall_s:.3f}s)")
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import (
        BenchRecord,
        compare_records,
        parse_max_regress,
        run_suite,
    )

    if args.compare:
        base_path, new_path = args.compare
        try:
            threshold = parse_max_regress(args.max_regress)
        except ValueError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        comparison = compare_records(
            BenchRecord.load(base_path), BenchRecord.load(new_path),
            max_regress=threshold,
        )
        print(comparison.render())
        return 0 if comparison.ok else 1

    def progress(name, result) -> None:
        extra = ""
        if result.error is not None:
            extra = f", geomean error {result.error:.2%}"
        print(f"  {name}: {result.ops_per_sec:,.0f} ops/s "
              f"({result.wall_s:.3f}s best of {result.reps}{extra})")

    suite = "sampled" if args.sampled else args.suite
    print(f"running bench suite {suite!r} ({args.reps} reps per case)")
    record = run_suite(
        suite, reps=args.reps, progress=progress,
        executor=_fabric_executor(args),
    )
    out = args.out or record.default_filename()
    record.save(out)
    print(f"wrote {out} (git {record.git_sha[:12]})")
    return 0


def cmd_serve(args) -> int:
    from repro.fabric.serve import serve

    print(f"repro serve listening on http://{args.host}:{args.port} "
          f"({args.jobs} fabric worker(s))")
    print("POST /v1/experiments, GET /v1/jobs/<id>, GET /v1/stats, "
          "POST /v1/shutdown")
    serve(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_dir=args.queue,
        cache_dir=args.cache_dir,
        verbose=not args.quiet,
    )
    print("repro serve: shut down cleanly")
    return 0


def cmd_fabric(args) -> int:
    import json as _json
    import os as _os

    if args.mode == "worker":
        from repro.fabric import worker_loop

        if not args.queue:
            print("fabric worker: --queue DIR is required", file=sys.stderr)
            return 2
        worker_id = args.worker_id or f"ext-{_os.getpid()}"
        print(f"fabric worker {worker_id} joining queue {args.queue}")
        completed = worker_loop(
            args.queue, worker_id, cache_dir=args.cache_dir,
            max_idle_s=args.max_idle,
        )
        print(f"fabric worker {worker_id} exited after {completed} task(s)")
        return 0

    if args.mode == "status":
        from repro.fabric import FabricQueue

        if not args.queue:
            print("fabric status: --queue DIR is required", file=sys.stderr)
            return 2
        queue = FabricQueue(args.queue, create=False)
        doc = {
            "queue": str(queue.root),
            "tasks": len(queue.task_ids()),
            "leases": len(queue.lease_ids()),
            "results": len(queue.result_ids()),
            "stopped": queue.stopped(),
        }
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0

    # grid: run a workloads x models plan through the fabric (or, with
    # --serial, in-process) and report content fingerprints per cell --
    # the document the CI fabric-gate byte-compares across substrates.
    from repro.fabric import fingerprint_sha

    names = args.workloads or [cls.name for cls in MICROBENCHES]
    models = args.models or ["baseline", "asap_rp"]
    plan = ExperimentPlan.grid(
        names,
        models,
        machine=_machine_config(args),
        ops_per_thread=args.ops,
        num_threads=args.threads,
        seeds=(args.seed,),
    )
    executor = None
    if not args.serial:
        from repro.fabric import FabricExecutor

        executor = FabricExecutor(
            jobs=args.jobs or 2,
            queue_dir=args.queue,
            cache_dir=args.cache_dir,
            stream_path=args.stream,
            chaos_kill_after=args.chaos_kill,
        )
    outcome = run_plan(plan, cache=_cache(args), executor=executor)
    cells = [
        {
            "workload": spec.workload,
            "model": spec.model.name,
            "seed": spec.seed,
            "fingerprint_sha": fingerprint_sha(result),
        }
        for spec, result in outcome
    ]
    doc = {
        "kind": "fabric-grid",
        "workloads": names,
        "models": models,
        "ops": args.ops,
        "threads": args.threads,
        "seed": args.seed,
        "cells": cells,
    }
    for cell in cells:
        print(f"  {cell['workload']:>12s} {cell['model']:>12s}  "
              f"{cell['fingerprint_sha'][:16]}")
    mode = "serial" if args.serial else f"fabric jobs={args.jobs or 2}"
    print(f"{len(cells)} cell(s) via {mode}; "
          f"cache hits {outcome.cache_hits}, misses {outcome.cache_misses}")
    if args.out:
        with open(args.out, "w") as handle:
            _json.dump(doc, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def cmd_crash(args) -> int:
    workload = get_workload(args.workload, ops_per_thread=args.ops,
                            seed=args.seed)
    heap = PMAllocator()
    programs = workload.programs(heap, args.threads)
    run_config = resolve_model(args.model).run_config(seed=args.seed)
    state = run_and_crash(
        _machine_config(args), run_config, programs, args.at,
    )
    report = check_consistency(state.log, state.media)
    survived = sum(1 for v in state.media.values() if v)
    print(f"crashed {args.workload} on {args.model} at cycle "
          f"{state.crash_cycle}")
    print(f"surviving lines: {survived}; "
          f"epochs damaged: {len(report.damaged)}, "
          f"surviving: {len(report.survivors)}")
    print(report.summary())
    return 0 if report.consistent else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASAP (HPCA 2022) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--threads", type=int, default=4)
        p.add_argument("--mcs", type=int, default=2)
        p.add_argument("--ops", type=int, default=100,
                       help="operations per thread")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--cache-dir", metavar="DIR",
                       help="reuse deterministic results cached here")

    def _fabric_flags(p):
        p.add_argument("--fabric", action="store_true",
                       help="run the sweep on the fault-tolerant "
                       "distributed fabric (survives worker death; "
                       "byte-identical output)")
        p.add_argument("--queue", metavar="DIR",
                       help="fabric queue directory (default: a private "
                       "temp dir; share one to attach external workers "
                       "via 'repro fabric worker')")
        p.add_argument("--stream", metavar="PATH",
                       help="append one JSONL progress line per "
                       "completed task here (incremental results)")
        p.add_argument("--chaos-kill", type=int, default=None, metavar="N",
                       help="fault injection: SIGKILL one fabric worker "
                       "after N completed tasks (the CI fabric-gate "
                       "hook)")

    p_list = sub.add_parser("list", help="list workloads and models")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one workload on one model")
    p_run.add_argument("workload")
    p_run.add_argument("--model", choices=_MODEL_CHOICE_NAMES,
                       default="asap_rp")
    p_run.add_argument("--stats", help="write gem5-style stats.txt here")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="speedup table across models")
    p_cmp.add_argument("--workloads", nargs="*",
                       help="default: the full Table III suite")
    p_cmp.add_argument("--models", nargs="*", choices=_MODEL_CHOICE_NAMES,
                       help="first one is the normalization baseline")
    p_cmp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="run grid cells across N worker processes")
    common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_tl = sub.add_parser(
        "timeline",
        help="trace a run and export a Perfetto-viewable timeline",
    )
    p_tl.add_argument("workload")
    p_tl.add_argument("--model", choices=_MODEL_CHOICE_NAMES,
                      default="asap_rp")
    p_tl.add_argument("--out", default="timeline.json",
                      help="Chrome-trace-format output path")
    p_tl.add_argument("--events", metavar="PATH",
                      help="also write the raw event stream as JSONL here")
    common(p_tl)
    p_tl.set_defaults(func=cmd_timeline)

    from repro.lint import DETECTORS

    p_lint = sub.add_parser(
        "lint",
        help="static persistency analysis (no simulation)",
    )
    p_lint.add_argument("workload", nargs="?",
                        help="workload to lint (or use --all)")
    p_lint.add_argument("--all", action="store_true",
                        help="lint every stock workload (the CI gate set)")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    p_lint.add_argument("--out", metavar="PATH",
                        help="write the report here instead of stdout")
    p_lint.add_argument("--fail-on", choices=("note", "warning", "error"),
                        default="warning",
                        help="exit non-zero if any finding is at or above "
                        "this severity (default: warning)")
    p_lint.add_argument("--no-suppress", action="store_true",
                        help="ignore workload-declared suppressions")
    p_lint.add_argument("--detectors", nargs="*", metavar="NAME",
                        choices=sorted(DETECTORS),
                        help="run only these detectors "
                        f"(default: all of {sorted(DETECTORS)})")
    p_lint.add_argument("--verbose", action="store_true",
                        help="show suppressed findings with reasons")
    p_lint.add_argument("--threads", type=int, default=4)
    p_lint.add_argument("--ops", type=int, default=None,
                        help="operations per thread "
                        "(default: each workload's own default)")
    p_lint.add_argument("--seed", type=int, default=7)
    p_lint.set_defaults(func=cmd_lint)

    p_ct = sub.add_parser(
        "crashtest",
        help="systematic crash-sweep campaign with recovery oracles",
    )
    p_ct.add_argument("workload", nargs="?",
                      help="workload to sweep (or use --all)")
    p_ct.add_argument("--all", action="store_true",
                      help="sweep every stock Table III workload")
    p_ct.add_argument("--models", nargs="*", choices=_MODEL_CHOICE_NAMES,
                      metavar="MODEL",
                      help="models to sweep (default: baseline hops asap "
                      "eadr)")
    p_ct.add_argument("--points", type=int, default=50, metavar="N",
                      help="crash points per (workload, model) cell "
                      "(default: 50)")
    p_ct.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="adjudicate crash points across N worker "
                      "processes")
    p_ct.add_argument("--out", metavar="PATH",
                      help="write the canonical JSON campaign report here")
    p_ct.add_argument("--save-failures", metavar="DIR",
                      help="serialize minimized failing crash states here")
    p_ct.add_argument("--events", metavar="PATH",
                      help="write per-crash-point events as JSONL here")
    p_ct.add_argument("--replay", metavar="FILE",
                      help="re-adjudicate a serialized failing state "
                      "(skips the sweep)")
    p_ct.add_argument("--from-checkpoint", metavar="CKPT",
                      help="with --replay: also re-simulate the failure "
                      "from this checkpoint anchor (repro ckpt output) "
                      "and re-adjudicate the resimulated state")
    p_ct.add_argument("--threads", type=int, default=4)
    p_ct.add_argument("--mcs", type=int, default=2)
    p_ct.add_argument("--ops", type=int, default=24,
                      help="operations per thread (default: 24)")
    p_ct.add_argument("--seed", type=int, default=7)
    p_ct.add_argument("--cache-dir", metavar="DIR",
                      help="reuse deterministic results cached here")
    _fabric_flags(p_ct)
    p_ct.set_defaults(func=cmd_crashtest)

    p_lit = sub.add_parser(
        "litmus",
        help="cross-validate simulator vs axiomatic persistency model",
    )
    p_lit.add_argument("name", nargs="?",
                       help="one litmus test by name (see --list)")
    p_lit.add_argument("--family", metavar="FAMILY",
                       help="run every test of one family "
                       "(mp, sb, flush, epoch, rand)")
    p_lit.add_argument("--smoke", action="store_true",
                       help="the pinned golden-diffed CI gate subset")
    p_lit.add_argument("--all", action="store_true",
                       help="the full corpus (named + random family)")
    p_lit.add_argument("--list", action="store_true",
                       help="list corpus tests and exit")
    p_lit.add_argument("--models", nargs="*", choices=_MODEL_CHOICE_NAMES,
                       metavar="MODEL",
                       help="models to validate (default: baseline hops "
                       "asap eadr)")
    p_lit.add_argument("--points", type=int, default=None, metavar="N",
                       help="crash points per cell (default: 24; "
                       "--smoke pins its own)")
    p_lit.add_argument("--seed", type=int, default=7)
    p_lit.add_argument("--count", type=int, default=4, metavar="N",
                       help="random-family tests to generate (default: 4)")
    p_lit.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="run cells across N worker processes")
    p_lit.add_argument("--cache-dir", metavar="DIR",
                       help="reuse deterministic results cached here")
    p_lit.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text")
    p_lit.add_argument("--out", metavar="PATH",
                       help="write the report here instead of stdout")
    p_lit.add_argument("--fail-on", choices=("forbidden", "any", "never"),
                       default="forbidden",
                       help="exit non-zero on: forbidden states only "
                       "(default), any disagreement, or never")
    p_lit.add_argument("--save-disagreements", metavar="PATH",
                       help="write the canonical disagreement document "
                       "here (the golden-diffed CI artifact)")
    p_lit.add_argument("--verbose", action="store_true",
                       help="also print unobserved (too-strong) states")
    _fabric_flags(p_lit)
    p_lit.set_defaults(func=cmd_litmus)

    from repro.bench.suites import SUITES

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator performance / gate perf regressions",
    )
    p_bench.add_argument("--suite", choices=sorted(SUITES), default="smoke",
                         help="pinned benchmark suite to run "
                         "(default: smoke)")
    p_bench.add_argument("--sampled", action="store_true",
                         help="shorthand for --suite sampled: effective "
                         "throughput of sampled simulation plus its "
                         "geomean error column")
    p_bench.add_argument("--reps", type=int, default=3,
                         help="repetitions per case; best wall time wins "
                         "(default: 3)")
    p_bench.add_argument("--out", metavar="PATH",
                         help="record path (default: BENCH_<date>.json)")
    p_bench.add_argument("--compare", nargs=2, metavar=("BASE", "NEW"),
                         help="compare two records instead of running; "
                         "exit 1 on regression beyond --max-regress")
    p_bench.add_argument("--max-regress", default="10%",
                         help="allowed per-bench throughput drop for "
                         "--compare, e.g. '10%%' or '0.1' (default: 10%%)")
    p_bench.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="fabric worker count (with --fabric)")
    p_bench.add_argument("--fabric", action="store_true",
                         help="fan cases out over the fault-tolerant "
                         "fabric (throughput surveys; the CI perf gate "
                         "stays serial for low-noise timing)")
    p_bench.set_defaults(func=cmd_bench)

    p_ckpt = sub.add_parser(
        "ckpt",
        help="create / inspect / resume a serializable checkpoint",
    )
    p_ckpt.add_argument("workload", nargs="?",
                        help="workload to checkpoint (create mode)")
    p_ckpt.add_argument("--model", choices=_MODEL_CHOICE_NAMES,
                        default="asap_rp")
    p_ckpt.add_argument("--at", type=int, metavar="CYCLE",
                        help="quiescent barrier cycle to checkpoint at")
    p_ckpt.add_argument("--out", metavar="PATH",
                        help="checkpoint path (default: "
                        "<workload>-<model>-<cycle>.ckpt.json)")
    p_ckpt.add_argument("--inspect", metavar="FILE",
                        help="print a checkpoint summary and exit")
    p_ckpt.add_argument("--resume", metavar="FILE",
                        help="resume a checkpoint and run to completion")
    p_ckpt.add_argument("--ops", type=int, default=100,
                        help="operations per thread")
    p_ckpt.add_argument("--seed", type=int, default=7)
    p_ckpt.set_defaults(func=cmd_ckpt)

    p_sample = sub.add_parser(
        "sample",
        help="SimPoint-style sampled simulation with extrapolated stats",
    )
    p_sample.add_argument("workload")
    p_sample.add_argument("--model", choices=_MODEL_CHOICE_NAMES,
                          default="asap_rp")
    p_sample.add_argument("--validate", action="store_true",
                          help="also run the full simulation and report "
                          "per-metric relative error")
    p_sample.add_argument("--interval-ops", type=int, default=75,
                          metavar="N",
                          help="ops per fingerprint interval (default: 75)")
    p_sample.add_argument("--clusters", type=int, default=None, metavar="K",
                          help="interior phase count (default: adaptive)")
    p_sample.add_argument("--warmup-ops", type=int, default=25, metavar="N",
                          help="fully-simulated warm-up ops before each "
                          "representative (default: 25)")
    p_sample.add_argument("--tail-intervals", type=int, default=3,
                          metavar="N",
                          help="trailing intervals simulated exactly "
                          "(default: 3)")
    p_sample.add_argument("--out", metavar="PATH",
                          help="write the JSON sample report here")
    common(p_sample)
    # sampling only pays off on longer streams than the 100-op default.
    p_sample.set_defaults(func=cmd_sample, ops=2000)

    p_serve = sub.add_parser(
        "serve",
        help="long-running HTTP experiment service over the fabric",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="fabric worker processes (default: 2)")
    p_serve.add_argument("--queue", metavar="DIR",
                         help="fabric queue directory (default: a "
                         "private temp dir)")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         help="shared result store; repeat submissions "
                         "are answered from here instantly")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logging")
    p_serve.set_defaults(func=cmd_serve)

    p_fab = sub.add_parser(
        "fabric",
        help="distributed experiment fabric: grid / worker / status",
    )
    p_fab.add_argument("mode", choices=("grid", "worker", "status"),
                       help="grid: run a workloads x models plan and "
                       "print content fingerprints; worker: attach an "
                       "external worker to a queue; status: inspect a "
                       "queue directory")
    p_fab.add_argument("--workloads", nargs="*", metavar="NAME",
                       help="grid rows (default: the microbench set)")
    p_fab.add_argument("--models", nargs="*", choices=_MODEL_CHOICE_NAMES,
                       metavar="MODEL",
                       help="grid columns (default: baseline asap_rp)")
    p_fab.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="fabric worker processes (default: 2)")
    p_fab.add_argument("--serial", action="store_true",
                       help="bypass the fabric and run in-process (the "
                       "reference for byte-identity checks)")
    p_fab.add_argument("--out", metavar="PATH",
                       help="write the canonical grid document here")
    p_fab.add_argument("--queue", metavar="DIR",
                       help="fabric queue directory (worker/status: "
                       "required; grid: default private temp dir)")
    p_fab.add_argument("--stream", metavar="PATH",
                       help="append one JSONL line per completed task")
    p_fab.add_argument("--chaos-kill", type=int, default=None, metavar="N",
                       help="SIGKILL one worker after N completed tasks")
    p_fab.add_argument("--worker-id", metavar="ID",
                       help="worker mode: stable worker name "
                       "(default: ext-<pid>)")
    p_fab.add_argument("--max-idle", type=float, default=None, metavar="S",
                       help="worker mode: exit after S seconds with "
                       "nothing to claim")
    common(p_fab)
    p_fab.set_defaults(func=cmd_fabric)

    p_crash = sub.add_parser("crash", help="crash a run and check recovery")
    p_crash.add_argument("workload")
    p_crash.add_argument("--model", choices=_MODEL_CHOICE_NAMES,
                         default="asap_rp")
    p_crash.add_argument("--at", type=int, required=True,
                         help="crash cycle")
    common(p_crash)
    p_crash.set_defaults(func=cmd_crash)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
