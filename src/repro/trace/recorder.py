"""Record op streams and replay them.

:func:`record_programs` wraps a workload's thread programs so that every
op is captured as it is executed; after the run the :class:`Trace` holds
the exact per-thread streams, which can be saved to a JSON-lines file and
replayed against any hardware model.

Replayed runs are *trace-driven*: the op sequence is fixed, so any
difference between two models' results is purely the hardware's doing.
(Lock ops still enforce mutual exclusion during replay -- timing changes,
interleaving of the fixed streams follows it.)
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Union

from repro.core.api import Op, Program
from repro.trace.ops import decode_op, encode_op


@dataclass
class Trace:
    """Per-thread op streams."""

    threads: List[List[Op]] = field(default_factory=list)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def num_ops(self) -> int:
        return sum(len(ops) for ops in self.threads)

    def programs(self) -> List[Program]:
        """Fresh generators replaying the recorded streams."""
        return [iter(list(ops)) for ops in self.threads]

    # -- persistence ------------------------------------------------------

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write as JSON lines: a header, then ``[thread, op...]`` rows."""
        path = pathlib.Path(path)
        with path.open("w") as handle:
            header = {"version": 1, "threads": self.num_threads}
            handle.write(json.dumps(header) + "\n")
            for thread, ops in enumerate(self.threads):
                for op in ops:
                    row = [thread] + encode_op(op)
                    handle.write(json.dumps(row, separators=(",", ":")) + "\n")

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "Trace":
        path = pathlib.Path(path)
        with path.open() as handle:
            header = json.loads(handle.readline())
            if header.get("version") != 1:
                raise ValueError(f"unsupported trace version: {header}")
            threads: List[List[Op]] = [[] for _ in range(header["threads"])]
            for line in handle:
                row = json.loads(line)
                threads[row[0]].append(decode_op(row[1:]))
        return cls(threads=threads)


def record_programs(programs: Iterable[Program]) -> tuple:
    """Wrap programs for recording.

    Returns ``(wrapped_programs, trace)``; run the wrapped programs on a
    machine and the trace fills in as they execute.
    """
    trace = Trace()
    wrapped = []
    for program in programs:
        ops: List[Op] = []
        trace.threads.append(ops)

        def tee(program=program, ops=ops) -> Iterator[Op]:
            for op in program:
                ops.append(op)
                yield op

        wrapped.append(tee())
    return wrapped, trace


__all__ = ["Trace", "record_programs"]
