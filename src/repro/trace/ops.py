"""Serializable encoding of PMem ops.

Ops encode to short JSON-friendly lists (mnemonic first), one op per
line in a trace file.  Payloads are preserved when they are JSON
representable and dropped otherwise (payloads never affect timing; they
only exist so crash demos can show recovered values).
"""

from __future__ import annotations

import json
from typing import Any, List

from repro.core.api import (
    CAS,
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    Op,
    Release,
    Store,
)

_JSON_SAFE = (str, int, float, bool, type(None))


def encode_op(op: Op) -> List[Any]:
    """Encode one op as a compact list."""
    # CAS subclasses Store, so its isinstance check must come first.
    if isinstance(op, CAS):
        payload = op.payload if isinstance(op.payload, _JSON_SAFE) else None
        return ["CS", op.addr, op.size, payload]
    if isinstance(op, Store):
        payload = op.payload if isinstance(op.payload, _JSON_SAFE) else None
        return ["S", op.addr, op.size, payload]
    if isinstance(op, Load):
        return ["L", op.addr, op.size]
    if isinstance(op, OFence):
        return ["OF"]
    if isinstance(op, DFence):
        return ["DF"]
    if isinstance(op, Acquire):
        return ["AQ", op.lock]
    if isinstance(op, Release):
        return ["RL", op.lock]
    if isinstance(op, Compute):
        return ["C", op.cycles]
    if isinstance(op, NewStrand):
        return ["NS"]
    raise TypeError(f"cannot encode op {op!r}")


def decode_op(encoded: List[Any]) -> Op:
    """Decode one op from its list form."""
    tag = encoded[0]
    if tag == "S":
        return Store(encoded[1], encoded[2], encoded[3])
    if tag == "CS":
        return CAS(encoded[1], encoded[2], encoded[3])
    if tag == "L":
        return Load(encoded[1], encoded[2])
    if tag == "OF":
        return OFence()
    if tag == "DF":
        return DFence()
    if tag == "AQ":
        return Acquire(encoded[1])
    if tag == "RL":
        return Release(encoded[1])
    if tag == "C":
        return Compute(encoded[1])
    if tag == "NS":
        return NewStrand()
    raise ValueError(f"unknown op tag {tag!r}")


def dumps_op(op: Op) -> str:
    return json.dumps(encode_op(op), separators=(",", ":"))


def loads_op(line: str) -> Op:
    return decode_op(json.loads(line))


__all__ = ["decode_op", "dumps_op", "encode_op", "loads_op"]
