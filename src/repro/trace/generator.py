"""Parameterized synthetic trace generation.

For controlled experiments the evaluation workloads are too opinionated:
sometimes you want to dial exactly one property -- epoch size, fence
frequency, sharing rate, compute per store -- and sweep it.  The
generator produces traces from a small parameter set, which is also how
the calibration experiments in EXPERIMENTS.md were sanity-checked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    OFence,
    Op,
    PMAllocator,
    Release,
    Store,
)
from repro.trace.recorder import Trace


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for the synthetic trace generator."""

    num_threads: int = 4
    ops_per_thread: int = 100
    #: stores per epoch (an ofence closes each epoch).
    epoch_size: int = 2
    #: store size in bytes.
    store_bytes: int = 64
    #: compute cycles between stores.
    compute_cycles: int = 60
    #: probability an epoch's stores touch the shared (lock-protected)
    #: region instead of thread-private memory.
    sharing: float = 0.2
    #: a dfence every this many epochs (0 = only at the end).
    dfence_every: int = 0
    #: private working-set lines per thread.
    private_lines: int = 32
    #: shared working-set lines.
    shared_lines: int = 8
    seed: int = 1


def synthetic_trace(
    config: SyntheticTraceConfig, heap: PMAllocator = None
) -> Trace:
    """Generate a trace according to ``config``."""
    heap = heap or PMAllocator()
    lock = heap.alloc_lock()
    shared = heap.alloc_lines(config.shared_lines)
    threads: List[List[Op]] = []
    for thread in range(config.num_threads):
        rng = random.Random(config.seed * 1009 + thread)
        private = heap.alloc_lines(config.private_lines)
        ops: List[Op] = []
        epochs = max(1, config.ops_per_thread // config.epoch_size)
        for epoch in range(epochs):
            use_shared = rng.random() < config.sharing
            if use_shared:
                ops.append(Acquire(lock))
            for _ in range(config.epoch_size):
                if config.compute_cycles:
                    ops.append(Compute(config.compute_cycles))
                if use_shared:
                    line = shared + rng.randrange(config.shared_lines) * 64
                    ops.append(Load(line, 8))
                else:
                    line = private + rng.randrange(config.private_lines) * 64
                ops.append(Store(line, config.store_bytes))
            ops.append(OFence())
            if use_shared:
                ops.append(Release(lock))
            if config.dfence_every and (epoch + 1) % config.dfence_every == 0:
                ops.append(DFence())
        ops.append(DFence())
        threads.append(ops)
    return Trace(threads=threads)


__all__ = ["SyntheticTraceConfig", "synthetic_trace"]
