"""Trace infrastructure: record, save, load and replay op streams.

The workloads in :mod:`repro.workloads` are *execution-driven*: their
Python-level data structures evolve with simulated time, so two runs
under different hardware models can interleave differently.  For strictly
apples-to-apples comparisons (and for shipping reproducible inputs), a
run can be captured as a *trace* -- the exact per-thread op streams -- and
replayed against any model.

- :mod:`repro.trace.ops`      -- serializable op encoding (JSON lines).
- :mod:`repro.trace.recorder` -- record programs as they run; replay.
- :mod:`repro.trace.generator`-- parameterized synthetic trace generators
  for controlled experiments (epoch size, fence rate, sharing, compute).
"""

from repro.trace.ops import decode_op, encode_op
from repro.trace.recorder import Trace, record_programs
from repro.trace.generator import SyntheticTraceConfig, synthetic_trace

__all__ = [
    "SyntheticTraceConfig",
    "Trace",
    "decode_op",
    "encode_op",
    "record_programs",
    "synthetic_trace",
]
