"""Ordered-chain recovery oracle: per-workload semantic crash checking.

The generic checker (:mod:`repro.verify.consistency`) validates the
*hardware's* contract -- epoch ordering over the dependency DAG.  It
cannot know what the *application* meant: that a CCEH directory entry
must never point at an unwritten segment, or that an undo-log entry must
hit media before the store it guards.  Workloads express exactly those
intentions as **ordered chains**: each semantically ordered store is
tagged with a payload ``("ot", chain, seq)`` (see
:class:`repro.workloads.base.ChainTagger`), where ``seq`` increases only
across the workload's *own* ordering points (fences, lock releases).

The oracle rule over a crash image: if any chain write with sequence
``s`` was **absorbed** (its line's surviving value is at or after it in
the line's volatile write order) while some chain write with sequence
``s' < s`` was **lost**, the application's intended order was broken.
Partial epochs stay legal -- writes *within* one sequence number carry
no mutual ordering claim, matching epoch persistency's
ordering-not-atomicity contract.

Soundness note for oracle authors: bump the sequence only at points
*every* model under test actually orders (``OFence``/``DFence``/
``Release``).  Under-tagging (fewer bumps than real ordering points)
only weakens the oracle; over-tagging makes it scream at legal
reorderings.  ``NewStrand`` in particular removes ordering -- a chain
that keeps counting across a strand boundary asserts an ordering the
hardware never promised (the ``buggy_demo`` fixture does exactly that,
deliberately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.epoch import EpochLog

#: payload tag marking a store as a member of an ordered chain.
CHAIN_TAG = "ot"


@dataclass(frozen=True)
class ChainViolation:
    """An application-level ordering violation in a crash image."""

    chain: str
    #: the earlier chain write that failed to survive.
    lost_write_id: int
    lost_line: int
    lost_seq: int
    #: the later chain write whose effect is evident on media.
    survivor_write_id: int
    survivor_line: int
    survivor_seq: int

    def describe(self) -> str:
        return (
            f"chain {self.chain!r}: write {self.survivor_write_id} "
            f"(seq {self.survivor_seq}, line {self.survivor_line:#x}) is "
            f"evident on media but earlier write {self.lost_write_id} "
            f"(seq {self.lost_seq}, line {self.lost_line:#x}) was lost"
        )


def chain_writes(log: EpochLog) -> Dict[str, List[Tuple[int, int, int]]]:
    """All tagged writes, grouped by chain: ``{chain: [(seq, wid, line)]}``."""
    chains: Dict[str, List[Tuple[int, int, int]]] = {}
    for write_id, payload in log.payloads.items():
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == CHAIN_TAG
        ):
            record = log.writes.get(write_id)
            if record is None:
                continue
            _, chain, seq = payload
            chains.setdefault(str(chain), []).append(
                (int(seq), write_id, record.line)
            )
    for members in chains.values():
        members.sort()
    return chains


def check_ordered_chains(
    log: EpochLog, media: Dict[int, int]
) -> List[ChainViolation]:
    """Adjudicate a crash image against every tagged chain in the log.

    A chain write is *absorbed* when the surviving value of its line sits
    at or after the write in that line's volatile order (i.e. the write's
    effect -- directly or via a newer overwrite -- reached media); it is
    *lost* otherwise.  Lines whose surviving value appears in no write
    history are skipped (the generic checker reports them as
    ``unknown_values``).
    """
    position: Dict[int, Dict[int, int]] = {
        line: {wid: i for i, wid in enumerate(order)}
        for line, order in log.line_order.items()
    }
    surviving_index: Dict[int, int] = {}
    for line, order in log.line_order.items():
        recovered = media.get(line, 0)
        if recovered == 0:
            surviving_index[line] = -1
        else:
            index = position[line].get(recovered)
            if index is None:
                continue  # unknown value: leave the line unadjudicated
            surviving_index[line] = index

    violations: List[ChainViolation] = []
    for chain, members in sorted(chain_writes(log).items()):
        judged = []
        for seq, write_id, line in members:
            if line not in surviving_index:
                continue
            absorbed = surviving_index[line] >= position[line][write_id]
            judged.append((seq, write_id, line, absorbed))
        lost = [(s, w, ln) for s, w, ln, absorbed in judged if not absorbed]
        if not lost:
            continue
        for seq, write_id, line, absorbed in judged:
            if not absorbed:
                continue
            # the earliest lost write strictly before this survivor
            earlier = [entry for entry in lost if entry[0] < seq]
            if earlier:
                lost_seq, lost_wid, lost_line = earlier[0]
                violations.append(
                    ChainViolation(
                        chain=chain,
                        lost_write_id=lost_wid,
                        lost_line=lost_line,
                        lost_seq=lost_seq,
                        survivor_write_id=write_id,
                        survivor_line=line,
                        survivor_seq=seq,
                    )
                )
    return violations


__all__ = ["CHAIN_TAG", "ChainViolation", "chain_writes", "check_ordered_chains"]
