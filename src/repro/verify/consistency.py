"""The recovery-consistency checker (machine-checked Theorem 2).

Epoch persistency's guarantee (Section IV-B): *writes in a later epoch
should not survive a failure unless all writes from its preceding epochs
also survive.*  Concretely, against a crash image:

- A write is **absorbed** if its value is on the media or was overwritten
  by a newer surviving write to the same line (per-line volatile order).
- A write is **lost** if it is newer (per line) than the surviving value.
- An epoch is **damaged** if any of its writes was lost; an epoch is a
  **survivor** if some line's recovered value was written by it.

The recovered state is consistent iff **no damaged epoch is a strict
ancestor of a survivor** in the epoch dependency DAG.  Partial epochs are
legal (epoch persistency provides ordering, not atomicity), which is why
only *strict* ancestry violates.

The checker is deliberately independent of the hardware models: it
consumes only the run's :class:`~repro.core.epoch.EpochLog` and a
line -> write-id memory image, so it can adjudicate any design -- and it
does flag the ``ASAP_NO_UNDO`` ablation, which is how the test suite
proves it has teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.epoch import EpochId, EpochLog
from repro.verify.dag import EpochDag, build_dag


@dataclass(frozen=True)
class Violation:
    """One ordering violation found in a crash image."""

    damaged_epoch: EpochId
    survivor_epoch: EpochId
    #: a write of the damaged epoch that was lost.
    lost_write_id: int
    lost_line: int
    #: a line whose surviving value belongs to the survivor epoch.
    survivor_line: int

    def describe(self) -> str:
        return (
            f"epoch {self.damaged_epoch} lost write {self.lost_write_id} "
            f"(line {self.lost_line:#x}) but descendant epoch "
            f"{self.survivor_epoch} survived on line {self.survivor_line:#x}"
        )


@dataclass
class ConsistencyReport:
    consistent: bool
    violations: List[Violation] = field(default_factory=list)
    #: epochs with at least one lost write.
    damaged: Set[EpochId] = field(default_factory=set)
    #: epochs owning at least one surviving line value.
    survivors: Set[EpochId] = field(default_factory=set)
    #: recovered values that appear in no line's write history.
    unknown_values: List[Tuple[int, int]] = field(default_factory=list)

    def summary(self) -> str:
        if self.consistent:
            return (
                f"consistent: {len(self.survivors)} surviving epochs, "
                f"{len(self.damaged)} damaged epochs, no ordering violation"
            )
        lines = [f"INCONSISTENT: {len(self.violations)} violation(s)"]
        lines += ["  " + v.describe() for v in self.violations[:10]]
        return "\n".join(lines)


def check_consistency(
    log: EpochLog, media: Dict[int, int], dag: Optional[EpochDag] = None
) -> ConsistencyReport:
    """Validate a crash image against the run's persist-ordering log."""
    dag = dag or build_dag(log)
    damaged: Set[EpochId] = set()
    survivors: Set[EpochId] = set()
    #: representative lost write per damaged epoch (for error messages).
    lost_example: Dict[EpochId, Tuple[int, int]] = {}
    survivor_line: Dict[EpochId, int] = {}
    unknown: List[Tuple[int, int]] = []

    for line, order in log.line_order.items():
        recovered = media.get(line, 0)
        if recovered == 0:
            lost_from = 0
        else:
            try:
                lost_from = order.index(recovered) + 1
            except ValueError:
                unknown.append((line, recovered))
                continue
            epoch = log.epoch_of_write(recovered)
            survivors.add(epoch)
            survivor_line.setdefault(epoch, line)
        for write_id in order[lost_from:]:
            epoch = log.epoch_of_write(write_id)
            if epoch not in damaged:
                damaged.add(epoch)
                lost_example[epoch] = (write_id, line)

    violations: List[Violation] = []
    if damaged and survivors:
        tainted = dag.descendants(damaged)
        bad_survivors = survivors & tainted
        if bad_survivors:
            # Attribute each bad survivor to one damaged ancestor for the
            # report (any ancestor will do; recompute per damaged epoch).
            for survivor in sorted(bad_survivors):
                culprit = _find_damaged_ancestor(dag, damaged, survivor)
                write_id, line = lost_example[culprit]
                violations.append(
                    Violation(
                        damaged_epoch=culprit,
                        survivor_epoch=survivor,
                        lost_write_id=write_id,
                        lost_line=line,
                        survivor_line=survivor_line[survivor],
                    )
                )

    return ConsistencyReport(
        consistent=not violations and not unknown,
        violations=violations,
        damaged=damaged,
        survivors=survivors,
        unknown_values=unknown,
    )


def _find_damaged_ancestor(
    dag: EpochDag, damaged: Set[EpochId], survivor: EpochId
) -> EpochId:
    """Pick one damaged epoch from which ``survivor`` is reachable."""
    for epoch in sorted(damaged):
        if survivor in dag.descendants([epoch]):
            return epoch
    raise AssertionError("survivor was tainted but no ancestor found")


__all__ = ["ConsistencyReport", "Violation", "check_consistency"]
