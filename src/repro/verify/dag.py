"""The epoch dependency DAG (Figure 7, Lemma 0.1, Theorem 1).

Epochs are nodes; two kinds of edges order them:

- intra-thread edges ``(c, t) -> (c, t+1)`` from persist barriers, and
- cross-thread edges recorded when a dependence was established.

The paper proves the graph is acyclic (new epochs are opened on *both*
sides of every cross-thread dependence) and uses the existence of a
topological order to argue forward progress: some epoch is always safe.
These utilities let the tests machine-check both claims on real runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.epoch import EpochId, EpochLog


@dataclass
class EpochDag:
    """Adjacency view over a run's epochs."""

    nodes: Set[EpochId]
    successors: Dict[EpochId, List[EpochId]]

    @classmethod
    def from_edges(
        cls,
        nodes: Iterable[EpochId],
        edges: Iterable[Tuple[EpochId, EpochId]],
    ) -> "EpochDag":
        """Build a DAG from an explicit node and edge list.

        This is how declarative clients (the axiomatic checker in
        :mod:`repro.axiom`) hand a candidate epoch-ordering graph to
        :func:`~repro.verify.consistency.check_consistency` without
        going through a simulated run's :class:`EpochLog`.  Duplicate
        edges are dropped; endpoints are added to the node set.
        """
        node_set: Set[EpochId] = set(nodes)
        successors: Dict[EpochId, List[EpochId]] = {}
        seen: Set[Tuple[EpochId, EpochId]] = set()
        for src, dst in edges:
            node_set.add(src)
            node_set.add(dst)
            if (src, dst) in seen:
                continue
            seen.add((src, dst))
            successors.setdefault(src, []).append(dst)
        return cls(nodes=node_set, successors=successors)

    def descendants(self, roots: Iterable[EpochId]) -> Set[EpochId]:
        """Every epoch strictly reachable from ``roots`` (roots excluded
        unless reachable from another root)."""
        seen: Set[EpochId] = set()
        frontier = deque()
        for root in roots:
            for succ in self.successors.get(root, ()):  # strict: start at succs
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        while frontier:
            node = frontier.popleft()
            for succ in self.successors.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def is_acyclic(self) -> bool:
        """Kahn's algorithm over the whole graph."""
        indegree: Dict[EpochId, int] = {node: 0 for node in self.nodes}
        for node, succs in self.successors.items():
            for succ in succs:
                indegree[succ] = indegree.get(succ, 0) + 1
        ready = deque(n for n, d in indegree.items() if d == 0)
        visited = 0
        while ready:
            node = ready.popleft()
            visited += 1
            for succ in self.successors.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        return visited == len(indegree)

    def topological_order(self) -> List[EpochId]:
        """A topological order; raises ValueError on a cycle.

        The order witnesses Theorem 1: processed front to back, each epoch
        becomes safe once its predecessors complete."""
        indegree: Dict[EpochId, int] = {node: 0 for node in self.nodes}
        for node, succs in self.successors.items():
            for succ in succs:
                indegree[succ] = indegree.get(succ, 0) + 1
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: List[EpochId] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for succ in self.successors.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(indegree):
            raise ValueError("epoch dependence graph has a cycle")
        return order


def build_dag(log: EpochLog) -> EpochDag:
    """Construct the epoch DAG for a finished (or crashed) run."""
    nodes: Set[EpochId] = set()
    successors: Dict[EpochId, List[EpochId]] = {}

    def add_edge(src: EpochId, dst: EpochId) -> None:
        nodes.add(src)
        nodes.add(dst)
        successors.setdefault(src, []).append(dst)

    for core, max_ts in log.max_ts.items():
        for ts in range(1, max_ts + 1):
            nodes.add((core, ts))
            if ts < max_ts and (core, ts + 1) not in log.strand_starts:
                # strand persistency: an epoch that begins a new strand
                # has no implicit intra-thread predecessor edge.
                add_edge((core, ts), (core, ts + 1))
    for source, dependent in log.dep_edges:
        add_edge(source, dependent)
    return EpochDag(nodes=nodes, successors=successors)


__all__ = ["EpochDag", "build_dag"]
