"""Formal-methods-adjacent checkers for the paper's Section VI claims.

- :mod:`repro.verify.dag` -- the epoch dependency graph is a DAG
  (Lemma 0.1) and always has a safe epoch (Theorem 1's forward-progress
  argument).
- :mod:`repro.verify.consistency` -- recovered memory is consistent
  (Theorem 2): no epoch whose writes were lost is a strict ancestor of an
  epoch whose write survived.
- :mod:`repro.verify.chains` -- application-level ordered-chain oracle
  for crash images (the default ``recovery_oracle()`` of every workload;
  see :mod:`repro.crashtest`).
"""

from repro.verify.dag import EpochDag, build_dag
from repro.verify.consistency import (
    ConsistencyReport,
    Violation,
    check_consistency,
)
from repro.verify.chains import (
    CHAIN_TAG,
    ChainViolation,
    chain_writes,
    check_ordered_chains,
)

__all__ = [
    "CHAIN_TAG",
    "ChainViolation",
    "ConsistencyReport",
    "EpochDag",
    "Violation",
    "build_dag",
    "chain_writes",
    "check_consistency",
    "check_ordered_chains",
]
