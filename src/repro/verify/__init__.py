"""Formal-methods-adjacent checkers for the paper's Section VI claims.

- :mod:`repro.verify.dag` -- the epoch dependency graph is a DAG
  (Lemma 0.1) and always has a safe epoch (Theorem 1's forward-progress
  argument).
- :mod:`repro.verify.consistency` -- recovered memory is consistent
  (Theorem 2): no epoch whose writes were lost is a strict ancestor of an
  epoch whose write survived.
"""

from repro.verify.dag import EpochDag, build_dag
from repro.verify.consistency import (
    ConsistencyReport,
    Violation,
    check_consistency,
)

__all__ = [
    "ConsistencyReport",
    "EpochDag",
    "Violation",
    "build_dag",
    "check_consistency",
]
