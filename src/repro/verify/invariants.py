"""Online invariant monitoring for running machines.

The crash-consistency checker validates end states; this module validates
*intermediate* states: structural invariants that every hardware
component must maintain at every instant.  Attach a monitor to a machine
and it re-checks the invariants on a fixed cadence (plus once at the
end); any violation raises with a precise description.

Checked invariants:

- persist buffers never exceed capacity, never hold more in-flight
  flushes than their limit, and their entries' sequence numbers are
  strictly increasing (FIFO identity);
- epoch tables: the committed prefix is dense below ``committed_upto``;
  a *safe* epoch's predecessor has committed; no entry has negative
  outstanding-write counts; the current epoch exists;
- recovery tables never exceed capacity, and no record belongs to an
  epoch its owner's epoch table has already committed (commit messages
  must have cleaned them first);
- WPQs never exceed capacity, and every line's ADR value is at least as
  new as its media value (the persistence domain never travels backwards).
"""

from __future__ import annotations

from typing import List

from repro.core.machine import Machine


class InvariantViolation(AssertionError):
    """A structural invariant failed during simulation."""


class InvariantMonitor:
    """Periodically validates a machine's component invariants."""

    def __init__(self, machine: Machine, period_cycles: int = 500) -> None:
        self.machine = machine
        self.period = period_cycles
        self.checks_run = 0
        self._armed = False

    def arm(self) -> None:
        """Start periodic checking (call before ``machine.run``)."""
        if self._armed:
            return
        self._armed = True
        self.machine.engine.schedule(self.period, self._tick)

    def _tick(self) -> None:
        self.check()
        if self.machine.engine.pending() > 0:
            self.machine.engine.schedule(self.period, self._tick)

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Validate every invariant right now."""
        self.checks_run += 1
        for index, path in enumerate(self.machine.paths):
            if path.has_persist_buffer:
                self._check_pb(index, path.pb)
            if hasattr(path, "et"):
                self._check_et(index, path.et)
        for mc in self.machine.mcs:
            self._check_mc(mc)

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"@cycle {self.machine.engine.now}: {message}"
        )

    def _check_pb(self, core: int, pb) -> None:
        if len(pb.entries) > pb.capacity:
            self._fail(f"PB[{core}] over capacity: {len(pb.entries)}")
        seqs = [entry.seq for entry in pb.entries]
        if seqs != sorted(seqs):
            self._fail(f"PB[{core}] lost FIFO order: {seqs}")
        inflight = sum(
            1 for e in pb.entries if e.state.name == "INFLIGHT"
        )
        if inflight > pb.inflight_max:
            self._fail(f"PB[{core}] too many in flight: {inflight}")

    def _check_et(self, core: int, et) -> None:
        if et.current_ts not in et.entries:
            self._fail(f"ET[{core}] current epoch {et.current_ts} missing")
        for ts, entry in et.entries.items():
            if entry.unacked < 0:
                self._fail(f"ET[{core}] epoch {ts} negative unacked")
            if entry.committed:
                self._fail(f"ET[{core}] committed epoch {ts} not retired")
            if entry.prev is not None and entry.prev >= ts:
                self._fail(f"ET[{core}] epoch {ts} precedes its predecessor")
        for ts in et._committed_sparse:
            if ts <= et.committed_upto:
                self._fail(f"ET[{core}] sparse commit {ts} below the prefix")
            if ts in et.entries:
                self._fail(f"ET[{core}] committed epoch {ts} still live")

    def _check_mc(self, mc) -> None:
        if len(mc.wpq) > mc.wpq.capacity:
            self._fail(f"MC[{mc.index}] WPQ over capacity")
        rt = mc.recovery_table
        if rt is not None:
            if len(rt) > rt.capacity:
                self._fail(f"MC[{mc.index}] RT over capacity: {len(rt)}")
            self._check_rt_vs_ets(mc, rt)

    def _check_rt_vs_ets(self, mc, rt) -> None:
        """No RT record may belong to an epoch its ET has retired.

        The epoch table finalizes a commit only after the controller
        ACKed the commit message, and the controller deletes the epoch's
        records before ACKing -- so a retired epoch with surviving records
        means the protocol leaked recovery state."""
        for record in list(rt._undo.values()) + list(rt._delay):
            path = self.machine.paths[record.core]
            if not hasattr(path, "et"):
                continue
            if path.et.is_committed(record.epoch_ts):
                self._fail(
                    f"MC[{mc.index}] RT holds a record of committed epoch "
                    f"({record.core}, {record.epoch_ts}) on line "
                    f"{record.line:#x}"
                )


def validate_run(machine: Machine, programs, period_cycles: int = 300):
    """Run ``programs`` on ``machine`` with invariants checked throughout.

    Returns the run result; raises :class:`InvariantViolation` on any
    breach (including one final check after the drain).
    """
    monitor = InvariantMonitor(machine, period_cycles)
    monitor.arm()
    result = machine.run(programs)
    monitor.check()
    return result


__all__ = ["InvariantMonitor", "InvariantViolation", "validate_run"]
