"""Reference transactional scenarios for the tx layer.

Used by the tests, the benchmarks, and the examples:

- :func:`bank_workload` -- the classic atomicity scenario: threads move
  money between accounts under a global lock; every crash must recover
  to a state where no transfer is half-applied.
- :func:`adversarial_workload` -- a placement-controlled scenario that
  maximizes the window in which a later transaction's commit record can
  race ahead of an earlier one's: thread 0's transaction (and commit
  cell) live on a jammed controller while thread 1 commits to the idle
  one.  Ordering-preserving hardware closes the window; the
  ``ASAP_NO_UNDO`` ablation does not.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    PMAllocator,
    Program,
    Release,
    Store,
)
from repro.tx.undolog import DurabilityMode, PVar, TransactionManager


def bank_workload(
    heap: PMAllocator,
    mode: DurabilityMode,
    num_threads: int = 2,
    txs_per_thread: int = 12,
    accounts: int = 6,
    seed: int = 1,
) -> Tuple[List[Program], List[TransactionManager], List[PVar]]:
    """Random transfers between accounts under one global lock."""
    lock = heap.alloc_lock()
    shared: Dict[str, object] = {}
    pvars = [PVar(f"acct{i}", heap.alloc_lines(1)) for i in range(accounts)]
    managers = [
        TransactionManager(heap, t, shared, mode=mode)
        for t in range(num_threads)
    ]
    programs = []
    for thread in range(num_threads):
        rng = random.Random(seed * 97 + thread)

        def program(thread=thread, rng=rng):
            manager = managers[thread]
            for _ in range(txs_per_thread):
                yield Compute(rng.randrange(50, 200))
                yield Acquire(lock)
                src, dst = rng.sample(range(len(pvars)), 2)
                amount = rng.randrange(1, 10)
                balance_src = shared.get(pvars[src].name, 100)
                balance_dst = shared.get(pvars[dst].name, 100)
                yield Load(pvars[src].addr, 8)
                yield Load(pvars[dst].addr, 8)
                yield from manager.transaction([
                    (pvars[src], balance_src - amount),
                    (pvars[dst], balance_dst + amount),
                ])
                yield Release(lock)

        programs.append(program())
    return programs, managers, pvars


def _mc_lines(base: int, mc: int, count: int, num_mcs: int = 2) -> List[int]:
    out, addr = [], base
    while len(out) < count:
        if (addr // 256) % num_mcs == mc:
            out.append(addr)
        addr += 64
    return out


def adversarial_workload(
    heap: PMAllocator, mode: DurabilityMode
) -> Tuple[List[Program], List[TransactionManager], List[PVar]]:
    """Jammed-controller scenario with overlapping transactions."""
    lock = heap.alloc_lock()
    shared: Dict[str, object] = {}
    chunk = heap.alloc(96 * 1024, align=256)
    mc0 = _mc_lines(chunk, 0, 80)
    mc1 = _mc_lines(chunk + 64 * 1024, 1, 16)
    var_x = PVar("x", mc0[0])
    var_y = PVar("y", mc1[0])
    manager0 = TransactionManager(
        heap, 0, shared, mode=mode, log_lines=8,
        log_base=mc0[2], commit_cell=mc0[1],
    )
    manager1 = TransactionManager(
        heap, 1, shared, mode=mode, log_lines=8,
        log_base=mc1[2], commit_cell=mc1[1],
    )
    jam = mc0[20:60]

    def thread0():
        yield Acquire(lock)
        for addr in jam:  # jam MC0 inside the critical section
            yield Store(addr, 64)
        yield from manager0.transaction([(var_x, 111)])
        yield Release(lock)
        yield Compute(3000)
        yield DFence()

    def thread1():
        yield Compute(40)
        yield Acquire(lock)
        yield Load(var_x.addr, 8)
        yield from manager1.transaction([(var_x, 222), (var_y, 333)])
        yield Release(lock)
        yield DFence()

    return [thread0(), thread1()], [manager0, manager1], [var_x, var_y]


__all__ = ["adversarial_workload", "bank_workload"]
