"""Software atomicity on top of ASAP's ordering primitives.

The paper is explicit that ASAP provides *ordering*, not atomicity, and
that "if applications do require atomicity, ASAP can be coupled with any
techniques such as shadow paging or software transactions" (Section I).
This package is that coupling: a software undo-log transaction layer
written against the simulator's PMem API, plus the recovery procedure
that replays a crash image back to an atomic state.

Two durability modes demonstrate what hardware ordering buys:

- ``DFENCE`` -- the classic PMDK discipline: the commit record is made
  durable (dfence) before the transaction's effects can be observed by
  the next lock holder.  Correct on every hardware model.
- ``ORDERED`` -- the commit record is merely *ordered* (ofence) and the
  lock is released immediately; cross-thread persist ordering
  (acquire/release dependences) guarantees that if a later transaction's
  commit record survived a crash, so did every one it depended on.
  Faster -- it removes one dfence per transaction -- but only correct on
  ordering-preserving hardware: the ``ASAP_NO_UNDO`` ablation breaks it,
  and the atomicity checker catches that.
"""

from repro.tx.undolog import (
    DurabilityMode,
    PVar,
    TransactionManager,
    TxRecord,
)
from repro.tx.recovery import (
    AtomicityReport,
    TxRecovery,
    check_atomicity,
    recover,
)

__all__ = [
    "AtomicityReport",
    "DurabilityMode",
    "PVar",
    "TransactionManager",
    "TxRecord",
    "TxRecovery",
    "check_atomicity",
    "recover",
]
