"""Undo-log transactions over the PMem API.

A :class:`TransactionManager` is per-thread.  Each transaction:

1. appends one undo record per written variable to the thread's log
   region (payload: transaction id, variable address, old value),
2. ``ofence`` -- undo records ordered before the data they guard,
3. applies the data writes,
4. publishes the commit record (the thread's commit cell is overwritten
   with the new transaction sequence number),
5. makes it durable (``DFENCE`` mode) or merely ordered (``ORDERED``
   mode) before the caller releases its lock.

The payloads carry real Python values, so a crash image can be decoded
back into application state by :mod:`repro.tx.recovery`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.api import DFence, OFence, Op, PMAllocator, Store

LINE = 64


@dataclass(frozen=True)
class PVar:
    """A persistent 8-byte variable (one per cache line for clarity)."""

    name: str
    addr: int


@dataclass(frozen=True)
class UndoPayload:
    """What an undo-log record stores.

    Carries the owning thread and per-thread sequence number so recovery
    can decide committed-ness from the commit cells alone -- the log is
    self-contained, as a real implementation's would be.
    """

    tx_id: int
    thread: int
    tx_seq: int
    var: str
    old_value: object


@dataclass(frozen=True)
class DataPayload:
    """What a data write stores."""

    tx_id: int
    var: str
    value: object


@dataclass(frozen=True)
class CommitPayload:
    """What the per-thread commit cell stores."""

    thread: int
    tx_seq: int
    tx_id: int


class DurabilityMode(enum.Enum):
    #: commit record durable (dfence) before the transaction "returns".
    DFENCE = "dfence"
    #: commit record only ordered; correctness relies on the hardware
    #: preserving cross-thread persist ordering.
    ORDERED = "ordered"


@dataclass
class TxRecord:
    """Execution-side metadata for one transaction (checker input)."""

    tx_id: int
    thread: int
    tx_seq: int  # per-thread sequence, 1-based
    writes: List[Tuple[str, object, object]]  # (var, old, new)
    serial: int  # global serialization index (lock order)


_GLOBAL_TX_IDS = itertools.count(1)
_GLOBAL_SERIAL = itertools.count(1)


class TransactionManager:
    """Per-thread undo-log transaction machinery.

    The manager owns a log region (``log_lines`` cache lines, used round
    robin) and a commit cell.  It tracks the current value of every
    :class:`PVar` it has ever written, which is the application's shadow
    state (the "volatile copy" a real program would have in registers).
    """

    def __init__(
        self,
        heap: PMAllocator,
        thread: int,
        shared_state: Dict[str, object],
        mode: DurabilityMode = DurabilityMode.DFENCE,
        log_lines: int = 16,
        log_base: Optional[int] = None,
        commit_cell: Optional[int] = None,
    ) -> None:
        self.thread = thread
        self.mode = mode
        self.log_base = log_base if log_base is not None else heap.alloc_lines(log_lines)
        self.log_lines = log_lines
        self.commit_cell = (
            commit_cell if commit_cell is not None else heap.alloc_lines(1)
        )
        #: shared volatile view of variable values (mutated under locks).
        self.state = shared_state
        self._log_cursor = 0
        self._tx_seq = 0
        self.records: List[TxRecord] = []

    def transaction(
        self, writes: List[Tuple[PVar, object]]
    ) -> Iterator[Op]:
        """Yield the ops of one transaction writing ``writes``.

        Must be executed while holding whatever lock protects the
        variables (the manager mutates the shared volatile state as it
        builds the ops, exactly like a real program would).
        """
        if not writes:
            return
        tx_id = next(_GLOBAL_TX_IDS)
        self._tx_seq += 1
        record = TxRecord(
            tx_id=tx_id,
            thread=self.thread,
            tx_seq=self._tx_seq,
            writes=[],
            serial=next(_GLOBAL_SERIAL),
        )
        # Register the record *before* yielding any op: the commit store
        # can become durable while this generator is still suspended at
        # the final fence, and the atomicity checker must know about the
        # transaction by then.
        for var, new_value in writes:
            record.writes.append((var.name, self.state.get(var.name), new_value))
        self.records.append(record)

        # 1. undo records, one line each.
        for (var, _new), (_name, old_value, _n) in zip(writes, record.writes):
            slot = self.log_base + (self._log_cursor % self.log_lines) * LINE
            self._log_cursor += 1
            yield Store(
                slot, 32,
                payload=UndoPayload(tx_id=tx_id, thread=self.thread,
                                    tx_seq=self._tx_seq, var=var.name,
                                    old_value=old_value),
            )
        # 2. log before data.
        yield OFence()
        # 3. the data writes.
        for var, new_value in writes:
            self.state[var.name] = new_value
            yield Store(
                var.addr, 8,
                payload=DataPayload(tx_id=tx_id, var=var.name,
                                    value=new_value),
            )
        # 4. data before commit record.
        yield OFence()
        yield Store(
            self.commit_cell, 8,
            payload=CommitPayload(thread=self.thread, tx_seq=self._tx_seq,
                                  tx_id=tx_id),
        )
        # 5. durability policy.
        if self.mode is DurabilityMode.DFENCE:
            yield DFence()
        else:
            yield OFence()


__all__ = [
    "CommitPayload",
    "DataPayload",
    "DurabilityMode",
    "PVar",
    "TransactionManager",
    "TxRecord",
    "UndoPayload",
]
