"""Software recovery and the transaction-atomicity checker.

:func:`recover` is the procedure a real system would run after a crash:

1. read every thread's commit cell -- the surviving value names the last
   transaction that thread committed;
2. scan the surviving undo-log records; any record belonging to a
   transaction *newer* than its thread's committed sequence is an
   aborted in-flight transaction: restore the old value it guards;
3. the variables now hold an atomic state.

:func:`check_atomicity` then adjudicates that state against the
execution's transaction records: the set of committed transactions must
be a prefix of each thread's sequence *and* closed under the global
serialization order (a transaction cannot be committed if one it
observed is not), and every variable must hold exactly the value produced
by replaying the committed transactions in serialization order.

The checker is hardware-agnostic; the interesting experiments feed it
crash states from different models.  On ordering-preserving hardware
(baseline, HOPS, ASAP, eADR) both durability modes always pass.  With
``ORDERED`` commits on the ``ASAP_NO_UNDO`` ablation the serialization
closure can break -- a later transaction's commit record outlives an
earlier one's -- which the checker reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.crash import CrashState
from repro.tx.undolog import (
    CommitPayload,
    DataPayload,
    PVar,
    TransactionManager,
    TxRecord,
    UndoPayload,
)

LINE = 64


@dataclass
class TxRecovery:
    """Outcome of the software recovery procedure."""

    #: thread -> last committed per-thread transaction sequence.
    committed_seq: Dict[int, int]
    #: variable name -> recovered value (after undo replay).
    values: Dict[str, object]
    #: undo records that were applied (aborted transactions).
    undone: List[UndoPayload] = field(default_factory=list)


def recover(
    state: CrashState,
    managers: Iterable[TransactionManager],
    variables: Iterable[PVar],
) -> TxRecovery:
    """Run the undo-log recovery procedure against a crash image."""
    managers = list(managers)
    committed_seq: Dict[int, int] = {}
    for manager in managers:
        payload = state.surviving_payload(manager.commit_cell)
        if isinstance(payload, CommitPayload):
            committed_seq[manager.thread] = payload.tx_seq
        else:
            committed_seq[manager.thread] = 0

    # Raw surviving variable values (may include in-flight writes).
    values: Dict[str, object] = {}
    for var in variables:
        payload = state.surviving_payload(var.addr)
        if isinstance(payload, DataPayload):
            values[var.name] = payload.value
        elif payload is not None:
            values[var.name] = payload

    # Undo every surviving log record of an uncommitted transaction.
    # When several uncommitted transactions touched the same variable
    # (possible when commit records lag behind lock hand-offs), the undos
    # must apply newest-first so the variable lands on the oldest
    # pre-transaction value; transaction ids are globally monotone and
    # serve as the timestamp a real log would carry.
    undone: List[UndoPayload] = []
    for manager in managers:
        for index in range(manager.log_lines):
            payload = state.surviving_payload(manager.log_base + index * LINE)
            if not isinstance(payload, UndoPayload):
                continue
            if payload.tx_seq > committed_seq.get(payload.thread, 0):
                undone.append(payload)
    undone.sort(key=lambda p: p.tx_id, reverse=True)
    for payload in undone:
        values[payload.var] = payload.old_value

    return TxRecovery(
        committed_seq=committed_seq, values=values, undone=undone
    )


@dataclass
class AtomicityReport:
    atomic: bool
    problems: List[str] = field(default_factory=list)
    committed: List[TxRecord] = field(default_factory=list)
    expected: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        if self.atomic:
            return (
                f"atomic: {len(self.committed)} committed transactions, "
                "recovered state matches replay"
            )
        return "NOT ATOMIC:\n" + "\n".join(f"  {p}" for p in self.problems)


def check_atomicity(
    recovery: TxRecovery,
    managers: Iterable[TransactionManager],
    initial: Optional[Dict[str, object]] = None,
) -> AtomicityReport:
    """Validate a recovered state against the execution's records."""
    managers = list(managers)
    problems: List[str] = []

    all_records: List[TxRecord] = []
    for manager in managers:
        all_records.extend(manager.records)
    all_records.sort(key=lambda r: r.serial)

    committed = [
        r for r in all_records
        if r.tx_seq <= recovery.committed_seq.get(r.thread, 0)
    ]

    # 1. per-thread prefix property (commit cells are monotone, so this
    # can only fail if the harness mis-recorded something).
    for manager in managers:
        seqs = sorted(
            r.tx_seq for r in committed if r.thread == manager.thread
        )
        if seqs != list(range(1, len(seqs) + 1)):
            problems.append(
                f"thread {manager.thread}: committed sequences {seqs} are "
                "not a prefix"
            )

    # 2. serialization closure: a committed transaction must not have
    # observed (executed after, under the same locks) an uncommitted one
    # that wrote any variable it read or overwrote.  With a single global
    # lock the check reduces to: the committed set is a prefix of the
    # serial order restricted to each variable's writers.
    committed_serials = {r.serial for r in committed}
    last_committed_serial = max(committed_serials, default=0)
    for record in all_records:
        if record.serial < last_committed_serial and (
            record.serial not in committed_serials
        ):
            # an earlier transaction is missing while a later one
            # committed: atomicity of the *history* is broken unless they
            # touched disjoint variables ever after; report precisely.
            later_committed = [
                c for c in committed if c.serial > record.serial
            ]
            touched = {var for var, _old, _new in record.writes}
            overlap = [
                c.tx_id for c in later_committed
                if touched & {v for v, _o, _n in c.writes}
            ]
            if overlap:
                problems.append(
                    f"tx {record.tx_id} (serial {record.serial}) is not "
                    f"committed but later transactions {overlap} touching "
                    "the same variables are -- the commit order leaked "
                    "ahead of durability"
                )

    # 3. value check: replay the committed transactions in serial order.
    expected: Dict[str, object] = dict(initial or {})
    for record in committed:
        for var, _old, new in record.writes:
            expected[var] = new
    for var, value in expected.items():
        recovered = recovery.values.get(var)
        if recovered != value:
            problems.append(
                f"variable {var!r}: expected {value!r} from committed "
                f"replay, recovered {recovered!r}"
            )
    for var, value in recovery.values.items():
        if var not in expected and value is not None:
            problems.append(
                f"variable {var!r}: uncommitted value {value!r} survived "
                "recovery"
            )

    return AtomicityReport(
        atomic=not problems,
        problems=problems,
        committed=committed,
        expected=expected,
    )


__all__ = ["AtomicityReport", "TxRecovery", "check_atomicity", "recover"]
