"""The litmus corpus: named shapes plus a seeded random family.

Families (2-4 threads, a handful of ops each -- small enough for the
axiomatic checker's explicit enumeration):

- **mp** -- message passing: a writer publishes data + flag under a
  lock, a reader acknowledges.  Variants move/remove the fence and cut
  the publication with a strand.
- **sb** -- store buffering, persistency edition: two symmetric threads
  each write two private lines, with and without an ordering fence.
- **flush** -- single-thread flush placement: where the fence sits
  decides which prefixes survive; includes a same-line overwrite shape.
- **epoch** -- epoch-boundary semantics: an acquire-only boundary (no
  ordering by itself), a strand cut, and a cross-strand same-line
  conflict (strong persist atomicity).
- **rand** -- deterministic seeded random programs over the same
  vocabulary, generated race-contract-safe by construction (private
  lines freely, the shared line only inside the one lock).

``Compute`` staggers in the two-thread shapes make the operational lock
order deterministic (thread 0 wins), so the interesting
publication-order states actually occur operationally instead of being
pure axiomatic slack.

The **smoke** subset (:data:`SMOKE_TESTS`) is the CI gate: small,
pinned, golden-diffed (see ``tests/litmus/golden/``).  Pinned gate
parameters live here too so the CLI default, the golden generator and
the CI step cannot drift apart.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.axiom.program import LitmusHeap, LitmusTest, make_test
from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    NewStrand,
    OFence,
    Op,
    Release,
    Store,
)
from repro.crashtest.points import derive_rng

#: pinned parameters of the golden-diffed smoke gate.
SMOKE_POINTS = 16
GOLDEN_SEED = 7
GOLDEN_RAND_COUNT = 4

#: stagger (cycles) that makes thread 0 win the lock deterministically.
_STAGGER = 3000


def _mp_fenced() -> LitmusTest:
    heap = LitmusHeap()
    data, flag, ack = heap.loc("data"), heap.loc("flag"), heap.loc("ack")
    lock = heap.lock("L")
    return make_test(
        "mp_fenced",
        "mp",
        [
            [
                Acquire(lock),
                Store(data, 8),
                OFence(),
                Store(flag, 8),
                Release(lock),
            ],
            [
                Compute(_STAGGER),
                Acquire(lock),
                Store(ack, 8),
                Release(lock),
                DFence(),
            ],
        ],
        heap,
        description="fenced message passing: ack implies data and flag",
    )


def _mp_unfenced() -> LitmusTest:
    heap = LitmusHeap()
    data, flag, ack = heap.loc("data"), heap.loc("flag"), heap.loc("ack")
    lock = heap.lock("L")
    return make_test(
        "mp_unfenced",
        "mp",
        [
            [
                Acquire(lock),
                Store(data, 8),
                Store(flag, 8),
                Release(lock),
            ],
            [
                Compute(_STAGGER),
                Acquire(lock),
                Store(ack, 8),
                Release(lock),
                DFence(),
            ],
        ],
        heap,
        description="no fence between data and flag: same epoch, but the "
        "release still orders both before the acquirer's ack",
    )


def _mp_strand() -> LitmusTest:
    heap = LitmusHeap()
    data, flag, ack = heap.loc("data"), heap.loc("flag"), heap.loc("ack")
    lock = heap.lock("L")
    return make_test(
        "mp_strand",
        "mp",
        [
            [
                Acquire(lock),
                Store(data, 8),
                NewStrand(),
                Store(flag, 8),
                Release(lock),
            ],
            [
                Compute(_STAGGER),
                Acquire(lock),
                Store(ack, 8),
                Release(lock),
                DFence(),
            ],
        ],
        heap,
        description="a strand cut before flag: the release only orders "
        "the post-strand epoch, so ack no longer implies data",
    )


def _sb_relaxed() -> LitmusTest:
    heap = LitmusHeap()
    a0, b0 = heap.loc("a0"), heap.loc("b0")
    a1, b1 = heap.loc("a1"), heap.loc("b1")
    return make_test(
        "sb_relaxed",
        "sb",
        [
            [Store(a0, 8), Store(b0, 8)],
            [Store(a1, 8), Store(b1, 8)],
        ],
        heap,
        description="no fences anywhere: all 16 survivor combinations "
        "are allowed",
    )


def _sb_fenced() -> LitmusTest:
    heap = LitmusHeap()
    a0, b0 = heap.loc("a0"), heap.loc("b0")
    a1, b1 = heap.loc("a1"), heap.loc("b1")
    return make_test(
        "sb_fenced",
        "sb",
        [
            [Store(a0, 8), OFence(), Store(b0, 8)],
            [Store(a1, 8), OFence(), Store(b1, 8)],
        ],
        heap,
        description="per-thread fences: b_i surviving implies a_i "
        "persisted, threads stay independent",
    )


def _flush_none() -> LitmusTest:
    heap = LitmusHeap()
    x, y = heap.loc("x"), heap.loc("y")
    return make_test(
        "flush_none",
        "flush",
        [[Store(x, 8), Store(y, 8)]],
        heap,
        description="one epoch, two lines: any survivor subset is legal",
    )


def _flush_ofence() -> LitmusTest:
    heap = LitmusHeap()
    x, y = heap.loc("x"), heap.loc("y")
    return make_test(
        "flush_ofence",
        "flush",
        [[Store(x, 8), OFence(), Store(y, 8)]],
        heap,
        description="ofence between the stores: y surviving implies x",
    )


def _flush_dfence() -> LitmusTest:
    heap = LitmusHeap()
    x, y = heap.loc("x"), heap.loc("y")
    return make_test(
        "flush_dfence",
        "flush",
        [[Store(x, 8), DFence(), Store(y, 8)]],
        heap,
        description="dfence between the stores: same crash-state set as "
        "the ofence shape (durability changes timing, not ordering)",
    )


def _flush_same_line() -> LitmusTest:
    heap = LitmusHeap()
    x = heap.loc("x")
    return make_test(
        "flush_same_line",
        "flush",
        [[Store(x, 8), OFence(), Store(x, 8)]],
        heap,
        description="same-line overwrite: any per-line prefix survives",
    )


def _epoch_acquire_gap() -> LitmusTest:
    heap = LitmusHeap()
    x, y, z = heap.loc("x"), heap.loc("y"), heap.loc("z")
    lock = heap.lock("L")
    return make_test(
        "epoch_acquire_gap",
        "epoch",
        [
            [Acquire(lock), Store(x, 8), OFence(), Store(y, 8), Release(lock)],
            [
                Compute(_STAGGER),
                Acquire(lock),
                Store(z, 8),
                Release(lock),
                DFence(),
            ],
        ],
        heap,
        description="acquire boundaries order nothing by themselves, but "
        "the release orders everything sequenced before it",
    )


def _epoch_strand() -> LitmusTest:
    heap = LitmusHeap()
    x, y, z = heap.loc("x"), heap.loc("y"), heap.loc("z")
    return make_test(
        "epoch_strand",
        "epoch",
        [[Store(x, 8), NewStrand(), Store(y, 8), OFence(), Store(z, 8)]],
        heap,
        description="strand cut: z implies y (post-strand fence) but "
        "never x (pre-strand, unordered)",
    )


def _epoch_spa() -> LitmusTest:
    heap = LitmusHeap()
    x, y = heap.loc("x"), heap.loc("y")
    return make_test(
        "epoch_spa",
        "epoch",
        [[Store(x, 8), NewStrand(), Store(x, 8), Store(y, 8)]],
        heap,
        description="cross-strand same-line conflict: strong persist "
        "atomicity orders the second x (and its epoch-mate y) after "
        "the first x",
    )


#: name -> builder for every named (non-random) corpus test.
NAMED_BUILDERS: Dict[str, Callable[[], LitmusTest]] = {
    "mp_fenced": _mp_fenced,
    "mp_unfenced": _mp_unfenced,
    "mp_strand": _mp_strand,
    "sb_relaxed": _sb_relaxed,
    "sb_fenced": _sb_fenced,
    "flush_none": _flush_none,
    "flush_ofence": _flush_ofence,
    "flush_dfence": _flush_dfence,
    "flush_same_line": _flush_same_line,
    "epoch_acquire_gap": _epoch_acquire_gap,
    "epoch_strand": _epoch_strand,
    "epoch_spa": _epoch_spa,
}

#: the blocking CI gate: one representative per family, pinned.
SMOKE_TESTS: List[str] = [
    "mp_fenced",
    "mp_strand",
    "sb_fenced",
    "flush_ofence",
    "epoch_spa",
]


def random_test(seed: int, index: int) -> LitmusTest:
    """One deterministic random litmus test (contract-safe by design)."""
    rng: random.Random = derive_rng(
        {"kind": "litmus-rand", "seed": seed, "index": index}
    )
    heap = LitmusHeap()
    num_threads = rng.choice([2, 2, 3])
    lock = heap.lock("L")
    shared = heap.loc("shared")
    privates: List[List[int]] = [
        [heap.loc(f"t{t}a"), heap.loc(f"t{t}b")] for t in range(num_threads)
    ]
    threads: List[List[Op]] = []
    for t in range(num_threads):
        ops: List[Op] = []
        if t > 0:
            # stagger acquires so the operational lock order is the
            # thread order (keeps the diff focused on persist ordering).
            ops.append(Compute(t * _STAGGER))
        used_strand = False
        budget = rng.randint(3, 5)
        took_lock = False
        while budget > 0:
            kind = rng.random()
            if kind < 0.45:
                ops.append(Store(rng.choice(privates[t]), rng.choice([8, 16])))
            elif kind < 0.6:
                ops.append(OFence())
            elif kind < 0.7:
                ops.append(DFence())
            elif kind < 0.8 and not used_strand:
                ops.append(NewStrand())
                used_strand = True
            elif not took_lock:
                ops.append(Acquire(lock))
                ops.append(Store(shared, 8))
                if rng.random() < 0.5:
                    ops.append(OFence())
                ops.append(Release(lock))
                took_lock = True
            else:
                ops.append(Store(rng.choice(privates[t]), 8))
            budget -= 1
        threads.append(ops)
    return make_test(
        f"rand_s{seed}_{index}",
        "rand",
        threads,
        heap,
        description=f"seeded random shape (seed={seed}, index={index})",
    )


def build_corpus(
    seed: int = GOLDEN_SEED,
    rand_count: int = GOLDEN_RAND_COUNT,
    family: Optional[str] = None,
    names: Optional[List[str]] = None,
) -> List[LitmusTest]:
    """Materialize corpus tests, optionally filtered by family or name."""
    tests = [builder() for builder in NAMED_BUILDERS.values()]
    tests.extend(random_test(seed, index) for index in range(rand_count))
    if family is not None:
        tests = [t for t in tests if t.family == family]
        if not tests:
            raise KeyError(f"no litmus family {family!r}")
    if names is not None:
        by_name = {t.name: t for t in tests}
        missing = [name for name in names if name not in by_name]
        if missing:
            raise KeyError(
                f"unknown litmus test(s) {missing}; available: "
                f"{sorted(by_name)}"
            )
        tests = [by_name[name] for name in names]
    return tests


def smoke_corpus() -> List[LitmusTest]:
    """The pinned CI gate subset."""
    return build_corpus(names=list(SMOKE_TESTS), rand_count=0)


def families() -> List[str]:
    seen: List[str] = []
    for test in build_corpus():
        if test.family not in seen:
            seen.append(test.family)
    return seen


__all__ = [
    "GOLDEN_RAND_COUNT",
    "GOLDEN_SEED",
    "NAMED_BUILDERS",
    "SMOKE_POINTS",
    "SMOKE_TESTS",
    "build_corpus",
    "families",
    "random_test",
    "smoke_corpus",
]
