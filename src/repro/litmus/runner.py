"""Drive a litmus run: axiomatic sets, operational cells, the diff.

For each selected test the runner computes the axiomatic allowed-set
once, then fans one :class:`~repro.litmus.spec.LitmusSpec` per
registered RP model out through the shared experiment machinery
(:class:`~repro.exp.cache.ResultCache` for content-addressed reuse,
:func:`~repro.exp.executors.make_executor` for optional process
parallelism), and classifies the per-cell state diff into a
:class:`~repro.litmus.report.LitmusReport`.

EP-persistency designs are deliberately out of scope: under epoch
persistency the machine inserts *more* ordering (every conflict is a
dependence), so the RP axioms still upper-bound them, but the
too-strong slack would swamp the report.  The gate models are exactly
:data:`repro.core.models.RP_MODELS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.axiom.allowed import allowed_states
from repro.axiom.program import LitmusTest, format_state
from repro.core.models import RP_MODELS, ModelSpec
from repro.exp.cache import ResultCache
from repro.exp.executors import Executor, make_executor
from repro.litmus.report import CellDiff, LitmusReport
from repro.litmus.spec import (
    LitmusCellResult,
    LitmusSpec,
    execute_litmus_spec,
)
from repro.sim.config import MachineConfig


@dataclass
class LitmusRunOptions:
    """Knobs of one litmus run (defaults are the CI full-run shape)."""

    models: List[ModelSpec] = field(default_factory=lambda: list(RP_MODELS))
    points: int = 24
    seed: int = 7
    machine: MachineConfig = field(default_factory=MachineConfig)
    jobs: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None
    #: overrides ``jobs`` when set -- e.g. a
    #: :class:`repro.fabric.FabricExecutor` to run the enumeration on
    #: the fault-tolerant fabric.
    executor: Optional[Executor] = None


def run_litmus(
    tests: List[LitmusTest],
    options: Optional[LitmusRunOptions] = None,
) -> LitmusReport:
    """Cross-validate ``tests`` under every model in ``options.models``."""
    options = options or LitmusRunOptions()

    allowed: Dict[str, List[str]] = {}
    executions: Dict[str, int] = {}
    truncated: List[str] = []
    for test in tests:
        aset = allowed_states(test)
        allowed[test.name] = aset.formatted()
        executions[test.name] = aset.executions
        if aset.truncated:
            truncated.append(test.name)

    specs = [
        LitmusSpec(
            test,
            model,
            machine=options.machine,
            points=options.points,
            seed=options.seed,
        )
        for test in tests
        for model in options.models
    ]

    cache = (
        ResultCache(Path(options.cache_dir))
        if options.cache_dir is not None
        else None
    )
    results: List[Optional[LitmusCellResult]] = [None] * len(specs)
    missing: List[int] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[index] = hit
        else:
            missing.append(index)
    if missing:
        executor = options.executor or make_executor(options.jobs)
        fresh = executor.map(
            execute_litmus_spec, [specs[index] for index in missing]
        )
        for index, result in zip(missing, fresh):
            results[index] = result
            if cache is not None:
                cache.put(specs[index], result)

    by_test = {test.name: test for test in tests}
    cells: List[CellDiff] = []
    for result in results:
        assert result is not None
        allowed_set = set(allowed[result.test])
        observed_set = set(result.states)
        cells.append(
            CellDiff(
                test=result.test,
                family=result.family,
                model=result.model,
                observed=tuple(sorted(observed_set)),
                forbidden=tuple(sorted(observed_set - allowed_set)),
                unobserved=tuple(sorted(allowed_set - observed_set)),
                first_cycle=dict(result.first_cycle),
            )
        )
    assert len(by_test) == len(tests), "duplicate test names in selection"
    return LitmusReport(
        points=options.points,
        seed=options.seed,
        models=[model.name for model in options.models],
        allowed=allowed,
        executions=executions,
        truncated=truncated,
        cells=cells,
    )


__all__ = ["LitmusRunOptions", "run_litmus", "format_state"]
