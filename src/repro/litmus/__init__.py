"""`repro.litmus` -- litmus generator/runner cross-validating the simulator.

The operational half of the cross-validation: build small litmus
programs (:mod:`repro.litmus.corpus`), run them through the
discrete-event simulator under every registered RP model while pulling
the plug at enumerated crash points (:mod:`repro.litmus.spec`), and
diff the observed crash states against the axiomatic allowed-sets of
:mod:`repro.axiom` (:mod:`repro.litmus.runner`,
:mod:`repro.litmus.report`).

CLI entry point: ``repro litmus`` (see :mod:`repro.cli`).
"""

from repro.litmus.corpus import (
    GOLDEN_RAND_COUNT,
    GOLDEN_SEED,
    NAMED_BUILDERS,
    SMOKE_POINTS,
    SMOKE_TESTS,
    build_corpus,
    families,
    random_test,
    smoke_corpus,
)
from repro.litmus.report import (
    CellDiff,
    FORBIDDEN_RULE,
    LITMUS_REPORT_SCHEMA,
    LitmusReport,
    UNOBSERVED_RULE,
)
from repro.litmus.runner import LitmusRunOptions, run_litmus
from repro.litmus.spec import (
    LITMUS_SCHEMA_VERSION,
    LitmusCellResult,
    LitmusSpec,
    execute_litmus_spec,
)

__all__ = [
    "CellDiff",
    "FORBIDDEN_RULE",
    "GOLDEN_RAND_COUNT",
    "GOLDEN_SEED",
    "LITMUS_REPORT_SCHEMA",
    "LITMUS_SCHEMA_VERSION",
    "LitmusCellResult",
    "LitmusReport",
    "LitmusRunOptions",
    "LitmusSpec",
    "NAMED_BUILDERS",
    "SMOKE_POINTS",
    "SMOKE_TESTS",
    "UNOBSERVED_RULE",
    "build_corpus",
    "execute_litmus_spec",
    "families",
    "random_test",
    "run_litmus",
    "smoke_corpus",
]
