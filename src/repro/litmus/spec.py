"""Fully-specified litmus cells: one (test, model) operational run.

Mirrors :class:`repro.exp.spec.RunSpec` -- a frozen, content-addressed,
picklable description of everything that determines one result -- so
litmus cells reuse the existing :class:`repro.exp.cache.ResultCache`
and executors unchanged.  Ops travel in their
:mod:`repro.trace.ops` list encoding (JSON-friendly and hashable), so
the spec's identity covers the exact program, not just its name.

Executing a cell:

1. trace one full reference run to learn the drain horizon and the
   epoch-commit cycles (:func:`repro.crashtest.points
   .trace_reference_programs`);
2. enumerate crash cycles (commit boundaries + stratified random,
   seeded from the spec's content hash), plus cycle 1 and one
   past-drain cycle for the pristine and fully-drained images;
3. crash a fresh simulation at each cycle
   (:func:`repro.core.crash.run_and_crash`) and canonicalize the
   surviving media image into a symbolic state via the stores' payload
   labels.

The result records each distinct observed state with the first crash
cycle that exposed it, which is what the disagreement report prints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.axiom.program import INIT, LINE, LitmusTest, NVMState, format_state
from repro.core.api import Op
from repro.core.crash import run_and_crash
from repro.core.models import ModelSpec, resolve_model
from repro.crashtest.points import (
    enumerate_crash_points,
    trace_reference_programs,
)
from repro.exp.spec import _jsonable
from repro.sim.config import MachineConfig, RunConfig
from repro.trace.ops import decode_op, encode_op

#: bump to invalidate cached litmus results on semantic change.
LITMUS_SCHEMA_VERSION = 1

#: one op in trace encoding, as a hashable tuple.
EncodedOp = Tuple[Any, ...]


def encode_threads(test: LitmusTest) -> Tuple[Tuple[EncodedOp, ...], ...]:
    return tuple(
        tuple(tuple(encode_op(op)) for op in ops) for ops in test.threads
    )


@dataclass(frozen=True)
class LitmusSpec:
    """One (litmus test, model) operational cell."""

    test: str
    family: str
    threads: Tuple[Tuple[EncodedOp, ...], ...]
    locations: Tuple[Tuple[str, int], ...]
    model: ModelSpec
    machine: MachineConfig
    points: int = 24
    seed: int = 7

    def __init__(
        self,
        test: Union[str, LitmusTest],
        model: Union[str, ModelSpec],
        machine: Optional[MachineConfig] = None,
        points: int = 24,
        seed: int = 7,
    ) -> None:
        if not isinstance(test, LitmusTest):
            raise TypeError(
                "LitmusSpec wants the LitmusTest itself (its ops are part "
                f"of the cell identity), got {test!r}"
            )
        object.__setattr__(self, "test", test.name)
        object.__setattr__(self, "family", test.family)
        object.__setattr__(self, "threads", encode_threads(test))
        object.__setattr__(self, "locations", tuple(test.locations))
        object.__setattr__(self, "model", resolve_model(model))
        object.__setattr__(self, "machine", machine or MachineConfig())
        object.__setattr__(self, "points", int(points))
        object.__setattr__(self, "seed", int(seed))

    # -- construction helpers ----------------------------------------------

    def programs(self) -> List[List[Op]]:
        return [
            [decode_op(list(encoded)) for encoded in ops]
            for ops in self.threads
        ]

    def run_config(self) -> RunConfig:
        return self.model.run_config(seed=self.seed)

    # -- identity ------------------------------------------------------------

    def describe(self) -> dict:
        return {
            "kind": "litmus-cell",
            "schema": LITMUS_SCHEMA_VERSION,
            "test": self.test,
            "family": self.family,
            "threads": _jsonable(self.threads),
            "locations": _jsonable(self.locations),
            "hardware": self.model.hardware.value,
            "persistency": self.model.persistency.value,
            "machine": _jsonable(self.machine),
            "points": self.points,
            "seed": self.seed,
        }

    def key(self) -> str:
        payload = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        return f"litmus/{self.test}/{self.model.name}@p{self.points}"

    # -- execution -----------------------------------------------------------

    def execute(self) -> "LitmusCellResult":
        run_config = self.run_config()
        programs = self.programs()
        reference = trace_reference_programs(
            self.machine, run_config, programs
        )
        cycles = set(
            enumerate_crash_points(reference, self.points, self.describe())
        )
        cycles.add(1)  # the pristine image
        cycles.add(reference.drain_cycles + 2)  # the fully-drained image
        # The machine keys EpochLog/media by line-aligned *address*.
        line_symbols = {
            (addr // LINE) * LINE: symbol for symbol, addr in self.locations
        }
        first_cycle: Dict[str, int] = {}
        for cycle in sorted(cycles):
            crash = run_and_crash(
                self.machine, run_config, [iter(ops) for ops in self.programs()],
                cycle,
            )
            values: Dict[str, str] = {}
            for line, symbol in line_symbols.items():
                payload = crash.surviving_payload(line, INIT)
                values[symbol] = payload if isinstance(payload, str) else INIT
            state: NVMState = tuple(sorted(values.items()))
            first_cycle.setdefault(format_state(state), cycle)
        return LitmusCellResult(
            test=self.test,
            family=self.family,
            model=self.model.name,
            states=tuple(sorted(first_cycle)),
            first_cycle=dict(first_cycle),
            points_run=len(cycles),
            drain_cycles=reference.drain_cycles,
            commit_points=len(reference.commit_cycles),
        )


@dataclass(frozen=True)
class LitmusCellResult:
    """Observed crash states of one operational cell (picklable)."""

    test: str
    family: str
    model: str
    #: formatted canonical states, sorted.
    states: Tuple[str, ...]
    #: state -> first crash cycle that exposed it.
    first_cycle: Dict[str, int]
    points_run: int
    drain_cycles: int
    commit_points: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "test": self.test,
            "family": self.family,
            "model": self.model,
            "states": list(self.states),
            "first_cycle": {
                state: self.first_cycle[state] for state in self.states
            },
            "points_run": self.points_run,
            "drain_cycles": self.drain_cycles,
            "commit_points": self.commit_points,
        }


def execute_litmus_spec(spec: LitmusSpec) -> LitmusCellResult:
    """Module-level trampoline for process-pool executors."""
    return spec.execute()


def _check_fields() -> None:
    # dataclasses with a custom __init__ must keep field order in sync.
    expected = (
        "test", "family", "threads", "locations", "model", "machine",
        "points", "seed",
    )
    actual = tuple(f.name for f in dataclasses.fields(LitmusSpec))
    assert actual == expected, actual


_check_fields()


__all__ = [
    "LITMUS_SCHEMA_VERSION",
    "LitmusCellResult",
    "LitmusSpec",
    "encode_threads",
    "execute_litmus_spec",
]
