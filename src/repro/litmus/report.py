"""Diff classification and rendering for litmus cross-validation.

Per (test, model) cell, the operational state set is compared against
the axiomatic allowed-set:

- **forbidden** (observed but not allowed) -- *operational-too-weak*:
  the simulator reached a state the formal model forbids.  This is a
  simulator bug (or a hole in the axioms); it fails the gate.
- **unobserved** (allowed but not observed) -- *operational-too-strong*:
  the simulator's single timing/synchronization path did not exhibit a
  formally-allowed behavior.  Expected in bounded runs (the axiomatic
  set unions over all lock orders; a design may simply be conservative);
  reported for triage, never fatal by default.

Renderers: text, canonical JSON, and SARIF 2.1.0 through the shared
:mod:`repro.report` path (rule LT001 = forbidden state, error; LT002 =
unobserved state, note).  The disagreement document is golden-diffed in
CI, so its JSON is canonical: sorted keys, sorted states, no volatile
fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.report import SarifResult, SarifRule, make_sarif

LITMUS_TOOL_NAME = "repro-litmus"
LITMUS_TOOL_VERSION = "1.0.0"
LITMUS_REPORT_SCHEMA = 1

#: artifact every SARIF result points at (litmus programs are built
#: here, not read from workload sources).
_CORPUS_URI = "src/repro/litmus/corpus.py"

FORBIDDEN_RULE = SarifRule(
    id="LT001",
    name="forbidden-state",
    summary="operational simulator reached a state the axiomatic "
    "Px86/PTSO model forbids (operational-too-weak)",
    level="error",
    help_text="a reachable forbidden crash state means the simulator "
    "under-enforces persist ordering; minimize with repro crashtest "
    "and fix the model (see docs/litmus.md triage)",
)

UNOBSERVED_RULE = SarifRule(
    id="LT002",
    name="unobserved-state",
    summary="axiomatically-allowed crash state not observed "
    "operationally (operational-too-strong)",
    level="note",
    help_text="bounded crash-point sampling and the simulator's single "
    "synchronization order cannot exhibit every allowed behavior; "
    "confirm the gap is benign per docs/litmus.md",
)


@dataclass(frozen=True)
class CellDiff:
    """Operational vs axiomatic comparison of one (test, model) cell."""

    test: str
    family: str
    model: str
    observed: Tuple[str, ...]
    #: observed but axiomatically forbidden (simulator bug).
    forbidden: Tuple[str, ...]
    #: allowed but never observed (conservatism / sampling slack).
    unobserved: Tuple[str, ...]
    #: observed state -> first crash cycle that exposed it.
    first_cycle: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.forbidden

    @property
    def clean(self) -> bool:
        return not self.forbidden and not self.unobserved

    def to_dict(self) -> Dict[str, Any]:
        return {
            "test": self.test,
            "family": self.family,
            "model": self.model,
            "observed": list(self.observed),
            "forbidden": list(self.forbidden),
            "unobserved": list(self.unobserved),
        }


@dataclass
class LitmusReport:
    """Everything one litmus run produced, ready to render."""

    points: int
    seed: int
    models: List[str]
    #: test -> sorted formatted allowed states.
    allowed: Dict[str, List[str]]
    #: test -> number of candidate executions explored.
    executions: Dict[str, int]
    #: tests whose enumeration hit a cap (allowed set may be partial).
    truncated: List[str]
    cells: List[CellDiff]

    def forbidden_count(self) -> int:
        return sum(len(cell.forbidden) for cell in self.cells)

    def unobserved_count(self) -> int:
        return sum(len(cell.unobserved) for cell in self.cells)

    def ok(self, fail_on: str = "forbidden") -> bool:
        """Gate verdict.  ``fail_on``: forbidden | any | never."""
        if fail_on == "never":
            return True
        if fail_on == "forbidden":
            return self.forbidden_count() == 0
        if fail_on == "any":
            return self.forbidden_count() == 0 and self.unobserved_count() == 0
        raise ValueError(
            f"unknown fail_on {fail_on!r}; expected forbidden|any|never"
        )

    def sorted_cells(self) -> List[CellDiff]:
        return sorted(self.cells, key=lambda c: (c.test, c.model))

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "litmus-report",
            "schema": LITMUS_REPORT_SCHEMA,
            "tool": LITMUS_TOOL_NAME,
            "version": LITMUS_TOOL_VERSION,
            "points": self.points,
            "seed": self.seed,
            "models": list(self.models),
            "allowed": {
                test: list(states)
                for test, states in sorted(self.allowed.items())
            },
            "executions": {
                test: self.executions[test]
                for test in sorted(self.executions)
            },
            "truncated": sorted(self.truncated),
            "cells": [cell.to_dict() for cell in self.sorted_cells()],
            "totals": {
                "cells": len(self.cells),
                "forbidden": self.forbidden_count(),
                "unobserved": self.unobserved_count(),
            },
        }

    def disagreements_doc(self) -> Dict[str, Any]:
        """The golden-diffed disagreement document: canonical, minimal.

        Every cell appears (even clean ones), so a *new* disagreement in
        a previously clean cell changes the document and fails the
        byte-for-byte CI diff.
        """
        cells: Dict[str, Dict[str, List[str]]] = {}
        for cell in self.sorted_cells():
            cells[f"{cell.test}/{cell.model}"] = {
                "forbidden": list(cell.forbidden),
                "unobserved": list(cell.unobserved),
            }
        return {
            "kind": "litmus-disagreements",
            "schema": LITMUS_REPORT_SCHEMA,
            "points": self.points,
            "seed": self.seed,
            "models": list(self.models),
            "cells": cells,
        }

    def render_text(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for cell in self.sorted_cells():
            n_allowed = len(self.allowed.get(cell.test, []))
            status = "OK" if cell.ok else "FORBIDDEN-STATE"
            lines.append(
                f"{cell.test}/{cell.model}: {status} "
                f"({len(cell.observed)} observed, {n_allowed} allowed, "
                f"{len(cell.unobserved)} unobserved)"
            )
            for state in cell.forbidden:
                cycle = cell.first_cycle.get(state)
                at = f" (first at cycle {cycle})" if cycle is not None else ""
                lines.append(f"  [ERROR] forbidden state: {state}{at}")
            if verbose:
                for state in cell.unobserved:
                    lines.append(f"  [note] unobserved: {state}")
        for test in sorted(self.truncated):
            lines.append(
                f"warning: {test}: execution enumeration truncated "
                f"(allowed set may be partial)"
            )
        lines.append(
            f"total: {len(self.cells)} cell(s), "
            f"{self.forbidden_count()} forbidden, "
            f"{self.unobserved_count()} unobserved "
            f"(operational-too-strong)"
        )
        return "\n".join(lines)

    def to_sarif(self) -> Dict[str, Any]:
        results: List[SarifResult] = []
        for cell in self.sorted_cells():
            for state in cell.forbidden:
                properties: Dict[str, Any] = {
                    "test": cell.test,
                    "family": cell.family,
                    "model": cell.model,
                    "state": state,
                    "classification": "operational-too-weak",
                }
                cycle = cell.first_cycle.get(state)
                if cycle is not None:
                    properties["firstCrashCycle"] = cycle
                results.append(
                    SarifResult(
                        rule_id=FORBIDDEN_RULE.id,
                        level=FORBIDDEN_RULE.level,
                        message=(
                            f"[{cell.test}/{cell.model}] crash state "
                            f"{state!r} is reachable operationally but "
                            f"forbidden by the axiomatic model"
                        ),
                        uri=_CORPUS_URI,
                        properties=properties,
                    )
                )
            if cell.unobserved:
                results.append(
                    SarifResult(
                        rule_id=UNOBSERVED_RULE.id,
                        level=UNOBSERVED_RULE.level,
                        message=(
                            f"[{cell.test}/{cell.model}] "
                            f"{len(cell.unobserved)} axiomatically-"
                            f"allowed state(s) not observed "
                            f"operationally"
                        ),
                        uri=_CORPUS_URI,
                        properties={
                            "test": cell.test,
                            "family": cell.family,
                            "model": cell.model,
                            "states": list(cell.unobserved),
                            "classification": "operational-too-strong",
                        },
                    )
                )
        return make_sarif(
            LITMUS_TOOL_NAME,
            LITMUS_TOOL_VERSION,
            [FORBIDDEN_RULE, UNOBSERVED_RULE],
            results,
        )


__all__ = [
    "CellDiff",
    "FORBIDDEN_RULE",
    "LITMUS_REPORT_SCHEMA",
    "LITMUS_TOOL_NAME",
    "LITMUS_TOOL_VERSION",
    "LitmusReport",
    "UNOBSERVED_RULE",
]
