"""repro: a reproduction of "ASAP: A Speculative Approach to Persistence".

ASAP (Yadalam, Shah, Yu, Swift -- HPCA 2022) is a persistence architecture
that flushes writes to non-volatile memory eagerly and out of order,
keeping just enough *undo* information at the memory controllers to unwind
speculation if a crash happens.  This package re-implements the entire
evaluated system as a discrete-event simulator:

- the hardware designs (Intel baseline, HOPS, ASAP, eADR/BBB) under both
  epoch and release persistency -- :mod:`repro.core`;
- the substrates they run on (caches, coherence directory, memory
  controllers, WPQs, an Optane-like NVM device) -- :mod:`repro.mem`,
  :mod:`repro.coherence`;
- the workloads of Table III re-implemented against the simulator's
  PMem API -- :mod:`repro.workloads`;
- crash injection plus a machine-checked consistency verifier for the
  paper's Theorem 2 -- :mod:`repro.core.crash`, :mod:`repro.verify`;
- analytical hardware-cost models for Table V -- :mod:`repro.analysis`;
- the experiment engine: plans of content-hashed run specs, serial or
  multi-process execution, deterministic result caching --
  :mod:`repro.exp`.

Quickstart::

    from repro import Machine, MachineConfig, RunConfig, HardwareModel
    from repro.core.api import PMAllocator, Store, OFence, DFence

    config = MachineConfig(num_cores=1)
    run_config = RunConfig(hardware=HardwareModel.ASAP)
    heap = PMAllocator()
    buf = heap.alloc(256)

    def program():
        for i in range(4):
            yield Store(buf + 64 * i, 64)
            yield OFence()
        yield DFence()

    result = Machine(config, run_config).run([program()])
    print(result.runtime_cycles, result.table_vi())
"""

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    PMAllocator,
    Release,
    Store,
)
from repro.core.crash import CrashState, crash_machine, run_and_crash
from repro.core.machine import Machine, RunResult
from repro.core.models import MODEL_REGISTRY, ModelSpec, resolve_model
from repro.exp import ExperimentPlan, ResultCache, RunSpec, run_grid, run_plan
from repro.sim.config import (
    HardwareModel,
    MachineConfig,
    PersistencyModel,
    RunConfig,
    TABLE_II_CONFIG,
)
from repro.verify import check_consistency

__version__ = "1.0.0"

__all__ = [
    "Acquire",
    "Compute",
    "CrashState",
    "DFence",
    "ExperimentPlan",
    "HardwareModel",
    "Load",
    "MODEL_REGISTRY",
    "Machine",
    "MachineConfig",
    "ModelSpec",
    "NewStrand",
    "OFence",
    "PMAllocator",
    "PersistencyModel",
    "Release",
    "ResultCache",
    "RunConfig",
    "RunResult",
    "RunSpec",
    "Store",
    "TABLE_II_CONFIG",
    "__version__",
    "check_consistency",
    "crash_machine",
    "resolve_model",
    "run_and_crash",
    "run_grid",
    "run_plan",
]
