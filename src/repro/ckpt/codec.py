"""Versioned canonical-JSON envelope for simulator checkpoints.

Mirrors the crash-state envelope (:mod:`repro.crashtest.serialize`):
``{"schema": int, "kind": str, "meta": {...}, "state": {...}}`` with
sorted keys, so byte-identical machine state produces byte-identical
files.  Readers validate the kind first (a clearer error than a schema
mismatch when handed the wrong file type), then the schema version, and
tolerate unknown *extra* top-level or meta fields -- a newer writer may
add fields without breaking this reader, but a schema-version bump means
the state layout changed and is rejected outright.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

#: bump when the snapshot layout changes incompatibly.
CKPT_SCHEMA_VERSION = 1
CKPT_KIND = "repro-checkpoint"


def checkpoint_doc(
    meta: Dict[str, Any], state: Dict[str, Any]
) -> Dict[str, Any]:
    """The envelope document for one checkpoint."""
    return {
        "schema": CKPT_SCHEMA_VERSION,
        "kind": CKPT_KIND,
        "meta": dict(meta),
        "state": state,
    }


def dumps_checkpoint(meta: Dict[str, Any], state: Dict[str, Any]) -> str:
    """Serialize to canonical JSON (sorted keys, stable layout)."""
    return json.dumps(checkpoint_doc(meta, state), sort_keys=True, indent=1) + "\n"


def loads_checkpoint(text: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Parse and validate; returns ``(meta, state)``.

    Raises ValueError with a pointed message on the wrong kind or an
    unsupported schema version.  Unknown extra fields are ignored.
    """
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError("not a checkpoint document (expected a JSON object)")
    kind = doc.get("kind")
    if kind != CKPT_KIND:
        raise ValueError(
            f"not a simulator checkpoint (kind={kind!r}, "
            f"expected {CKPT_KIND!r})"
        )
    schema = doc.get("schema")
    if schema != CKPT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported checkpoint schema version {schema!r}; this build "
            f"reads version {CKPT_SCHEMA_VERSION} (re-create the checkpoint "
            f"with `repro ckpt`)"
        )
    meta = doc.get("meta")
    state = doc.get("state")
    if not isinstance(meta, dict) or not isinstance(state, dict):
        raise ValueError("malformed checkpoint: meta/state must be objects")
    return meta, state


def save_checkpoint(
    path: str, meta: Dict[str, Any], state: Dict[str, Any]
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_checkpoint(meta, state))


def load_checkpoint(path: str) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as fh:
        return loads_checkpoint(fh.read())


__all__ = [
    "CKPT_KIND",
    "CKPT_SCHEMA_VERSION",
    "checkpoint_doc",
    "dumps_checkpoint",
    "load_checkpoint",
    "loads_checkpoint",
    "save_checkpoint",
]
