"""High-level checkpoint API: create, inspect, resume.

A checkpoint's ``meta`` records everything needed to rebuild the cell --
workload name, ops per thread, thread count, seed, model name -- so
resuming only needs the checkpoint document.  Programs are *regenerated*
from the workload registry and fast-forwarded by each core's executed-op
count, which replays generator-internal state (including the workload's
PRNG) exactly; the machine state itself comes from the snapshot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.api import PMAllocator, Program
from repro.core.machine import Machine, RunResult
from repro.core.models import ModelSpec, resolve_model
from repro.sim.config import MachineConfig, RunConfig
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class CheckpointCell:
    """One checkpointable simulation cell: everything but the barrier."""

    workload: str
    model: str
    ops_per_thread: Optional[int] = None
    num_threads: Optional[int] = None
    seed: int = 7

    def spec(self) -> ModelSpec:
        return resolve_model(self.model)

    def machine_config(self) -> MachineConfig:
        return MachineConfig()

    def run_config(self) -> RunConfig:
        return self.spec().run_config(seed=self.seed)

    def programs(self) -> List[Program]:
        workload = get_workload(
            self.workload, ops_per_thread=self.ops_per_thread, seed=self.seed
        )
        threads = self.num_threads or self.machine_config().num_cores
        return workload.programs(PMAllocator(), threads)

    def build_machine(self, sinks: Optional[Iterable[object]] = None) -> Machine:
        return Machine(
            self.machine_config(), run_config=self.run_config(), sinks=sinks
        )

    def meta(self, barrier_cycle: int) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "model": self.model,
            "ops_per_thread": self.ops_per_thread,
            "num_threads": self.num_threads,
            "seed": self.seed,
            "barrier_cycle": barrier_cycle,
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "CheckpointCell":
        ops = meta.get("ops_per_thread")
        threads = meta.get("num_threads")
        return cls(
            workload=str(meta["workload"]),
            model=str(meta["model"]),
            ops_per_thread=int(ops) if ops is not None else None,
            num_threads=int(threads) if threads is not None else None,
            seed=int(meta.get("seed", 7)),
        )


def create_checkpoint(
    cell: CheckpointCell,
    barrier_cycle: int,
    sinks: Optional[Iterable[object]] = None,
) -> Optional[Tuple[Dict[str, Any], Dict[str, Any], Machine]]:
    """Run ``cell`` to a quiescent barrier at ``barrier_cycle``.

    Returns ``(meta, state, machine)`` -- the live machine is handed back
    so callers can also continue it in-process (the equivalence tests
    compare exactly that against a resumed copy).  Returns None when the
    run finished before the barrier (nothing left to checkpoint)."""
    machine = cell.build_machine(sinks=sinks)
    if not machine.run_to_barrier(cell.programs(), barrier_cycle):
        return None
    return cell.meta(barrier_cycle), machine.snapshot(), machine


def resume_machine(
    meta: Dict[str, Any],
    state: Dict[str, Any],
    sinks: Optional[Iterable[object]] = None,
) -> Machine:
    """Rebuild a machine from a parsed checkpoint document."""
    cell = CheckpointCell.from_meta(meta)
    return Machine.resume(
        cell.machine_config(),
        cell.run_config(),
        cell.programs(),
        state,
        sinks=sinks,
    )


def run_fingerprint(machine: Machine, result: RunResult) -> str:
    """Digest of everything a finished run observably produced.

    Two runs with equal fingerprints executed the same events, produced
    the same statistics, the same NVM contents, and the same epoch log --
    the equivalence the checkpoint tests assert byte-for-byte."""
    from repro.crashtest.serialize import log_to_dict

    doc = {
        "events_executed": machine.engine.events_executed,
        "now": machine.engine.now,
        "stats": machine.stats.as_dict(),
        "media": [
            sorted(mc.nvm.media.items()) for mc in machine.mcs
        ],
        "log": log_to_dict(machine.log),
        "per_core_runtime": list(result.per_core_runtime),
        "runtime_cycles": result.runtime_cycles,
        "ops_executed": result.ops_executed,
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def describe_checkpoint(
    meta: Dict[str, Any], state: Dict[str, Any]
) -> Dict[str, Any]:
    """Human-oriented summary for ``repro ckpt --inspect``."""
    engine = state.get("engine", {})
    cores = state.get("cores", [])
    return {
        "workload": meta.get("workload"),
        "model": meta.get("model"),
        "seed": meta.get("seed"),
        "barrier_cycle": meta.get("barrier_cycle"),
        "quiesced_at": engine.get("now"),
        "events_executed": engine.get("events_executed"),
        "cores": [
            {
                "index": c.get("index"),
                "ops_executed": c.get("ops_executed"),
                "finished": c.get("finished"),
                "parked": c.get("parked"),
            }
            for c in cores
        ],
        "locks_held": sum(
            1 for entry in state.get("locks", []) if entry[1] is not None
        ),
    }


__all__ = [
    "CheckpointCell",
    "create_checkpoint",
    "describe_checkpoint",
    "resume_machine",
    "run_fingerprint",
]
