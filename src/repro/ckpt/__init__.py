"""Serializable simulator checkpoints.

A checkpoint captures a :class:`repro.core.machine.Machine` at a
*quiescent barrier* (every core parked at an op boundary, event queue
drained) in a versioned canonical-JSON envelope.  Restoring rebuilds an
identical machine: ``(run_to_barrier -> save -> load -> resume ->
continue)`` is event-for-event identical to continuing the original
machine in-process.

Checkpoints serve two consumers:

- the crash-sweep campaign uses them as fast-forward replay anchors
  (skip the shared prefix of a cell's crash points);
- the sampling pipeline (:mod:`repro.sample`) uses the same barrier
  machinery to measure statistics over representative intervals.
"""

from repro.ckpt.codec import (
    CKPT_KIND,
    CKPT_SCHEMA_VERSION,
    checkpoint_doc,
    dumps_checkpoint,
    load_checkpoint,
    loads_checkpoint,
    save_checkpoint,
)
from repro.ckpt.api import (
    CheckpointCell,
    create_checkpoint,
    describe_checkpoint,
    resume_machine,
    run_fingerprint,
)

__all__ = [
    "CKPT_KIND",
    "CKPT_SCHEMA_VERSION",
    "CheckpointCell",
    "checkpoint_doc",
    "create_checkpoint",
    "describe_checkpoint",
    "dumps_checkpoint",
    "load_checkpoint",
    "loads_checkpoint",
    "resume_machine",
    "run_fingerprint",
    "save_checkpoint",
]
