"""A directory-based MESI coherence protocol model.

Table II specifies "MESI three level"; this module models the protocol
explicitly: per line, each core is in Modified / Exclusive / Shared /
Invalid, with a directory tracking the owner and sharer set.  It is a
drop-in superset of :class:`repro.coherence.directory.Directory` -- the
machine consumes the same owner/sharer queries for dependence tracking --
but makes the protocol events first-class:

- reads take a line to **E** (no sharers) or **S** (downgrading an **M**
  or **E** holder, which is a cache-to-cache transfer);
- writes take a line to **M**, invalidating every other copy;
- the **single-writer / multiple-reader** invariant is checked on every
  transition (:meth:`MESIDirectory.check_swmr`).

For ASAP, the interesting part rides on these events: a forwarded
request to an **M** line is exactly where the epoch-dependence payload of
Section IV-E travels, so the transition result carries the writer's
epoch information.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.coherence.directory import OwnerInfo
from repro.sim.stats import StatsRegistry


class LineState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


_NO_CORES: List[int] = []


class Transition:
    """What one access did to the protocol state.

    A plain slotted class: one is allocated per memory access, so the
    dataclass machinery (and two fresh empty lists per silent hit) was
    measurable.  The shared empty-list default is never mutated -- the
    protocol methods always pass freshly built lists when non-empty.
    """

    __slots__ = ("new_state", "invalidated", "downgraded", "source",
                 "cache_to_cache")

    def __init__(
        self,
        new_state: LineState,
        invalidated: Optional[List[int]] = None,
        downgraded: Optional[List[int]] = None,
        source: Optional[OwnerInfo] = None,
        cache_to_cache: bool = False,
    ) -> None:
        #: the requester's resulting state for the line.
        self.new_state = new_state
        #: cores whose copies were invalidated (write) or downgraded (read).
        self.invalidated = _NO_CORES if invalidated is None else invalidated
        self.downgraded = _NO_CORES if downgraded is None else downgraded
        #: last *writer* of the line, with its epoch -- the dependence
        #: payload a forwarded request carries (None if the line was never
        #: written or the requester is that writer).
        self.source = source
        #: True when the data came from another core's cache (M/E holder).
        self.cache_to_cache = cache_to_cache


@dataclass
class _LineEntry:
    #: core id -> protocol state (absent = Invalid).
    states: Dict[int, LineState] = field(default_factory=dict)
    #: (core, epoch_ts) of the most recent writer, for dependence info.
    last_writer: Optional[OwnerInfo] = None


class MESIDirectory:
    """Directory-tracked MESI over an arbitrary number of cores."""

    def __init__(self, num_cores: int, stats: StatsRegistry) -> None:
        self.num_cores = num_cores
        self.stats = stats
        self._lines: Dict[int, _LineEntry] = {}

    def _entry(self, line: int) -> _LineEntry:
        entry = self._lines.get(line)
        if entry is None:
            entry = _LineEntry()
            self._lines[line] = entry
        return entry

    # ------------------------------------------------------------------
    # protocol transitions
    # ------------------------------------------------------------------

    def read(self, core: int, line: int) -> Transition:
        """Core issues a read (GetS)."""
        entry = self._entry(line)
        state = entry.states.get(core, LineState.INVALID)
        if state in (LineState.MODIFIED, LineState.EXCLUSIVE, LineState.SHARED):
            # silent hit: no directory interaction
            return Transition(new_state=state)

        downgraded: List[int] = []
        cache_to_cache = False
        for other, other_state in list(entry.states.items()):
            if other_state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                # forward: owner supplies data and downgrades to S
                entry.states[other] = LineState.SHARED
                downgraded.append(other)
                cache_to_cache = True
                self.stats.inc("mesi_downgrades")
        if entry.states:
            new_state = LineState.SHARED
        else:
            new_state = LineState.EXCLUSIVE  # sole copy
        entry.states[core] = new_state
        self.check_swmr(line)
        source = entry.last_writer if (
            entry.last_writer and entry.last_writer.core != core
        ) else None
        return Transition(
            new_state=new_state,
            downgraded=downgraded,
            source=source,
            cache_to_cache=cache_to_cache,
        )

    def write(self, core: int, line: int, epoch_ts: int) -> Transition:
        """Core issues a write (GetM / upgrade)."""
        entry = self._entry(line)
        state = entry.states.get(core, LineState.INVALID)
        invalidated: List[int] = []
        cache_to_cache = False
        if state is not LineState.MODIFIED and entry.states:
            for other, other_state in list(entry.states.items()):
                if other == core:
                    continue
                if other_state in (LineState.MODIFIED, LineState.EXCLUSIVE):
                    cache_to_cache = True
                del entry.states[other]
                invalidated.append(other)
                self.stats.inc("mesi_invalidations")
        source = entry.last_writer if (
            entry.last_writer and entry.last_writer.core != core
        ) else None
        entry.states[core] = LineState.MODIFIED
        entry.last_writer = OwnerInfo(core=core, epoch_ts=epoch_ts)
        self.check_swmr(line)
        return Transition(
            new_state=LineState.MODIFIED,
            invalidated=sorted(invalidated),
            source=source,
            cache_to_cache=cache_to_cache,
        )

    def evict(self, core: int, line: int) -> None:
        """Core silently drops its copy (capacity eviction)."""
        entry = self._lines.get(line)
        if entry is not None:
            entry.states.pop(core, None)

    def update_writer_epoch(self, line: int, core: int, epoch_ts: int) -> None:
        """Re-attribute the newest write to a different epoch.

        Used when dependence handling opens a new epoch on the writing
        core between the protocol transition and the store retiring."""
        entry = self._lines.get(line)
        if entry is not None and entry.last_writer is not None and (
            entry.last_writer.core == core
        ):
            entry.last_writer = OwnerInfo(core=core, epoch_ts=epoch_ts)

    # ------------------------------------------------------------------
    # queries (Directory-compatible surface)
    # ------------------------------------------------------------------

    def state_of(self, core: int, line: int) -> LineState:
        entry = self._lines.get(line)
        if entry is None:
            return LineState.INVALID
        return entry.states.get(core, LineState.INVALID)

    def owner_of(self, line: int) -> Optional[OwnerInfo]:
        entry = self._lines.get(line)
        return entry.last_writer if entry else None

    def conflicting_access(self, line: int, core: int) -> Optional[OwnerInfo]:
        owner = self.owner_of(line)
        if owner is None or owner.core == core:
            return None
        self.stats.inc("directory_remote_hits")
        return owner

    def sharers_of(self, line: int) -> Set[int]:
        entry = self._lines.get(line)
        if entry is None:
            return set()
        return {
            core for core, state in entry.states.items()
            if state is not LineState.INVALID
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize the full directory.  Per-line holder-dict order is
        preserved: it determines the iteration order of invalidation /
        downgrade lists on future transitions."""
        return {
            "lines": [
                [
                    line,
                    [[core, state.value] for core, state in entry.states.items()],
                    (
                        [entry.last_writer.core, entry.last_writer.epoch_ts]
                        if entry.last_writer is not None
                        else None
                    ),
                ]
                for line, entry in self._lines.items()
            ],
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._lines = {}
        for line, states, writer in state["lines"]:  # type: ignore[union-attr]
            entry = _LineEntry(
                states={
                    int(core): LineState(value) for core, value in states
                },
                last_writer=(
                    OwnerInfo(core=int(writer[0]), epoch_ts=int(writer[1]))
                    if writer is not None
                    else None
                ),
            )
            self._lines[int(line)] = entry

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_swmr(self, line: int) -> None:
        """Single-writer / multiple-reader: an M or E holder is alone."""
        entry = self._lines.get(line)
        if entry is None or len(entry.states) <= 1:
            # a lone holder (or none) cannot violate either clause below.
            return
        exclusive = [
            core for core, state in entry.states.items()
            if state in (LineState.MODIFIED, LineState.EXCLUSIVE)
        ]
        if len(exclusive) > 1:
            raise AssertionError(
                f"SWMR violated on line {line:#x}: exclusive holders "
                f"{exclusive}"
            )
        if exclusive and len(entry.states) > 1:
            raise AssertionError(
                f"SWMR violated on line {line:#x}: holder {exclusive[0]} "
                f"coexists with {sorted(set(entry.states) - set(exclusive))}"
            )


__all__ = ["LineState", "MESIDirectory", "Transition"]
