"""The Write-Back Buffer (WBB).

Section V-F: a cache line can be evicted from the private caches while the
writes that produced it are still queued in the persist buffer.  Designs
like StrandWeaver (and ASAP, which borrows the mechanism) hold such
evictions in a small write-back buffer until the persist buffer has flushed
the corresponding entry; the WBB records the persist-buffer index it is
waiting on and releases the line when the buffer flushes past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.obs.events import EventType
from repro.sim.stats import StatsRegistry


@dataclass
class WBBEntry:
    line: int
    #: Persist-buffer sequence number this eviction must wait for.
    pb_seq: int


class WriteBackBuffer:
    """Per-core buffer of evictions waiting on persist-buffer flushes."""

    def __init__(self, capacity: int, stats: StatsRegistry, scope: str) -> None:
        self.capacity = capacity
        self.stats = stats
        self.scope = scope
        self._entries: List[WBBEntry] = []
        #: optional :class:`repro.obs.Tracer` + owning core index, wired
        #: by the machine assembler (the WBB itself has no engine handle;
        #: the tracer stamps timestamps).
        self.tracer = None
        self.core = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def hold(self, line: int, pb_seq: int) -> bool:
        """Hold an evicted line until the PB flushes sequence ``pb_seq``.

        Returns False when the buffer is full (the eviction must stall).
        """
        if self.full:
            self.stats.inc("wbb_full_stalls", scope=self.scope)
            return False
        self._entries.append(WBBEntry(line=line, pb_seq=pb_seq))
        self.stats.inc("wbb_holds", scope=self.scope)
        if self.tracer is not None:
            self.tracer.emit(
                EventType.WBB_HOLD, "wbb", core=self.core, line=line,
            )
        return True

    def release_upto(self, flushed_seq: int) -> List[int]:
        """The PB has flushed through ``flushed_seq``; release ripe lines."""
        ripe = [e.line for e in self._entries if e.pb_seq <= flushed_seq]
        if ripe:
            self._entries = [e for e in self._entries if e.pb_seq > flushed_seq]
            if self.tracer is not None:
                self.tracer.emit(
                    EventType.WBB_RELEASE, "wbb", core=self.core,
                    value=len(ripe),
                )
        return ripe

    def holds(self, line: int) -> bool:
        return any(e.line == line for e in self._entries)

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point (necessarily empty: the persist
        buffer drained, so every held eviction has been released)."""
        if self._entries:
            raise RuntimeError(
                f"{self.scope}: cannot checkpoint a non-empty WBB"
            )
        return {}

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        pass  # quiescent WBBs are empty.


__all__ = ["WBBEntry", "WriteBackBuffer"]
