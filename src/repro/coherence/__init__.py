"""Cache and coherence substrate.

Provides the three-level cache hierarchy (private L1/L2, shared LLC), a
directory that tracks last writers and carries the epoch-dependence
information ASAP piggybacks on coherence messages (Section IV-E), the
write-back buffer that delays private-cache evictions of lines still queued
in a persist buffer (Section V-F), and the counting Bloom filter that guards
LLC evictions of NACKed flushes (Section V-F).
"""

from repro.coherence.cache import Cache, CacheHierarchy
from repro.coherence.directory import Directory, OwnerInfo
from repro.coherence.mesi import LineState, MESIDirectory, Transition
from repro.coherence.wbb import WriteBackBuffer
from repro.coherence.bloom import CountingBloomFilter

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CountingBloomFilter",
    "Directory",
    "LineState",
    "MESIDirectory",
    "OwnerInfo",
    "Transition",
    "WriteBackBuffer",
]
