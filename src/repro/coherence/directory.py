"""Coherence directory with epoch-dependence tracking.

ASAP (like HOPS before it) extends the coherence protocol: when a thread
receives a coherence request for a cache line it recently wrote, the reply
carries the writer's current epoch number, and *both* threads start new
epochs -- the requester's new epoch depends on the writer's (Section IV-E).
Creating new epochs on both sides is what keeps the epoch dependency graph
acyclic (Lemma 0.1, borrowed from the epoch deadlock-avoidance mechanism of
Joshi et al.).

This directory is intentionally simpler than a full MESI state machine: the
simulation's value plane doesn't need coherence (threads are interleaved by
the event engine), so what matters architecturally is (a) the extra latency
of a remote-owned access and (b) *which writer/epoch a conflicting access
hits*.  Both are answered here; the model layer decides whether the hit
constitutes a live dependency (it does only while the writer's epoch is
still uncommitted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.stats import StatsRegistry


@dataclass(frozen=True)
class OwnerInfo:
    """Who last wrote a line, and in which epoch."""

    core: int
    epoch_ts: int


class Directory:
    """Tracks the last writer and current sharers of every written line."""

    def __init__(self, stats: StatsRegistry) -> None:
        self.stats = stats
        self._owner: Dict[int, OwnerInfo] = {}
        self._sharers: Dict[int, set] = {}

    def record_write(self, line: int, core: int, epoch_ts: int) -> "list[int]":
        """Note that ``core`` wrote ``line`` during epoch ``epoch_ts``.

        Returns the cores whose cached copies must be invalidated (the
        previous sharers and owner, excluding the writer itself).
        """
        previous_owner = self._owner.get(line)
        to_invalidate = set(self._sharers.pop(line, ()))
        if previous_owner is not None:
            to_invalidate.add(previous_owner.core)
        to_invalidate.discard(core)
        self._owner[line] = OwnerInfo(core=core, epoch_ts=epoch_ts)
        return sorted(to_invalidate)

    def record_read(self, line: int, core: int) -> None:
        """Note that ``core`` now shares ``line``."""
        self._sharers.setdefault(line, set()).add(core)

    def owner_of(self, line: int) -> Optional[OwnerInfo]:
        return self._owner.get(line)

    def conflicting_access(self, line: int, core: int) -> Optional[OwnerInfo]:
        """Return the foreign last-writer of ``line``, if any.

        A *conflicting access* in the persistency-model sense: the line was
        last written by a different core.  The caller decides whether this
        creates a live cross-thread persist dependency (only if the owner's
        epoch is still in flight) and charges the remote-access latency.
        """
        owner = self._owner.get(line)
        if owner is None or owner.core == core:
            return None
        self.stats.inc("directory_remote_hits")
        return owner

    def forget(self, line: int) -> None:
        """Drop tracking for a line (e.g. freed memory)."""
        self._owner.pop(line, None)
        self._sharers.pop(line, None)


__all__ = ["Directory", "OwnerInfo"]
