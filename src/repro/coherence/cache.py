"""Set-associative LRU cache models.

The hierarchy mirrors Table II: private 32 kB L1, private 2 MB L2, shared
16 MB LLC.  The model answers one question per access -- *how long does it
take?* -- and tracks hit/miss statistics.  Data values never live in the
cache model (the simulator's value plane is the write-id store in
:mod:`repro.mem.nvm`), so evictions only matter for their interaction with
the persist path:

- dirty *persistent* lines evicted from the LLC are dropped, because in the
  buffered designs the persist path goes through the persist buffer, not
  the cache (Section V-A);
- private-cache evictions of lines still queued in a persist buffer are
  held in the write-back buffer (:mod:`repro.coherence.wbb`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.sim.config import CacheConfig
from repro.sim.engine import ns_to_cycles
from repro.sim.stats import Counter, StatsRegistry


class Cache:
    """One set-associative LRU cache level.

    Sets are allocated lazily: workloads touch a tiny fraction of (say)
    the LLC's 16384 sets, and eagerly building one OrderedDict per set
    made machine construction a measurable fraction of short runs.  Stat
    counters are bound on first use -- binding them eagerly would create
    zero-valued rows in stats.txt that the lazy registry never had.
    """

    def __init__(self, config: CacheConfig, stats: StatsRegistry, scope: str) -> None:
        self.config = config
        self.stats = stats
        self.scope = scope
        self.latency = ns_to_cycles(config.latency_ns)
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self._hits: Optional[Counter] = None
        self._misses: Optional[Counter] = None
        self._evictions: Optional[Counter] = None

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        index = (line // self.line_bytes) % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        return cache_set

    def lookup(self, line: int, touch: bool = True) -> bool:
        """Return True on hit.  ``touch`` refreshes LRU order."""
        # _set_of inlined: lookup/fill run on every access of every level.
        index = (line // self.line_bytes) % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        if line in cache_set:
            if touch:
                cache_set.move_to_end(line)
            counter = self._hits
            if counter is None:
                counter = self._hits = self.stats.counter(
                    "cache_hits", scope=self.scope
                )
            counter.inc()
            return True
        counter = self._misses
        if counter is None:
            counter = self._misses = self.stats.counter(
                "cache_misses", scope=self.scope
            )
        counter.inc()
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; return the evicted ``(line, dirty)`` if any."""
        index = (line // self.line_bytes) % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            cache_set.move_to_end(line)
            return None
        victim: Optional[Tuple[int, bool]] = None
        if len(cache_set) >= self.ways:
            victim = cache_set.popitem(last=False)
            counter = self._evictions
            if counter is None:
                counter = self._evictions = self.stats.counter(
                    "cache_evictions", scope=self.scope
                )
            counter.inc()
        cache_set[line] = dirty
        return victim

    def mark_dirty(self, line: int) -> None:
        cache_set = self._set_of(line)
        if line in cache_set:
            cache_set[line] = True

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; return True if it was present."""
        cache_set = self._set_of(line)
        return cache_set.pop(line, None) is not None

    def __contains__(self, line: int) -> bool:
        return line in self._set_of(line)

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize every allocated set as an LRU-ordered [line, dirty]
        list (order is load-bearing: it decides future evictions)."""
        return {
            "sets": [
                [index, [[line, dirty] for line, dirty in cache_set.items()]]
                for index, cache_set in self._sets.items()
            ],
        }

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        self._sets = {}
        for index, lines in state["sets"]:  # type: ignore[union-attr]
            self._sets[int(index)] = OrderedDict(
                (int(line), bool(dirty)) for line, dirty in lines
            )


class CacheHierarchy:
    """Private L1 + private L2 + shared LLC for one core.

    ``access`` returns the access latency in cycles and drives fills and
    evictions.  The shared LLC instance is passed in by the machine so all
    cores see the same one.  ``memory_latency`` is a callback supplied by
    the machine that charges the NVM (or DRAM) read for a miss all the way
    down, and ``on_private_eviction`` lets the persist path interpose the
    write-back buffer.
    """

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        llc: Cache,
        memory_latency: Callable[[int], int],
        on_private_eviction: Optional[Callable[[int, bool], None]] = None,
        on_llc_eviction: Optional[Callable[[int, bool], None]] = None,
    ) -> None:
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self._memory_latency = memory_latency
        self._on_private_eviction = on_private_eviction or (lambda line, dirty: None)
        self._on_llc_eviction = on_llc_eviction or (lambda line, dirty: None)

    def access(self, line: int, is_write: bool) -> int:
        """Perform one access; return its latency in cycles."""
        return self.access_ex(line, is_write)[0]

    def access_ex(self, line: int, is_write: bool) -> Tuple[int, str]:
        """Perform one access; return ``(latency, level)`` where level is
        the hierarchy level that serviced it: l1 | l2 | llc | mem.

        The level matters to the coherence layer: cross-thread dependence
        checks only fire on private-cache misses (a hit means no coherence
        request left the core, so no dependence information could have
        been exchanged)."""
        latency = self.l1.latency
        if self.l1.lookup(line):
            if is_write:
                self.l1.mark_dirty(line)
            return latency, "l1"
        latency += self.l2.latency
        if self.l2.lookup(line):
            self._fill_l1(line, is_write)
            return latency, "l2"
        latency += self.llc.latency
        if self.llc.lookup(line):
            self._fill_private(line, is_write)
            return latency, "llc"
        latency += self._memory_latency(line)
        victim = self.llc.fill(line)
        if victim is not None:
            self._on_llc_eviction(*victim)
        self._fill_private(line, is_write)
        return latency, "mem"

    def _fill_private(self, line: int, is_write: bool) -> None:
        victim = self.l2.fill(line)
        if victim is not None:
            self._on_private_eviction(*victim)
        self._fill_l1(line, is_write)

    def _fill_l1(self, line: int, is_write: bool) -> None:
        victim = self.l1.fill(line, dirty=is_write)
        if victim is not None:
            # L1 victims land in the L2 (inclusive-ish simplification).
            l2_victim = self.l2.fill(victim[0], dirty=victim[1])
            if l2_victim is not None:
                self._on_private_eviction(*l2_victim)
        elif is_write:
            self.l1.mark_dirty(line)

    def invalidate(self, line: int) -> None:
        """Remove ``line`` from the private levels (coherence downgrade)."""
        self.l1.invalidate(line)
        self.l2.invalidate(line)


__all__ = ["Cache", "CacheHierarchy"]
