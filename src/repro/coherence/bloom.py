"""Counting Bloom filter for NACKed flush addresses.

Section V-F: when a flush is NACKed by a memory controller (recovery table
full), the data sits in the persist buffer until it can be retried as a
safe flush.  During that window the corresponding cache line must not be
silently dropped by an LLC eviction -- a later load would then read stale
memory.  ASAP populates a counting Bloom filter at the memory controller
with NACKed flush addresses; LLC evictions that hit in the filter are
delayed, and the entry is removed when the flush is retried successfully.

A *counting* filter is required because several NACKed addresses can share
hash buckets; plain bits could not be cleared safely.
"""

from __future__ import annotations

from typing import Dict, List


class CountingBloomFilter:
    """A small counting Bloom filter over cache-line addresses."""

    def __init__(self, num_bits: int = 256, num_hashes: int = 2) -> None:
        if num_bits < 1 or num_hashes < 1:
            raise ValueError("filter geometry must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._counters = [0] * num_bits
        self._population = 0
        self._index_memo: Dict[int, List[int]] = {}

    def _indices(self, line: int) -> List[int]:
        # Pure function of the line address; memoized because every LLC
        # eviction and every admitted flush probes the filter.
        indices = self._index_memo.get(line)
        if indices is not None:
            return indices
        indices = []
        h = line
        for i in range(self.num_hashes):
            # Cheap deterministic double hashing over the line address.
            h = (h * 0x9E3779B97F4A7C15 + i * 0xBF58476D1CE4E5B9) & (2**64 - 1)
            indices.append((h >> 17) % self.num_bits)
        self._index_memo[line] = indices
        return indices

    def add(self, line: int) -> None:
        for index in self._indices(line):
            self._counters[index] += 1
        self._population += 1

    def discard(self, line: int) -> None:
        """Remove one occurrence of ``line`` if it may be present.

        Counting filters cannot tell whether the exact element was added,
        so this decrements only when every counter is positive (the filter
        claims membership).  Removing an element that was never added can
        therefore under-count another element -- callers (the MC NACK path)
        only discard lines they previously added.
        """
        if self._population == 0:
            # every counter is zero (adds and removes balanced), so the
            # membership test below could never pass.
            return
        indices = self._indices(line)
        if all(self._counters[i] > 0 for i in indices):
            for index in indices:
                self._counters[index] -= 1
            self._population = max(0, self._population - 1)

    def __contains__(self, line: int) -> bool:
        if self._population == 0:
            return False
        return all(self._counters[i] > 0 for i in self._indices(line))

    def __len__(self) -> int:
        """Number of elements currently counted (upper bound)."""
        return self._population

    # -- checkpointing -----------------------------------------------------

    def ckpt_state(self) -> Dict[str, object]:
        """Serialize at a quiescent point (necessarily empty: every NACKed
        flush has been retried and discarded its filter entry).  The index
        memo is a pure function of line addresses and is rebuilt lazily."""
        if self._population:
            raise RuntimeError(
                "cannot checkpoint a non-empty NACK bloom filter"
            )
        return {}

    def ckpt_restore(self, state: Dict[str, object]) -> None:
        pass  # quiescent filters are empty.


__all__ = ["CountingBloomFilter"]
