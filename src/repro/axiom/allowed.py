"""The axiomatic allowed-set: every crash state the formal model permits.

This is the declarative half of the cross-validation.  Given a litmus
test and one candidate execution (:mod:`repro.axiom.executions`), the
axioms below decide which NVM images a crash may expose; the allowed
set of the *test* is the union over all candidate executions.

The axioms, stated over per-thread **epochs** (maximal fence-free op
runs) and evaluated by reusing the repo's Theorem-2 checker
(:func:`repro.verify.consistency.check_consistency`) on a synthetic
log + DAG:

- **per-location persist order** -- what survives on a line is a prefix
  of the line's coherence order: if write ``w`` survives, every
  coherence-earlier write to the line persisted (was absorbed).
  Encoded by recording each line's writes into the synthetic
  :class:`~repro.core.epoch.EpochLog` in coherence order; the checker's
  lost/absorbed split *is* this axiom.
- **flush/fence ordering (tso-order into the persistence domain)** --
  an ``OFence``/``DFence`` orders every earlier persist of the thread
  before every later one: epoch ``i`` precedes epoch ``j`` iff some
  FULL boundary separates them and no strand boundary intervenes.
  ``Release`` closes an epoch the same way (it is a publication fence),
  but an ``Acquire`` boundary orders nothing by itself.
- **release->acquire ordering** -- for the execution's lock order,
  everything sequenced before a release (back to the enclosing strand
  start) persists before everything sequenced after the matching
  acquire (forward to the next strand boundary).
- **strand relaxation with strong persist atomicity** -- a ``NewStrand``
  cuts all implicit intra-thread ordering, but a store that conflicts
  with an earlier strand's write to the same line still orders after it
  (SPA).  The conflicting store *splits* its epoch (mirroring the
  operational dependence-creating split), so only ops from the
  conflicting store onward inherit the cross-strand edge.
- **durable-prefix closure** -- any prefix of the execution's witness
  persist order is an allowed image (crash at that instant); this falls
  out of the above and is property-tested, not separately encoded.

The union over executions makes the set model *all* ways the threads
could have synchronized; the operational simulator takes exactly one
(its timing picks the lock order), so operational states must land
inside the union (soundness) while the union usually contains more
(operational-too-strong slack; see docs/litmus.md for triage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import product as _product
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.axiom.executions import (
    Execution,
    ExecutionSet,
    OpRef,
    WriteRef,
    enumerate_executions,
)
from repro.axiom.program import INIT, LINE, LitmusTest, NVMState
from repro.core.api import Acquire, DFence, NewStrand, OFence, Release, Store
from repro.core.epoch import EpochId, EpochLog
from repro.verify.consistency import check_consistency
from repro.verify.dag import EpochDag

#: cap on explicitly enumerated states per execution; corpus tests have
#: a handful of writes so real counts stay tiny.
MAX_STATES_PER_EXECUTION = 4096


class Boundary(enum.Enum):
    """What separates epoch ``ts`` from ``ts + 1`` on one thread."""

    #: OFence / DFence / Release: full persist ordering across it.
    FULL = "full"
    #: Acquire: an epoch boundary that orders nothing by itself.
    ACQ = "acq"
    #: NewStrand: cuts all implicit intra-thread ordering.
    STRAND = "strand"
    #: SPA split at a cross-strand conflicting store: no implicit
    #: ordering (the explicit SPA edge carries the constraint).
    CONFLICT = "conflict"


@dataclass(frozen=True)
class ThreadEpochs:
    """Static epoch structure of one litmus test (execution-independent)."""

    #: op -> epoch timestamp (1-based per thread).
    epoch_of_op: Dict[OpRef, int]
    #: per thread: boundary kind between ts and ts+1, index ts (1-based).
    boundaries: Tuple[Dict[int, Boundary], ...]
    #: highest epoch ts per thread.
    max_ts: Tuple[int, ...]
    #: SPA edges from cross-strand same-line conflicts.
    spa_edges: Tuple[Tuple[EpochId, EpochId], ...]


def annotate_epochs(test: LitmusTest) -> ThreadEpochs:
    """Split each thread into epochs and classify the boundaries."""
    epoch_of_op: Dict[OpRef, int] = {}
    boundaries: List[Dict[int, Boundary]] = []
    max_ts: List[int] = []
    spa_edges: List[Tuple[EpochId, EpochId]] = []
    for thread, ops in enumerate(test.threads):
        kinds: Dict[int, Boundary] = {}
        ts = 1
        strand = 0
        #: line -> (strand, epoch ts) of this thread's last write to it.
        last_write: Dict[int, Tuple[int, int]] = {}
        for index, op in enumerate(ops):
            if isinstance(op, Store):
                line = op.addr // LINE
                prev = last_write.get(line)
                if prev is not None and prev[0] != strand:
                    # SPA: conflicting store orders after the earlier
                    # strand's write.  Split here so only this store's
                    # epoch (and onward) carries the edge.
                    kinds[ts] = Boundary.CONFLICT
                    ts += 1
                    spa_edges.append(
                        ((thread, prev[1]), (thread, ts))
                    )
                epoch_of_op[(thread, index)] = ts
                last_write[line] = (strand, ts)
                continue
            epoch_of_op[(thread, index)] = ts
            if isinstance(op, (OFence, DFence, Release)):
                kinds[ts] = Boundary.FULL
                ts += 1
            elif isinstance(op, Acquire):
                kinds[ts] = Boundary.ACQ
                ts += 1
            elif isinstance(op, NewStrand):
                kinds[ts] = Boundary.STRAND
                ts += 1
                strand += 1
        boundaries.append(kinds)
        max_ts.append(ts)
    return ThreadEpochs(
        epoch_of_op=epoch_of_op,
        boundaries=tuple(boundaries),
        max_ts=tuple(max_ts),
        spa_edges=tuple(spa_edges),
    )


def _intra_edges(epochs: ThreadEpochs) -> List[Tuple[EpochId, EpochId]]:
    """Implicit intra-thread ordering: a FULL boundary between two
    epochs orders them unless a strand boundary intervenes."""
    edges: List[Tuple[EpochId, EpochId]] = []
    for thread, kinds in enumerate(epochs.boundaries):
        top = epochs.max_ts[thread]
        for i in range(1, top + 1):
            full_seen = False
            for j in range(i + 1, top + 1):
                kind = kinds.get(j - 1)
                if kind is Boundary.STRAND:
                    break
                if kind is Boundary.FULL:
                    full_seen = True
                if full_seen:
                    edges.append(((thread, i), (thread, j)))
    return edges


def _span_back(
    epochs: ThreadEpochs, thread: int, ts: int
) -> List[int]:
    """Epochs <= ``ts`` with no strand boundary in between (inclusive)."""
    out = [ts]
    t = ts
    kinds = epochs.boundaries[thread]
    while t > 1 and kinds.get(t - 1) is not Boundary.STRAND:
        t -= 1
        out.append(t)
    return out


def _span_forward(
    epochs: ThreadEpochs, thread: int, ts: int
) -> List[int]:
    """Epochs >= ``ts`` with no strand boundary in between (inclusive)."""
    out = [ts]
    t = ts
    kinds = epochs.boundaries[thread]
    top = epochs.max_ts[thread]
    while t < top and kinds.get(t) is not Boundary.STRAND:
        t += 1
        out.append(t)
    return out


def execution_dag(
    test: LitmusTest,
    epochs: ThreadEpochs,
    execution: Execution,
) -> EpochDag:
    """The epoch-ordering DAG the axioms impose on one execution."""
    nodes: Set[EpochId] = set()
    for thread in range(len(test.threads)):
        for ts in range(1, epochs.max_ts[thread] + 1):
            nodes.add((thread, ts))
    edges: List[Tuple[EpochId, EpochId]] = []
    edges.extend(_intra_edges(epochs))
    edges.extend(epochs.spa_edges)
    for rel, acq in execution.sync_pairs:
        rel_thread, _ = rel
        acq_thread, _ = acq
        sources = _span_back(epochs, rel_thread, epochs.epoch_of_op[rel])
        targets = _span_forward(
            epochs, acq_thread, epochs.epoch_of_op[acq] + 1
        )
        for src_ts in sources:
            for dst_ts in targets:
                if dst_ts <= epochs.max_ts[acq_thread]:
                    edges.append(
                        ((rel_thread, src_ts), (acq_thread, dst_ts))
                    )
    return EpochDag.from_edges(nodes, edges)


def _synthetic_log(
    epochs: ThreadEpochs, execution: Execution
) -> Tuple[EpochLog, Dict[str, int]]:
    """An EpochLog whose per-line order is the candidate coherence order.

    Returns the log plus label -> write id, so states map onto media
    images.
    """
    log = EpochLog()
    ids: Dict[str, int] = {}
    next_id = 1
    for line, order in execution.coherence:
        for write in order:
            log.record_write(
                next_id,
                line,
                write.thread,
                epochs.epoch_of_op[write.ref],
                payload=write.label,
            )
            ids[write.label] = next_id
            next_id += 1
    return log, ids


@dataclass(frozen=True)
class AllowedSet:
    """The axiomatic allowed-set of one litmus test."""

    test: str
    states: FrozenSet[NVMState]
    executions: int
    #: True if an enumeration cap was hit (set may be incomplete).
    truncated: bool

    def formatted(self) -> List[str]:
        from repro.axiom.program import format_state

        return sorted(format_state(state) for state in self.states)


def _canonical(
    test: LitmusTest,
    survivors: Dict[int, Optional[WriteRef]],
) -> NVMState:
    symbols = test.line_symbols()
    values: Dict[str, str] = {symbol: INIT for _, symbol in symbols.items()}
    for line, write in survivors.items():
        if write is not None:
            values[symbols[line]] = write.label
    return tuple(sorted(values.items()))


def execution_states(
    test: LitmusTest,
    epochs: ThreadEpochs,
    execution: Execution,
    max_states: int = MAX_STATES_PER_EXECUTION,
) -> Set[NVMState]:
    """All crash states one candidate execution allows."""
    log, ids = _synthetic_log(epochs, execution)
    dag = execution_dag(test, epochs, execution)
    lines = [line for line, _ in execution.coherence]
    choices: List[List[Optional[WriteRef]]] = [
        [None] + list(order) for _, order in execution.coherence
    ]
    out: Set[NVMState] = set()
    count = 0
    for pick in _product(*choices):
        count += 1
        if count > max_states:
            raise ValueError(
                f"{test.name}: state enumeration exceeds {max_states}; "
                f"use is_state_allowed for membership checks instead"
            )
        media = {
            line: ids[write.label]
            for line, write in zip(lines, pick)
            if write is not None
        }
        report = check_consistency(log, media, dag)
        if report.consistent:
            out.add(
                _canonical(test, dict(zip(lines, pick)))
            )
    return out


def allowed_states(
    test: LitmusTest,
    max_executions: Optional[int] = None,
) -> AllowedSet:
    """Union of :func:`execution_states` over all candidate executions."""
    epochs = annotate_epochs(test)
    if max_executions is None:
        exec_set = enumerate_executions(test)
    else:
        exec_set = enumerate_executions(test, max_executions=max_executions)
    states: Set[NVMState] = set()
    for execution in exec_set.executions:
        states.update(execution_states(test, epochs, execution))
    return AllowedSet(
        test=test.name,
        states=frozenset(states),
        executions=len(exec_set.executions),
        truncated=exec_set.truncated,
    )


def execution_allows(
    test: LitmusTest,
    epochs: ThreadEpochs,
    execution: Execution,
    state: NVMState,
) -> bool:
    """Membership check against one execution, without enumerating."""
    log, ids = _synthetic_log(epochs, execution)
    wanted = dict(state)
    line_of = {symbol: addr // LINE for symbol, addr in test.locations}
    media: Dict[int, int] = {}
    for symbol, label in wanted.items():
        if label == INIT:
            continue
        if label not in ids:
            return False  # no execution writes this value here
        write_id = ids[label]
        if log.writes[write_id].line != line_of[symbol]:
            return False
        media[line_of[symbol]] = write_id
    dag = execution_dag(test, epochs, execution)
    return check_consistency(log, media, dag).consistent


def is_state_allowed(
    test: LitmusTest,
    state: NVMState,
    executions: Optional[Iterable[Execution]] = None,
) -> bool:
    """Does *any* candidate execution allow ``state``?

    ``executions`` restricts the check to a subset (e.g. only those
    whose lock order matches what an operational run actually did);
    by default every candidate execution is consulted.
    """
    epochs = annotate_epochs(test)
    if executions is None:
        exec_set: ExecutionSet = enumerate_executions(test)
        executions = exec_set.executions
    for execution in executions:
        if execution_allows(test, epochs, execution, state):
            return True
    return False


__all__ = [
    "AllowedSet",
    "Boundary",
    "MAX_STATES_PER_EXECUTION",
    "ThreadEpochs",
    "allowed_states",
    "annotate_epochs",
    "execution_allows",
    "execution_dag",
    "execution_states",
    "is_state_allowed",
]
