"""Candidate execution enumeration for the axiomatic checker.

A *candidate execution* fixes everything about a litmus program the
axioms quantify over:

- a **total order per lock** over its critical sections (each lock's
  sections are mutually exclusive, so some total order exists), which
  induces the release->acquire synchronizes-with edges; and
- a **per-line coherence order** over the writes of each cache line
  (TSO gives every line a total store order), constrained by
  happens-before: program order plus the synchronizes-with edges,
  transitively closed.

Rather than interleaving every op (combinatorially hopeless and mostly
irrelevant -- fences and computes don't commute with anything that
matters for crash states), we enumerate exactly these two choices and
filter by happens-before consistency.  This over-approximates the set
of real executions only in ways that *enlarge* the allowed-state set,
which is the safe direction for a checker whose job is to prove the
operational simulator reaches nothing forbidden.

Each execution also carries a **witness**: one global persist order of
all writes consistent with coherence and happens-before.  Prefixes of
the witness are durable-prefix states, which the formal model must
always allow -- the hypothesis property in ``tests/property`` leans on
this.  Candidate combinations whose coherence orders cannot be embedded
in any global order (a cross-line cycle through happens-before) are
discarded: no persist schedule of a real machine could produce them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.axiom.program import LINE, LitmusTest
from repro.core.api import Acquire, Release, Store

#: (thread, op index) -- the identity of one op in the program.
OpRef = Tuple[int, int]

#: enumeration caps: beyond these the execution set is truncated (and
#: flagged as such); corpus tests are sized to stay well under them.
MAX_LOCK_ORDERS = 64
MAX_EXECUTIONS = 512


@dataclass(frozen=True)
class WriteRef:
    """One store, with everything the axioms need to know about it."""

    thread: int
    index: int
    line: int
    label: str

    @property
    def ref(self) -> OpRef:
        return (self.thread, self.index)


@dataclass(frozen=True)
class Execution:
    """One candidate execution of a litmus test."""

    #: (line, coherence order) pairs, sorted by line.
    coherence: Tuple[Tuple[int, Tuple[WriteRef, ...]], ...]
    #: release->acquire pairs induced by the per-lock total orders.
    sync_pairs: Tuple[Tuple[OpRef, OpRef], ...]
    #: one global persist order of all writes consistent with the above.
    witness: Tuple[WriteRef, ...]

    def coherence_map(self) -> Dict[int, Tuple[WriteRef, ...]]:
        return dict(self.coherence)


@dataclass(frozen=True)
class ExecutionSet:
    executions: Tuple[Execution, ...]
    #: True if an enumeration cap was hit (allowed sets may be partial).
    truncated: bool


def _interleavings(
    sequences: Sequence[Sequence[Tuple[OpRef, OpRef]]],
) -> Iterator[Tuple[Tuple[OpRef, OpRef], ...]]:
    """All merges of the given sequences preserving each one's order."""
    counts = [len(seq) for seq in sequences]

    def rec(
        taken: List[int], acc: List[Tuple[OpRef, OpRef]]
    ) -> Iterator[Tuple[Tuple[OpRef, OpRef], ...]]:
        if sum(taken) == sum(counts):
            yield tuple(acc)
            return
        for i, seq in enumerate(sequences):
            if taken[i] < counts[i]:
                taken[i] += 1
                acc.append(seq[taken[i] - 1])
                for out in rec(taken, acc):
                    yield out
                acc.pop()
                taken[i] -= 1

    return rec([0] * len(sequences), [])


def _closure(
    num_threads: int,
    thread_lengths: Sequence[int],
    sync_pairs: Sequence[Tuple[OpRef, OpRef]],
) -> Dict[OpRef, FrozenSet[OpRef]]:
    """Happens-before reachability: op -> every op strictly after it."""
    succ: Dict[OpRef, List[OpRef]] = {}
    for thread in range(num_threads):
        for index in range(thread_lengths[thread] - 1):
            succ.setdefault((thread, index), []).append((thread, index + 1))
    for rel, acq in sync_pairs:
        succ.setdefault(rel, []).append(acq)
    reach: Dict[OpRef, FrozenSet[OpRef]] = {}

    def visit(ref: OpRef) -> FrozenSet[OpRef]:
        if ref in reach:
            return reach[ref]
        reach[ref] = frozenset()  # cut (harmless: hb graphs are acyclic)
        out: Set[OpRef] = set()
        for nxt in succ.get(ref, ()):
            out.add(nxt)
            out.update(visit(nxt))
        reach[ref] = frozenset(out)
        return reach[ref]

    for thread in range(num_threads):
        for index in range(thread_lengths[thread]):
            visit((thread, index))
    return reach


def _line_orders(
    per_thread: Sequence[Sequence[WriteRef]],
    reach: Dict[OpRef, FrozenSet[OpRef]],
) -> List[Tuple[WriteRef, ...]]:
    """Linear extensions of one line's writes under happens-before."""
    queues = [list(seq) for seq in per_thread if seq]
    total = sum(len(q) for q in queues)
    out: List[Tuple[WriteRef, ...]] = []

    def rec(acc: List[WriteRef]) -> None:
        if len(acc) == total:
            out.append(tuple(acc))
            return
        for queue in queues:
            if not queue:
                continue
            head = queue[0]
            # head may go next unless some still-pending write is
            # hb-before it (then that write must come first).
            blocked = False
            for other in queues:
                for pending in other:
                    if pending is head:
                        continue
                    if head.ref in reach.get(pending.ref, frozenset()):
                        blocked = True
                        break
                if blocked:
                    break
            if blocked:
                continue
            queue.pop(0)
            acc.append(head)
            rec(acc)
            acc.pop()
            queue.insert(0, head)

    rec([])
    return out


def _witness(
    orders: Sequence[Tuple[int, Tuple[WriteRef, ...]]],
    reach: Dict[OpRef, FrozenSet[OpRef]],
) -> Tuple[WriteRef, ...]:
    """One global persist order embedding coherence + happens-before.

    Returns ``()`` when the union has a cross-line cycle (the candidate
    is unrealizable and is dropped by the caller).
    """
    writes: List[WriteRef] = [w for _, order in orders for w in order]
    succ: Dict[WriteRef, Set[WriteRef]] = {w: set() for w in writes}
    for _, order in orders:
        for a, b in zip(order, order[1:]):
            succ[a].add(b)
    for a in writes:
        reach_a = reach.get(a.ref, frozenset())
        for b in writes:
            if a is not b and b.ref in reach_a:
                succ[a].add(b)
    indeg: Dict[WriteRef, int] = {w: 0 for w in writes}
    for a, outs in succ.items():
        for b in outs:
            indeg[b] += 1
    ready = sorted(
        (w for w, d in indeg.items() if d == 0),
        key=lambda w: (w.thread, w.index),
    )
    order_out: List[WriteRef] = []
    while ready:
        node = ready.pop(0)
        order_out.append(node)
        for b in sorted(succ[node], key=lambda w: (w.thread, w.index)):
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
        ready.sort(key=lambda w: (w.thread, w.index))
    if len(order_out) != len(writes):
        return ()
    return tuple(order_out)


def writes_of(test: LitmusTest) -> List[WriteRef]:
    """Every store of the test as a :class:`WriteRef`, program order."""
    out: List[WriteRef] = []
    for thread, index, op in test.stores():
        assert isinstance(op.payload, str)
        out.append(
            WriteRef(
                thread=thread,
                index=index,
                line=op.addr // LINE,
                label=op.payload,
            )
        )
    return out


def enumerate_executions(
    test: LitmusTest,
    max_executions: int = MAX_EXECUTIONS,
) -> ExecutionSet:
    """Enumerate candidate executions of ``test`` (possibly truncated)."""
    thread_lengths = [len(ops) for ops in test.threads]
    writes = writes_of(test)
    per_line_per_thread: Dict[int, List[List[WriteRef]]] = {}
    for write in writes:
        slots = per_line_per_thread.setdefault(
            write.line, [[] for _ in test.threads]
        )
        slots[write.thread].append(write)

    # critical sections per lock, per thread, in program order.
    cs: Dict[int, List[List[Tuple[OpRef, OpRef]]]] = {}
    for thread, ops in enumerate(test.threads):
        open_acq: Dict[int, OpRef] = {}
        for index, op in enumerate(ops):
            if isinstance(op, Acquire):
                open_acq[op.lock] = (thread, index)
            elif isinstance(op, Release):
                acq = open_acq.pop(op.lock)
                cs.setdefault(op.lock, [[] for _ in test.threads])[
                    thread
                ].append((acq, (thread, index)))

    per_lock_orders: List[List[Tuple[Tuple[OpRef, OpRef], ...]]] = []
    truncated = False
    for lock in sorted(cs):
        orders = []
        for order in _interleavings(cs[lock]):
            orders.append(order)
            if len(orders) >= MAX_LOCK_ORDERS:
                truncated = True
                break
        per_lock_orders.append(orders)

    executions: List[Execution] = []
    seen: Set[Tuple[object, ...]] = set()
    # note: product() of zero iterables yields exactly one empty combo.
    for combo in itertools.product(*per_lock_orders):
        sync_pairs: List[Tuple[OpRef, OpRef]] = []
        for order in combo:
            for (_, rel), (acq, _) in zip(order, order[1:]):
                if rel[0] != acq[0]:  # same thread: program order covers it
                    sync_pairs.append((rel, acq))
        reach = _closure(len(test.threads), thread_lengths, sync_pairs)

        line_choices: List[List[Tuple[int, Tuple[WriteRef, ...]]]] = []
        for line in sorted(per_line_per_thread):
            options = _line_orders(per_line_per_thread[line], reach)
            line_choices.append([(line, order) for order in options])

        for pick in itertools.product(*line_choices):
            orders = tuple(pick)
            key = (orders, tuple(sorted(sync_pairs)))
            if key in seen:
                continue
            seen.add(key)
            witness = _witness(orders, reach)
            if orders and not witness:
                continue  # cross-line cycle: unrealizable candidate
            executions.append(
                Execution(
                    coherence=orders,
                    sync_pairs=tuple(sorted(sync_pairs)),
                    witness=witness,
                )
            )
            if len(executions) >= max_executions:
                truncated = True
                break
        if len(executions) >= max_executions:
            break
    return ExecutionSet(executions=tuple(executions), truncated=truncated)


__all__ = [
    "Execution",
    "ExecutionSet",
    "MAX_EXECUTIONS",
    "MAX_LOCK_ORDERS",
    "OpRef",
    "WriteRef",
    "enumerate_executions",
    "writes_of",
]
