"""`repro.axiom` -- declarative Px86/PTSO persistency checker.

The formal half of the litmus cross-validation: given a small program
(:class:`~repro.axiom.program.LitmusTest`), enumerate candidate
execution graphs (:mod:`repro.axiom.executions`), impose the
persistency axioms, and compute the complete set of crash-observable
NVM states the formal model allows (:mod:`repro.axiom.allowed`).

The operational twin lives in :mod:`repro.litmus`, which runs the same
programs through the discrete-event simulator and diffs the observed
states against this package's allowed-sets.
"""

from repro.axiom.allowed import (
    AllowedSet,
    Boundary,
    ThreadEpochs,
    allowed_states,
    annotate_epochs,
    execution_allows,
    execution_dag,
    execution_states,
    is_state_allowed,
)
from repro.axiom.executions import (
    Execution,
    ExecutionSet,
    WriteRef,
    enumerate_executions,
    writes_of,
)
from repro.axiom.program import (
    INIT,
    LITMUS_BASE,
    LitmusHeap,
    LitmusTest,
    NVMState,
    format_state,
    make_test,
    parse_state,
)

__all__ = [
    "AllowedSet",
    "Boundary",
    "Execution",
    "ExecutionSet",
    "INIT",
    "LITMUS_BASE",
    "LitmusHeap",
    "LitmusTest",
    "NVMState",
    "ThreadEpochs",
    "WriteRef",
    "allowed_states",
    "annotate_epochs",
    "enumerate_executions",
    "execution_allows",
    "execution_dag",
    "execution_states",
    "format_state",
    "is_state_allowed",
    "make_test",
    "parse_state",
    "writes_of",
]
