"""Litmus programs: the common language of both persistency models.

A :class:`LitmusTest` is a tiny multi-threaded program -- a handful of
stores / fences / lock sections over a handful of named cache lines --
that both checkers consume:

- the **axiomatic** checker (:mod:`repro.axiom.allowed`) enumerates
  every crash-observable NVM state the declarative Px86/PTSO-with-
  strands model allows;
- the **operational** runner (:mod:`repro.litmus`) executes the same
  ops through the discrete-event simulator and collects the states
  actually reachable by pulling the plug.

Locations are *symbols* ("x", "flag", ...) mapped to disjoint cache
lines by :class:`LitmusHeap`; stores carry auto-assigned string payload
labels (``t{thread}s{ordinal}``) so a surviving media image can be read
back symbolically.  A crash-observable state is then a canonical tuple
of ``(symbol, label)`` pairs, with :data:`INIT` for a line that never
persisted (see :func:`format_state`).

Tests obey the simulator's release-persistency race contract by
construction: a line stored by more than one thread must only ever be
accessed inside critical sections of one common lock.
:func:`make_test` validates this, so the corpus cannot silently drift
into undefined-order territory where neither model promises anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.api import (
    Acquire,
    Compute,
    DFence,
    Load,
    NewStrand,
    OFence,
    Op,
    Release,
    Store,
)

#: litmus heaps live far from the workload heap (0x1000_0000) so traces
#: from the two worlds can never alias.
LITMUS_BASE = 0x2000_0000
LINE = 64

#: the symbolic value of a location with no surviving write.
INIT = "init"

#: canonical crash-observable NVM state: ``(symbol, label)`` pairs,
#: sorted by symbol, one pair per data location of the test.
NVMState = Tuple[Tuple[str, str], ...]

#: ops a litmus thread may contain (loads/computes are allowed but inert
#: for crash states; they exist so shapes read like the literature).
_ALLOWED_OPS = (Store, Load, OFence, DFence, Acquire, Release, Compute, NewStrand)

#: default per-thread op budget; the explicit-enumeration engine is
#: exponential, so corpus tests stay tiny.  Stress tests that only use
#: the membership API may override via ``make_test(..., max_ops=...)``.
MAX_OPS_PER_THREAD = 12
MAX_THREADS = 4


class LitmusHeap:
    """Symbol -> line-aligned address mapping for litmus programs."""

    def __init__(self, base: int = LITMUS_BASE, line_bytes: int = LINE) -> None:
        self._base = base
        self._line_bytes = line_bytes
        self._next_line = 0
        self._data: Dict[str, int] = {}
        self._locks: Dict[str, int] = {}

    def _fresh_line(self) -> int:
        addr = self._base + self._next_line * self._line_bytes
        self._next_line += 1
        return addr

    def loc(self, symbol: str) -> int:
        """The address of data symbol ``symbol`` (allocated on first use)."""
        if symbol in self._locks:
            raise ValueError(f"symbol {symbol!r} is already a lock")
        if symbol not in self._data:
            self._data[symbol] = self._fresh_line()
        return self._data[symbol]

    def loc_on_mc(self, symbol: str, mc: int, num_mcs: int = 2,
                  interleave_bytes: int = 256) -> int:
        """Like :meth:`loc`, but steered onto memory controller ``mc``.

        Used by stress tests that need a jam on one controller while the
        other stays idle (the ASAP no-undo violation shape).
        """
        if symbol in self._data:
            return self._data[symbol]
        while True:
            candidate = self._base + self._next_line * self._line_bytes
            if (candidate // interleave_bytes) % num_mcs == mc:
                break
            self._next_line += 1
        self._data[symbol] = self._fresh_line()
        return self._data[symbol]

    def lock(self, symbol: str) -> int:
        """The lock id for lock symbol ``symbol`` (own line, first use)."""
        if symbol in self._data:
            raise ValueError(f"symbol {symbol!r} is already a data location")
        if symbol not in self._locks:
            self._locks[symbol] = self._fresh_line()
        return self._locks[symbol]

    @property
    def data_symbols(self) -> Dict[str, int]:
        return dict(self._data)

    @property
    def lock_symbols(self) -> Dict[str, int]:
        return dict(self._locks)


@dataclass(frozen=True)
class LitmusTest:
    """One litmus program, fully resolved and validated."""

    name: str
    family: str
    description: str
    #: per-thread op tuples (payload labels already assigned).
    threads: Tuple[Tuple[Op, ...], ...]
    #: data locations: (symbol, address), in allocation order.
    locations: Tuple[Tuple[str, int], ...]
    #: lock locations: (symbol, lock id), in allocation order.
    locks: Tuple[Tuple[str, int], ...]

    def location_map(self) -> Dict[str, int]:
        return dict(self.locations)

    def line_symbols(self) -> Dict[int, str]:
        """Cache line number -> data symbol."""
        return {addr // LINE: symbol for symbol, addr in self.locations}

    def num_ops(self) -> int:
        return sum(len(ops) for ops in self.threads)

    def stores(self) -> List[Tuple[int, int, Store]]:
        """Every store as ``(thread, op_index, op)`` in program order."""
        out: List[Tuple[int, int, Store]] = []
        for thread, ops in enumerate(self.threads):
            for index, op in enumerate(ops):
                if isinstance(op, Store):
                    out.append((thread, index, op))
        return out

    def initial_state(self) -> NVMState:
        return tuple(
            (symbol, INIT) for symbol, _ in sorted(self.locations)
        )


def format_state(state: NVMState) -> str:
    """Render a canonical state as ``"x=t0s1 y=init"``."""
    return " ".join(f"{symbol}={label}" for symbol, label in state)


def parse_state(text: str) -> NVMState:
    """Inverse of :func:`format_state` (used by golden-file diffing)."""
    pairs: List[Tuple[str, str]] = []
    for chunk in text.split():
        symbol, _, label = chunk.partition("=")
        if not symbol or not label:
            raise ValueError(f"malformed state chunk {chunk!r} in {text!r}")
        pairs.append((symbol, label))
    return tuple(sorted(pairs))


def make_test(
    name: str,
    family: str,
    threads: Sequence[Sequence[Op]],
    heap: LitmusHeap,
    description: str = "",
    max_ops: int = MAX_OPS_PER_THREAD,
) -> LitmusTest:
    """Label, validate, and freeze a litmus program.

    Stores get payload labels ``t{thread}s{ordinal}`` (1-based ordinal
    within the thread) unless the caller labelled them already; labels
    must be unique program-wide since they name writes in crash states.
    """
    if not 1 <= len(threads) <= MAX_THREADS:
        raise ValueError(
            f"{name}: {len(threads)} threads (must be 1..{MAX_THREADS})"
        )
    data_lines = {addr // LINE for addr in heap.data_symbols.values()}
    lock_ids = set(heap.lock_symbols.values())

    labelled: List[Tuple[Op, ...]] = []
    labels: Set[str] = set()
    for thread, ops in enumerate(threads):
        if len(ops) > max_ops:
            raise ValueError(
                f"{name}: thread {thread} has {len(ops)} ops "
                f"(budget {max_ops})"
            )
        held: Set[int] = set()
        ordinal = 0
        out: List[Op] = []
        for op in ops:
            if not isinstance(op, _ALLOWED_OPS):
                raise ValueError(f"{name}: unsupported op {op!r}")
            if isinstance(op, Store):
                ordinal += 1
                line = op.addr // LINE
                if line not in data_lines:
                    raise ValueError(
                        f"{name}: store to unnamed address {op.addr:#x}"
                    )
                if op.addr // LINE != (op.addr + op.size - 1) // LINE:
                    raise ValueError(
                        f"{name}: store at {op.addr:#x} spans cache lines"
                    )
                label = op.payload
                if label is None:
                    label = f"t{thread}s{ordinal}"
                if not isinstance(label, str):
                    raise ValueError(
                        f"{name}: payload labels must be strings, got "
                        f"{label!r}"
                    )
                if label == INIT or label in labels:
                    raise ValueError(
                        f"{name}: duplicate/reserved label {label!r}"
                    )
                labels.add(label)
                op = type(op)(op.addr, op.size, label)
            elif isinstance(op, Load):
                if op.addr // LINE not in data_lines:
                    raise ValueError(
                        f"{name}: load from unnamed address {op.addr:#x}"
                    )
            elif isinstance(op, Acquire):
                if op.lock not in lock_ids:
                    raise ValueError(f"{name}: acquire of unnamed lock")
                if op.lock in held:
                    raise ValueError(f"{name}: re-acquire of held lock")
                held.add(op.lock)
            elif isinstance(op, Release):
                if op.lock not in held:
                    raise ValueError(f"{name}: release of unheld lock")
                held.discard(op.lock)
            out.append(op)
        if held:
            raise ValueError(f"{name}: thread {thread} ends holding a lock")
        labelled.append(tuple(out))

    test = LitmusTest(
        name=name,
        family=family,
        description=description,
        threads=tuple(labelled),
        locations=tuple(sorted(heap.data_symbols.items())),
        locks=tuple(sorted(heap.lock_symbols.items())),
    )
    _check_race_contract(test)
    return test


def _check_race_contract(test: LitmusTest) -> None:
    """Enforce the simulator's RP race contract statically.

    A line accessed by two threads must, in *both* threads, only be
    accessed while holding one common lock -- otherwise the operational
    model's per-line persist order is undefined and the comparison is
    meaningless.
    """
    #: line -> set of (thread, lockset-at-access)
    access: Dict[int, List[Tuple[int, FrozenSet[int]]]] = {}
    for thread, ops in enumerate(test.threads):
        held: Set[int] = set()
        for op in ops:
            if isinstance(op, Acquire):
                held.add(op.lock)
            elif isinstance(op, Release):
                held.discard(op.lock)
            elif isinstance(op, (Store, Load)):
                line = op.addr // LINE
                access.setdefault(line, []).append(
                    (thread, frozenset(held))
                )
    symbols = test.line_symbols()
    for line, pairs in access.items():
        threads_seen = {thread for thread, _ in pairs}
        if len(threads_seen) < 2:
            continue
        common: Optional[FrozenSet[int]] = None
        for _, locks in pairs:
            common = locks if common is None else common & locks
        if not common:
            raise ValueError(
                f"{test.name}: location {symbols.get(line, hex(line))!r} "
                f"is shared across threads without a common lock "
                f"(violates the simulator's race contract)"
            )


__all__ = [
    "INIT",
    "LINE",
    "LITMUS_BASE",
    "LitmusHeap",
    "LitmusTest",
    "MAX_OPS_PER_THREAD",
    "NVMState",
    "format_state",
    "make_test",
    "parse_state",
]
