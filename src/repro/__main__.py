"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # stdout was closed early (e.g. piped into `head`); exit quietly.
    sys.exit(0)
