"""The fabric scheduler: shard, lease, steal, survive.

:class:`FabricScheduler` owns a :class:`~repro.fabric.queue.FabricQueue`
and a pool of worker *processes*, and runs an asynchronous pump thread
that turns the queue's files into campaign results:

- **submit** -- :meth:`submit` persists every task envelope (idempotent
  by content hash) and returns a :class:`FabricJob` handle; many jobs
  can be in flight at once (``repro serve`` multiplexes its HTTP
  submissions exactly this way).
- **collect** -- each pump tick sweeps new result files into memory,
  appends one JSONL line per completed task to the incremental stream
  (``results.jsonl``), emits :class:`~repro.obs.events.Event`\\ s, and
  releases finished jobs.
- **steal** -- a lease whose owner pid is dead (SIGKILL, OOM) or whose
  age exceeds ``lease_timeout`` is reaped: the lease file is deleted,
  the task becomes claimable again, and some worker re-runs it.
  Determinism makes the retry byte-identical, so nothing is lost and
  nothing is duplicated.
- **respawn** -- a dead worker is replaced (up to ``max_respawns``)
  while work is pending, so the fabric keeps its width.
- **budget** -- a task that kills its worker ``max_retries`` times is
  failed *by the scheduler* with a clear error instead of looping
  forever.

The pump thread never executes simulation work itself, so the scheduler
stays responsive regardless of cell runtimes.  ``chaos_kill_after`` is
the fault-injection hook the CI ``fabric-gate`` uses: after N collected
results the scheduler SIGKILLs one of its own workers and the campaign
must still converge byte-identically.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Union

from repro.fabric.queue import FabricQueue
from repro.fabric.tasks import (
    FabricTaskError,
    TaskEnvelope,
    TaskOutcome,
    envelope_for,
)


class FabricStalledError(RuntimeError):
    """Every worker died and respawn could not restore the pool."""


@dataclass
class _TaskMeta:
    kind: str
    label: str
    retries: int = 0


@dataclass
class _WorkerRecord:
    worker_id: str
    process: BaseProcess
    dead: bool = False


@dataclass
class FabricJob:
    """Handle on one submitted batch; results come back in input order."""

    job_id: str
    task_ids: List[str]
    _scheduler: "FabricScheduler"
    _done: threading.Event = field(default_factory=threading.Event)

    @property
    def total(self) -> int:
        return len(self.task_ids)

    @property
    def completed(self) -> int:
        outcomes = self._scheduler._outcomes
        return sum(1 for tid in self.task_ids if tid in outcomes)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def outcomes(self) -> List[Optional[TaskOutcome]]:
        """Current per-task outcomes (None where still pending)."""
        outcomes = self._scheduler._outcomes
        return [outcomes.get(tid) for tid in self.task_ids]

    def wait(self, timeout: Optional[float] = None) -> List[Any]:
        """Block until every task finished; return values in input order.

        Raises :class:`FabricTaskError` if any task errored and
        :class:`FabricStalledError` if the worker pool died for good.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._done.wait(timeout=0.05):
            self._scheduler._check_health()
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"fabric job {self.job_id} incomplete after {timeout}s "
                    f"({self.completed}/{self.total} tasks)"
                )
        values: List[Any] = []
        for tid in self.task_ids:
            outcome = self._scheduler._outcomes[tid]
            if not outcome.ok:
                raise FabricTaskError(
                    f"task {self._scheduler._meta[tid].label} failed: "
                    f"{outcome.error}"
                )
            values.append(outcome.value)
        return values


class FabricScheduler:
    """Shard tasks over worker processes with lease-based retry."""

    def __init__(
        self,
        jobs: int = 2,
        queue_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        cache_dir: Optional[str] = None,
        stream_path: Optional[str] = None,
        sinks: Optional[List[Any]] = None,
        poll_interval: float = 0.02,
        lease_timeout: float = 120.0,
        respawn: bool = True,
        max_respawns: int = 8,
        max_retries: int = 3,
        chaos_kill_after: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if queue_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
            queue_dir = self._tmpdir.name
        self.queue = FabricQueue(queue_dir)
        self.queue.resume()  # a reused persistent queue may carry STOP
        self.cache_dir = cache_dir
        self.sinks = list(sinks) if sinks else []
        self.poll_interval = poll_interval
        self.lease_timeout = lease_timeout
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.max_retries = max_retries
        self.chaos_kill_after = chaos_kill_after

        self._lock = threading.RLock()
        self._meta: Dict[str, _TaskMeta] = {}
        self._outcomes: Dict[str, TaskOutcome] = {}
        self._jobs: List[FabricJob] = []
        self._workers: List[_WorkerRecord] = []
        self._worker_seq = 0
        self._respawns = 0
        self._job_seq = 0
        self._event_seq = 0
        self._chaos_done = False
        self._stream: Optional[IO[str]] = None
        self._stream_path = stream_path
        self._pump: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._stalled: Optional[str] = None
        self.counters: Dict[str, int] = {
            "tasks_submitted": 0,
            "tasks_deduped": 0,
            "tasks_completed": 0,
            "tasks_failed": 0,
            "tasks_cached": 0,
            "tasks_retried": 0,
            "leases_stolen": 0,
            "workers_spawned": 0,
            "workers_died": 0,
            "workers_respawned": 0,
            "chaos_kills": 0,
            "jobs_submitted": 0,
            "jobs_completed": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool and the pump thread (idempotent)."""
        with self._lock:
            if self._pump is not None:
                return
            for _ in range(self.jobs):
                self._spawn_worker()
            self._pump = threading.Thread(
                target=self._pump_loop, name="fabric-pump", daemon=True
            )
            self._pump.start()

    def close(self) -> None:
        """Stop workers, drain the pump, flush the stream."""
        self.queue.stop()
        self._stop.set()
        if self._pump is not None:
            self._pump.join(timeout=10.0)
            self._pump = None
        for record in self._workers:
            record.process.join(timeout=5.0)
            if record.process.is_alive():
                record.process.terminate()
                record.process.join(timeout=2.0)
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "FabricScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, envelopes: Sequence[TaskEnvelope]) -> FabricJob:
        """Persist ``envelopes`` and return a handle on their results.

        Content-identical envelopes (within or across jobs) collapse
        onto one task; every position still receives its result.
        """
        self.start()
        with self._lock:
            self._job_seq += 1
            job = FabricJob(
                job_id=f"job-{self._job_seq}",
                task_ids=[env.task_id for env in envelopes],
                _scheduler=self,
            )
            fresh = 0
            for env in envelopes:
                if env.task_id in self._meta:
                    self.counters["tasks_deduped"] += 1
                    continue
                self._meta[env.task_id] = _TaskMeta(
                    kind=env.kind, label=env.label
                )
                self.queue.add_task(env)
                fresh += 1
                self._emit("fabric_task", kind="submit", value=None)
            self.counters["tasks_submitted"] += fresh
            self.counters["jobs_submitted"] += 1
            self._jobs.append(job)
            self._refresh_jobs_locked()
        return job

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """``executor.map`` semantics over the fabric (in input order)."""
        items = list(items)
        if not items:
            return []
        job = self.submit([envelope_for(fn, item) for item in items])
        return job.wait(timeout=timeout)

    # -- pump ---------------------------------------------------------------

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception as exc:  # pragma: no cover -- belt+braces
                with self._lock:
                    self._stalled = f"scheduler pump crashed: {exc!r}"
                return
            time.sleep(self.poll_interval)

    def _tick(self) -> None:
        self._collect_results()
        self._check_workers()
        self._reap_leases()
        self._maybe_chaos()

    def _collect_results(self) -> None:
        for task_id in self.queue.result_ids():
            with self._lock:
                if task_id in self._outcomes or task_id not in self._meta:
                    continue
            outcome = self.queue.read_result(task_id)
            if outcome is None:  # torn write: task will be re-run
                continue
            with self._lock:
                meta = self._meta[task_id]
                self._outcomes[task_id] = outcome
                self.counters["tasks_completed"] += 1
                if outcome.cached:
                    self.counters["tasks_cached"] += 1
                if not outcome.ok:
                    self.counters["tasks_failed"] += 1
                self._stream_line(
                    {
                        "task": task_id[:16],
                        "kind": meta.kind,
                        "label": meta.label,
                        "ok": outcome.ok,
                        "cached": outcome.cached,
                        "worker": outcome.worker,
                        "attempt": meta.retries + 1,
                        "error": outcome.error,
                    }
                )
                self._emit(
                    "fabric_task",
                    kind="done" if outcome.ok else "error",
                    value=len(self._meta) - len(self._outcomes),
                )
                self._refresh_jobs_locked()

    def _check_workers(self) -> None:
        with self._lock:
            pending = len(self._meta) > len(self._outcomes)
            for record in self._workers:
                if record.dead or record.process.is_alive():
                    continue
                record.dead = True
                self.counters["workers_died"] += 1
                self._emit("fabric_worker", kind="death")
                self._steal_worker_leases(record.worker_id)
                if (
                    pending
                    and self.respawn
                    and self._respawns < self.max_respawns
                ):
                    self._respawns += 1
                    self._spawn_worker(respawned=True)

    def _reap_leases(self) -> None:
        now = time.time()
        for task_id in self.queue.lease_ids():
            with self._lock:
                if task_id in self._outcomes:
                    self.queue.release_lease(task_id)  # finished: tidy up
                    continue
            lease = self.queue.lease_info(task_id)
            if lease is None:
                continue
            expired = now - lease.ts > self.lease_timeout
            if not expired and _pid_alive(lease.pid):
                continue
            self._steal_lease(task_id)

    def _steal_worker_leases(self, worker_id: str) -> None:
        for task_id in self.queue.lease_ids():
            lease = self.queue.lease_info(task_id)
            if lease is None or lease.worker != worker_id:
                continue
            if task_id in self._outcomes:
                self.queue.release_lease(task_id)
                continue
            self._steal_lease(task_id)

    def _steal_lease(self, task_id: str) -> None:
        """Reap one dead/expired lease; enforce the retry budget."""
        with self._lock:
            meta = self._meta.get(task_id)
            if meta is None or task_id in self._outcomes:
                self.queue.release_lease(task_id)
                return
            meta.retries += 1
            self.counters["leases_stolen"] += 1
            self._emit("fabric_lease", kind="steal", value=meta.retries)
            if meta.retries > self.max_retries:
                # the task keeps killing its workers: fail it cleanly
                # rather than looping forever.
                self.queue.write_result(
                    TaskOutcome(
                        task_id=task_id,
                        ok=False,
                        error=(
                            f"task killed its worker {meta.retries} "
                            f"times (retry budget {self.max_retries})"
                        ),
                        worker="scheduler",
                    )
                )
            else:
                self.counters["tasks_retried"] += 1
        self.queue.release_lease(task_id)

    def _maybe_chaos(self) -> None:
        if self.chaos_kill_after is None or self._chaos_done:
            return
        with self._lock:
            if self.counters["tasks_completed"] < self.chaos_kill_after:
                return
            victim = next(
                (r for r in self._workers
                 if not r.dead and r.process.is_alive()),
                None,
            )
            if victim is None:
                return
            pid = victim.process.pid
            if pid is None:
                return
            self._chaos_done = True
            self.counters["chaos_kills"] += 1
            self._emit("fabric_worker", kind="chaos-kill")
        os.kill(pid, signal.SIGKILL)

    # -- internals ----------------------------------------------------------

    def _spawn_worker(self, respawned: bool = False) -> None:
        self._worker_seq += 1
        worker_id = f"w{self._worker_seq}"
        ctx = multiprocessing.get_context()
        process = ctx.Process(
            target=_worker_entry,
            args=(
                str(self.queue.root), worker_id, self.cache_dir,
                self.poll_interval,
            ),
            name=f"fabric-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers.append(_WorkerRecord(worker_id=worker_id,
                                           process=process))
        self.counters["workers_spawned"] += 1
        if respawned:
            self.counters["workers_respawned"] += 1
        self._emit(
            "fabric_worker", kind="respawn" if respawned else "spawn"
        )

    def _refresh_jobs_locked(self) -> None:
        for job in self._jobs:
            if job.done:
                continue
            if all(tid in self._outcomes for tid in job.task_ids):
                job._done.set()
                self.counters["jobs_completed"] += 1

    def _check_health(self) -> None:
        with self._lock:
            if self._stalled is not None:
                raise FabricStalledError(self._stalled)
            pending = len(self._meta) > len(self._outcomes)
            alive = any(
                not r.dead and r.process.is_alive() for r in self._workers
            )
            can_respawn = self.respawn and self._respawns < self.max_respawns
        if pending and not alive and not can_respawn:
            raise FabricStalledError(
                "every fabric worker died and the respawn budget is "
                "exhausted; pending tasks cannot complete"
            )

    def _stream_line(self, doc: Dict[str, Any]) -> None:
        if self._stream is None:
            path = self._stream_path or str(self.queue.stream_path)
            self._stream = open(path, "a")
        doc = {k: v for k, v in doc.items() if v is not None}
        self._stream.write(
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._stream.flush()

    def _emit(self, event: str, kind: str, value: Optional[int] = None) -> None:
        if not self.sinks:
            return
        from repro.obs.events import Event, EventType

        self._event_seq += 1
        record = Event(
            cycle=self._event_seq,
            type=EventType(event),
            comp="fabric",
            core=None, mc=None, epoch=None, line=None, reason=None,
            dur=None, kind=kind, value=value,
        )
        for sink in self.sinks:
            sink.handle(record)

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counters)


def _worker_entry(
    queue_dir: str,
    worker_id: str,
    cache_dir: Optional[str],
    poll_interval: float,
) -> None:
    from repro.fabric.worker import worker_loop

    worker_loop(
        queue_dir, worker_id, cache_dir=cache_dir,
        poll_interval=poll_interval,
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


__all__ = ["FabricJob", "FabricScheduler", "FabricStalledError"]
