"""repro.fabric: a fault-tolerant experiment fabric.

Shards :mod:`repro.exp` plans, crash-sweep campaigns, litmus
enumerations, and bench suites across worker processes through a
crash-safe directory queue; streams results incrementally as JSONL;
dedupes via the content-hash :class:`repro.exp.cache.ResultCache` used
as a shared store; and survives worker death (SIGKILL mid-task) through
lease-based work stealing with zero lost or duplicated results.

See ``docs/fabric.md`` for the architecture and the exactly-once
argument.
"""

from repro.fabric.executor import FabricExecutor
from repro.fabric.queue import FabricQueue, LeaseInfo
from repro.fabric.scheduler import FabricJob, FabricScheduler, FabricStalledError
from repro.fabric.tasks import (
    FABRIC_SCHEMA_VERSION,
    FabricTaskError,
    TaskEnvelope,
    TaskOutcome,
    envelope_for,
    execute_envelope,
    fingerprint_sha,
    kind_for,
)
from repro.fabric.worker import worker_loop

__all__ = [
    "FABRIC_SCHEMA_VERSION",
    "FabricExecutor",
    "FabricJob",
    "FabricQueue",
    "FabricScheduler",
    "FabricStalledError",
    "FabricTaskError",
    "LeaseInfo",
    "TaskEnvelope",
    "TaskOutcome",
    "envelope_for",
    "execute_envelope",
    "fingerprint_sha",
    "kind_for",
    "worker_loop",
]
